"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  By
default a *quick* configuration is used (smaller circuit-size grids and
fewer random targets) so that ``pytest benchmarks/ --benchmark-only``
finishes on a laptop in minutes; set ``REPRO_FULL=1`` to run the paper's
full grids.

The regenerated rows/series are printed to stderr (visible with ``-s``)
and attached to each benchmark's ``extra_info`` so they also appear in
``--benchmark-json`` output.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

import pytest


_BENCHMARK_DIR = Path(__file__).resolve().parent


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp run provenance into the ``--benchmark-json`` artifact.

    ``repro bench record`` / ``scripts/bench_compare.py`` read this
    ``repro_run_meta`` block (git SHA, host tag, run timestamp) so every
    recorded trajectory point and every written baseline says which
    commit on which machine produced it.  The same fields are mirrored
    into each benchmark's ``extra_info`` for consumers that only look at
    per-benchmark entries.  The timestamp reuses pytest-benchmark's own
    ``datetime`` field — no second clock reading, so artifact and meta
    can never disagree about when the run happened.
    """
    from repro.bench.artifact import current_git_sha

    meta = {
        "git_sha": current_git_sha(cwd=_BENCHMARK_DIR),
        "host": platform.node() or None,
        "timestamp": output_json.get("datetime"),
    }
    output_json["repro_run_meta"] = meta
    for bench in output_json.get("benchmarks", []):
        extra = bench.setdefault("extra_info", {})
        extra.setdefault("git_sha", meta["git_sha"])
        extra.setdefault("host", meta["host"])
        extra.setdefault("timestamp", meta["timestamp"])


def pytest_collection_modifyitems(items):
    """Every benchmark regenerates a full table/figure: tag them ``slow``.

    The CI per-commit gate runs ``-m "not slow"`` and therefore skips the
    benchmark tree; the smoke-benchmark and nightly jobs select it
    explicitly by path.  (This hook sees the whole session's items, so it
    must only touch the ones that live in this directory.)
    """
    for item in items:
        if _BENCHMARK_DIR in Path(item.fspath).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def emit():
    """Fixture: print a regenerated table/series and attach it to the benchmark."""

    def _emit(benchmark, title: str, payload) -> None:
        text = (
            payload
            if isinstance(payload, str)
            else json.dumps(payload, indent=2, default=str)
        )
        print(f"\n===== {title} =====\n{text}\n", file=sys.stderr)
        if isinstance(payload, (str, int, float)):
            benchmark.extra_info[title] = payload
        else:
            benchmark.extra_info[title] = json.loads(json.dumps(payload, default=str))

    return _emit


@pytest.fixture
def run_once():
    """Fixture: run a callable exactly once inside the benchmark timer."""

    def runner(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
