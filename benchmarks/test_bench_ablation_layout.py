"""Ablation benchmark: initial-layout strategies (dense vs trivial vs interaction).

The paper uses Qiskit's DenseLayout; the ablation quantifies how much the
SWAP counts depend on that choice on a SNAIL topology versus a lattice.
"""

from repro.core import run_sweep
from repro.transpiler import make_target
from repro.topology import get_topology


def _run(layout_method: str):
    backends = [
        make_target(get_topology("Square-Lattice", "small"), "cx", name="Square-Lattice"),
        make_target(get_topology("Corral1,1", "small"), "siswap", name="Corral1,1"),
    ]
    return run_sweep(
        ["QuantumVolume"], [12, 16], backends, seed=23, layout_method=layout_method
    )


def test_bench_ablation_layout(benchmark, run_once, emit):
    results = {"dense": _run("dense"), "trivial": _run("trivial")}
    results["interaction"] = run_once(benchmark, _run, "interaction")
    report = {}
    for method, sweep in results.items():
        report[method] = {
            record.extra["backend"]: record.total_swaps
            for record in sweep
            if record.circuit_qubits == 16
        }
    emit(benchmark, "Layout ablation (total SWAPs, QV-16)", report)
    # The corral needs no more SWAPs than the square lattice under every
    # layout strategy — the topology advantage is not a layout artefact.
    for method, counts in report.items():
        assert counts["Corral1,1"] <= counts["Square-Lattice"], method
