"""Ablation benchmark: noise-aware routing under heterogeneous edge fidelities.

The paper assumes uniform gate fidelity; its related work (reference [34],
Murali et al.) shows that real devices benefit from noise-adaptive mapping.
This ablation routes the same workload with the noise-blind SABRE-style
router and with the noise-aware router on a device with randomly varying
edge fidelities, and checks that (a) noise-awareness does not hurt and (b)
the co-design ordering (Corral + sqrt(iSWAP) over Heavy-Hex + CNOT)
survives either router.
"""

import numpy as np

from repro.core.noise import NoiseModel
from repro.topology import get_topology
from repro.transpiler.passmanager import PropertySet
from repro.transpiler.passes.layout_passes import DenseLayout
from repro.transpiler.passes.noise_aware_routing import NoiseAwareRouting
from repro.transpiler.passes.routing import SabreRouting
from repro.workloads import quantum_volume_circuit


def _route_with(router_factory, device, circuit, noise):
    properties = PropertySet()
    DenseLayout(device).run(circuit, properties)
    properties["noise_model"] = noise
    routed = router_factory(device).run(circuit, properties)
    return noise.circuit_success_probability(routed)


def _study():
    circuit = quantum_volume_circuit(10, seed=9)
    results = {}
    for label, topology in (("Heavy-Hex", "Heavy-Hex"), ("Corral1,1", "Corral1,1")):
        device = get_topology(topology, "small")
        trials = {"sabre": [], "noise_aware": []}
        for seed in range(3):
            noise = NoiseModel.random(device, mean_fidelity=0.99, spread=0.01, seed=seed)
            trials["sabre"].append(
                _route_with(lambda d: SabreRouting(d, seed=1), device, circuit, noise)
            )
            trials["noise_aware"].append(
                _route_with(
                    lambda d: NoiseAwareRouting(d, noise_model=noise, seed=1),
                    device,
                    circuit,
                    noise,
                )
            )
        results[label] = {
            router: float(np.mean(values)) for router, values in trials.items()
        }
    return results


def test_bench_ablation_noise_routing(benchmark, run_once, emit):
    results = run_once(benchmark, _study)
    emit(benchmark, "Noise-aware routing ablation (QV-10 success probability)", results)
    for label, routers in results.items():
        # Noise awareness must not meaningfully hurt the estimated success.
        assert routers["noise_aware"] >= routers["sabre"] * 0.9, label
    # The co-design ordering survives both routers.
    for router in ("sabre", "noise_aware"):
        assert results["Corral1,1"][router] > results["Heavy-Hex"][router]
