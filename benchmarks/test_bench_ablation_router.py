"""Ablation benchmark: SABRE-style router vs. stochastic router.

The paper used Qiskit's StochasticSwap; this reproduction defaults to a
SABRE-style lookahead router.  The ablation checks that the co-design
conclusions do not depend on that substitution (DESIGN.md, Section 6).
"""

from repro.experiments import swap_series, swap_study


def _study(routing_method: str):
    return swap_study(
        "small",
        ["Square-Lattice", "Tree", "Corral1,1", "Hypercube"],
        workloads=["QuantumVolume", "QAOAVanilla"],
        sizes=[10, 16],
        seed=17,
        routing_method=routing_method,
    )


def test_bench_ablation_router(benchmark, run_once, emit):
    sabre = _study("sabre")
    stochastic = run_once(benchmark, _study, "stochastic")
    report = {}
    for workload in ("QuantumVolume", "QAOAVanilla"):
        sabre_series = swap_series(sabre, workload, "total_swaps")
        stochastic_series = swap_series(stochastic, workload, "total_swaps")
        report[workload] = {
            topology: {
                "sabre": dict(sabre_series[topology]).get(16),
                "stochastic": dict(stochastic_series[topology]).get(16),
            }
            for topology in sabre_series
        }
    emit(benchmark, "Router ablation (total SWAPs at 16 qubits)", report)
    # The topology ordering must be router-independent: the corral beats the
    # square lattice under both routers for the QAOA workload.
    for study in (sabre, stochastic):
        series = swap_series(study, "QAOAVanilla", "total_swaps")
        assert dict(series["Corral1,1"])[16] <= dict(series["Square-Lattice"])[16]
