"""Ablation benchmark: seed-robustness of the co-design comparison.

Paper Section 6.2 warns that the placement/routing heuristics are noisy.
This ablation sweeps the transpiler seed and checks that the headline
ordering — Corral(1,1) + sqrt(iSWAP) beats Heavy-Hex + CNOT on total 2Q
gates — holds for (almost) every seed, i.e. it is a property of the
co-design, not of a lucky seed.
"""

import os

from repro.transpiler import make_target
from repro.core.statistics import compare_backends, format_comparison, ordering_stability
from repro.topology import get_topology


def _backends():
    return [
        make_target(get_topology("Heavy-Hex", "small"), "cx", name="Heavy-Hex-CX"),
        make_target(get_topology("Corral1,1", "small"), "siswap", name="Corral1,1-siswap"),
    ]


def test_bench_ablation_seed_stability(benchmark, run_once, emit):
    seeds = tuple(range(10)) if os.environ.get("REPRO_FULL") == "1" else tuple(range(4))
    corral, heavy_hex = _backends()[1], _backends()[0]

    def study():
        summary = compare_backends(_backends(), "QuantumVolume", 12, seeds=seeds)
        stability = ordering_stability(
            corral, heavy_hex, "QuantumVolume", 12, seeds=seeds, metric="total_2q"
        )
        return summary, stability

    summary, stability = run_once(benchmark, study)
    emit(
        benchmark,
        "Seed stability of the co-design comparison (QV-12, total 2Q)",
        format_comparison(summary) + f"\nordering stability: {stability:.2f}",
    )
    # The co-designed machine wins on (essentially) every seed, and even its
    # worst seed beats Heavy-Hex's best seed.
    assert stability >= 0.75
    assert summary["Corral1,1-siswap"].maximum < summary["Heavy-Hex-CX"].minimum
