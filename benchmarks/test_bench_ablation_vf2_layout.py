"""Ablation benchmark: VF2 perfect-layout search versus DenseLayout.

The paper observes (Section 6.1) that the transpiler often finds zero-SWAP
initial mappings on the Corral — this ablation makes the effect explicit by
searching for a SWAP-free embedding first and falling back to DenseLayout
only when none exists.
"""

from repro.core import run_sweep
from repro.transpiler import make_target
from repro.topology import get_topology

_BACKENDS = (
    ("Heavy-Hex", "cx"),
    ("Hypercube", "siswap"),
    ("Corral1,1", "siswap"),
)


def _run(layout_method: str):
    backends = [
        make_target(get_topology(name, "small"), basis, name=name)
        for name, basis in _BACKENDS
    ]
    return run_sweep(
        ["GHZ", "TIMHamiltonian"], [10, 14], backends, seed=17, layout_method=layout_method
    )


def test_bench_ablation_vf2_layout(benchmark, run_once, emit):
    dense = _run("dense")
    vf2 = run_once(benchmark, _run, "vf2")
    report = {}
    for sweep, label in ((dense, "dense"), (vf2, "vf2")):
        report[label] = {
            f"{record.extra['backend']}/{record.extra['workload']}-{record.circuit_qubits}": record.total_swaps
            for record in sweep
        }
    emit(benchmark, "VF2 vs dense layout (total SWAPs)", report)

    # The rich SNAIL topologies admit SWAP-free embeddings of the
    # line-structured workloads; VF2 finds them.
    for key, swaps in report["vf2"].items():
        if key.startswith("Corral1,1/GHZ") or key.startswith("Hypercube/GHZ"):
            assert swaps == 0, key
    # VF2 with a dense fallback is never dramatically worse than dense alone.
    total_vf2 = sum(report["vf2"].values())
    total_dense = sum(report["dense"].values())
    assert total_vf2 <= total_dense * 1.2 + 2
