"""Extension benchmark: scaling the Corral ring (paper future work).

Not a paper figure — this quantifies the conclusion's open question of how
ring-scaled Corrals compare against same-size hypercubes, using both graph
structure and Quantum Volume routing cost.
"""

import os

from repro.experiments.corral_scaling import corral_scaling_study, format_corral_scaling


def test_bench_ext_corral_scaling(benchmark, run_once, emit):
    post_counts = (8, 12, 16, 24) if os.environ.get("REPRO_FULL") == "1" else (8, 12, 16)
    rows = run_once(benchmark, corral_scaling_study, post_counts=post_counts, seed=13)
    emit(benchmark, "Corral scaling study", format_corral_scaling(rows))
    # The corral keeps its degree bounded (a SNAIL constraint) while its
    # diameter grows with the ring; the hypercube's diameter grows only
    # logarithmically in the qubit count, so the gap narrows as posts are added.
    assert all(abs(row.corral_avg_connectivity - 6.0) < 0.1 for row in rows)
    corral_diameters = [row.corral_diameter for row in rows]
    assert corral_diameters == sorted(corral_diameters)
    gaps = [row.corral_diameter - row.hypercube_diameter for row in rows]
    assert gaps[-1] >= gaps[0]
