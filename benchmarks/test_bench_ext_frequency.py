"""Extension benchmark: frequency-crowding feasibility per (topology, modulator).

Quantifies the paper's Section 2.4 / 4.1 argument that rich topologies are
only wireable with the SNAIL's wide pump band: the CR and fSim budgets fail
to allocate collision-free tones on the Tree / Corral / hypercube graphs.
"""

import os

from repro.experiments.frequency_study import (
    feasible_modulators,
    format_frequency_report,
    frequency_crowding_study,
)


def test_bench_ext_frequency(benchmark, run_once, emit):
    scales = ("small", "large") if os.environ.get("REPRO_FULL") == "1" else ("small",)

    def study():
        return {scale: frequency_crowding_study(scale=scale) for scale in scales}

    results = run_once(benchmark, study)
    for scale, rows in results.items():
        emit(benchmark, f"Frequency crowding ({scale})", format_frequency_report(rows))

    small_rows = results["small"]
    mapping = feasible_modulators(small_rows)
    # Every SNAIL-enabled topology is allocatable by the SNAIL budget...
    for topology in ("Tree", "Tree-RR", "Corral1,1", "Corral1,2"):
        assert "SNAIL" in mapping[topology], topology
    # ...but the degree-6 corral defeats the CR budget (the paper's motivation
    # for co-designing topology and modulator together).
    assert "CR" not in mapping["Corral1,2"]
    # Heavy-Hex exists precisely because it dodges crowding for everyone.
    assert set(mapping["Heavy-Hex"]) == {"CR", "FSIM", "SNAIL"}
