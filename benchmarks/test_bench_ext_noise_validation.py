"""Extension benchmark: density-matrix validation of the count surrogates.

The paper argues that lower 2Q counts / shorter critical paths imply higher
fidelity without simulating noise.  This benchmark compiles the same QV
circuit onto two design points, simulates both under an identical
depolarising + relaxation channel model, and checks that the simulated
output fidelity orders the designs the same way the count surrogate does.
"""

from repro.transpiler import make_target, transpile
from repro.noise import CircuitNoiseModel, circuit_output_fidelity
from repro.topology import get_topology
from repro.workloads import quantum_volume_circuit


def _validate():
    circuit = quantum_volume_circuit(6, seed=11)
    noise = CircuitNoiseModel.from_gate_fidelity(0.99, t1=60.0, t2=60.0)
    rows = {}
    for label, topology, basis in (
        ("Heavy-Hex-CX", "Heavy-Hex", "cx"),
        ("Corral1,1-siswap", "Corral1,1", "siswap"),
    ):
        target = make_target(get_topology(topology, "small"), basis, name=label)
        result = transpile(circuit, target, seed=1)
        compact = result.circuit.remove_idle_qubits()
        rows[label] = {
            "total_2q": result.metrics.total_2q,
            "critical_2q": result.metrics.critical_2q,
            "simulated_fidelity": circuit_output_fidelity(compact, noise, max_qubits=12),
        }
    return rows


def test_bench_ext_noise_validation(benchmark, run_once, emit):
    rows = run_once(benchmark, _validate)
    emit(benchmark, "Count surrogate vs density-matrix fidelity (QV-6)", rows)
    corral = rows["Corral1,1-siswap"]
    heavy_hex = rows["Heavy-Hex-CX"]
    assert corral["total_2q"] < heavy_hex["total_2q"]
    assert corral["simulated_fidelity"] > heavy_hex["simulated_fidelity"]
