"""Extension benchmark: parallel and three-mode gates on one SNAIL module.

Checks the two dynamical claims of paper Section 4.1 on the module
simulator: simultaneous pumps on disjoint pairs realise both gates with
near-unit fidelity (because the difference frequencies are GHz apart),
and the same drive on a frequency-crowded module degrades — the
in-module face of the frequency-crowding argument.
"""

from repro.snailsim import SnailModule


def _study():
    clean = SnailModule()
    crowded = SnailModule(qubit_frequencies_ghz=(4.5, 5.0, 5.504, 6.006))
    return {
        "parallel_fidelity_clean": clean.parallel_gate_fidelity([(0, 1), (2, 3)], root=2),
        "parallel_fidelity_crowded": crowded.parallel_gate_fidelity([(0, 1), (2, 3)], root=2),
        "overlapping_pair_fidelity": clean.parallel_gate_fidelity([(0, 1), (1, 2)], root=2),
        "three_mode_spread": clean.three_mode_excitation_spread(0, (1, 2)),
    }


def test_bench_ext_parallel_gates(benchmark, run_once, emit):
    results = run_once(benchmark, _study)
    emit(benchmark, "SNAIL module parallel / three-mode gates", results)
    assert results["parallel_fidelity_clean"] > 0.99
    assert results["parallel_fidelity_crowded"] < results["parallel_fidelity_clean"]
    # Pumps sharing a qubit do not factorise into independent gates.
    assert results["overlapping_pair_fidelity"] < results["parallel_fidelity_clean"]
    # The three-mode drive moves the hub excitation onto both partners.
    spread = results["three_mode_spread"]
    assert spread[1] > 0.45 and spread[2] > 0.45 and spread[0] < 0.05
