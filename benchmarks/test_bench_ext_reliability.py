"""Extension benchmark: co-design advantage under heterogeneous noise.

The paper assumes uniform gate fidelity; this ablation re-evaluates the
prototype-scale co-design comparison with randomly varying per-edge
fidelities to check that the conclusion (Corral + sqrt(iSWAP) beats
Heavy-Hex + CNOT) is not an artefact of the uniformity assumption.
"""

import numpy as np

from repro.transpiler import make_target, transpile
from repro.core.noise import NoiseModel
from repro.topology import get_topology
from repro.workloads import quantum_volume_circuit


def _success_probabilities(seed: int):
    circuit = quantum_volume_circuit(12, seed=7)
    results = {}
    for name, topology, basis in (
        ("Heavy-Hex-CX", "Heavy-Hex", "cx"),
        ("Corral1,1-siswap", "Corral1,1", "siswap"),
    ):
        coupling_map = get_topology(topology, "small")
        target = make_target(coupling_map, basis, name=name)
        transpiled = transpile(circuit, target, seed=1).circuit
        noise = NoiseModel.random(
            coupling_map, mean_fidelity=0.995, spread=0.003, seed=seed
        )
        results[name] = noise.circuit_success_probability(transpiled)
    return results


def test_bench_ext_reliability(benchmark, run_once, emit):
    def study():
        return [_success_probabilities(seed) for seed in range(5)]

    trials = run_once(benchmark, study)
    average = {
        name: float(np.mean([trial[name] for trial in trials]))
        for name in trials[0]
    }
    emit(benchmark, "Estimated QV-12 success probability under random edge noise", average)
    # The co-designed machine must retain its advantage in every noise draw.
    for trial in trials:
        assert trial["Corral1,1-siswap"] > trial["Heavy-Hex-CX"]
