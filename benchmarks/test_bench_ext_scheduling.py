"""Extension benchmark: wall-clock (scheduled) co-design comparison.

The paper's Figs. 13-14 count normalised pulses; this benchmark schedules
the same design points with representative physical gate durations per
modulator and reports makespan and estimated success probability.
"""

import os

from repro.experiments.scheduling_study import (
    duration_series,
    format_scheduling_report,
    scheduling_study,
)


def test_bench_ext_scheduling(benchmark, run_once, emit):
    sizes = (8, 12, 16) if os.environ.get("REPRO_FULL") == "1" else (8, 12)
    rows = run_once(
        benchmark,
        scheduling_study,
        scale="small",
        workloads=("QuantumVolume", "GHZ"),
        sizes=sizes,
        seed=5,
    )
    emit(benchmark, "Duration-aware co-design study", format_scheduling_report(rows))

    qv_durations = {
        (row.design_point, row.circuit_qubits): row.duration_ns
        for row in rows
        if row.workload == "QuantumVolume"
    }
    largest = max(size for _, size in qv_durations)
    # With physical pulse lengths the SNAIL corral still beats the CR
    # Heavy-Hex machine in wall-clock time (fewer, shorter pulses).
    assert qv_durations[("Corral1,1-siswap", largest)] < qv_durations[("Heavy-Hex-CX", largest)]
    # Durations grow with circuit size for every design point.
    for label in {point for point, _ in qv_durations}:
        series = sorted((size, qv_durations[(label, size)]) for point, size in qv_durations if point == label)
        assert series[-1][1] > series[0][1]
    # The series helper produces one line per design point.
    assert len(duration_series(rows, "QuantumVolume")) == len({row.design_point for row in rows})
