"""Benchmark: recovery overhead of a worker crash mid-sweep.

The fault-tolerant execution layer promises that losing a pool worker
costs only the in-flight work plus one pool rebuild — not a serial
rerun of the whole map.  This benchmark times the same 16-task fan-out
twice on a 2-worker pool: crash-free, then with one injected worker
crash (``crash@5``, one-shot via a state directory so the rebuilt
worker does not refire it).  The faulted run must finish within 1.5x
the crash-free wall-clock, and both runs must return identical results.
"""

from __future__ import annotations

import time

from repro.runtime import ExperimentRunner, FailurePolicy, FaultPlan

TASKS = 16
WORKERS = 2
TASK_SECONDS = 0.15
RECOVERY_BUDGET_RATIO = 1.5


def _simulated_point(index: int, seconds: float) -> int:
    """A deterministic stand-in for one transpile: sleep, then answer."""
    time.sleep(seconds)
    return index * 3


def _run_map(fault_plan=None) -> tuple:
    runner = ExperimentRunner(
        parallel=True,
        max_workers=WORKERS,
        failure_policy=FailurePolicy(),
        fault_plan=fault_plan,
    )
    try:
        start = time.perf_counter()
        results = runner.map(
            _simulated_point, [(index, TASK_SECONDS) for index in range(TASKS)]
        )
        elapsed = time.perf_counter() - start
    finally:
        runner.close()
    return results, elapsed, runner.fault_stats


def test_bench_fault_recovery_overhead(benchmark, emit, tmp_path):
    expected = [index * 3 for index in range(TASKS)]

    # Crash-free reference on the identical grid and pool shape.
    baseline_results, baseline_seconds, _ = _run_map()
    assert baseline_results == expected

    def faulted_run():
        # A fresh state dir per round: the crash fires exactly once per run.
        state_dir = tmp_path / f"fault-state-{time.monotonic_ns()}"
        plan = FaultPlan.parse(f"crash@5;state={state_dir}")
        return _run_map(fault_plan=plan)

    results, faulted_seconds, stats = benchmark.pedantic(
        faulted_run, rounds=1, iterations=1
    )
    assert results == expected
    assert stats.pool_rebuilds >= 1, "the injected crash never fired"
    assert not stats.quarantined

    ratio = faulted_seconds / max(baseline_seconds, 1e-9)
    emit(
        benchmark,
        "Worker-crash recovery overhead (16 tasks, 2 workers, 1 crash)",
        {
            "baseline_seconds": round(baseline_seconds, 4),
            "faulted_seconds": round(faulted_seconds, 4),
            "ratio": round(ratio, 3),
            "budget_ratio": RECOVERY_BUDGET_RATIO,
            "pool_rebuilds": stats.pool_rebuilds,
        },
    )
    assert ratio < RECOVERY_BUDGET_RATIO, (
        f"crash recovery cost {ratio:.2f}x the crash-free run "
        f"(budget {RECOVERY_BUDGET_RATIO}x)"
    )
