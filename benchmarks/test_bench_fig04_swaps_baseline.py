"""Benchmark: paper Fig. 4 — SWAP counts on the baseline 84-qubit topologies.

Regenerates, for each workload, the total and critical-path SWAP series
over circuit size for Heavy-Hex, Hex-Lattice, Square-Lattice,
Lattice+AltDiagonals and Hypercube.
"""

from repro.experiments import figure4_study, format_swap_report, swap_series


def test_bench_fig04(benchmark, run_once, emit):
    result = run_once(benchmark, figure4_study, seed=11)
    emit(benchmark, "Fig. 4 (top): total SWAPs", format_swap_report(result, "total_swaps"))
    emit(
        benchmark,
        "Fig. 4 (bottom): critical-path SWAPs",
        format_swap_report(result, "critical_swaps"),
    )
    # Shape check: for the connectivity-hungry QAOA workload the hypercube
    # must induce fewer SWAPs than Heavy-Hex at the largest size measured.
    series = swap_series(result, "QAOAVanilla", "total_swaps")
    largest = max(size for size, _ in series["Heavy-Hex"])
    heavy = dict(series["Heavy-Hex"])[largest]
    cube = dict(series["Hypercube"])[largest]
    assert cube < heavy
    benchmark.extra_info["qaoa_heavyhex_over_hypercube_total_swaps"] = heavy / max(cube, 1)
