"""Benchmark: paper Fig. 6 — parametrically driven exchange chevron."""

import numpy as np

from repro.experiments import chevron_summary, figure6_study
from repro.snailsim import render_ascii_chevron


def test_bench_fig06(benchmark, run_once, emit):
    data = run_once(benchmark, figure6_study)
    emit(benchmark, "Fig. 6 summary", chevron_summary(data))
    emit(benchmark, "Fig. 6 chevron (target-qubit excitation)", render_ascii_chevron(data))
    # Shape checks: full on-resonance exchange, reduced off-resonance contrast.
    source, target = data.on_resonance_slice()
    assert np.max(1.0 - target) > 0.9
    assert np.max(1.0 - data.target_population[0]) < np.max(1.0 - target)
