"""Benchmark: paper Fig. 11 — SWAP counts on the 16-20 qubit SNAIL topologies."""

from repro.experiments import figure11_study, format_swap_report, swap_series


def test_bench_fig11(benchmark, run_once, emit):
    result = run_once(benchmark, figure11_study, seed=11)
    emit(benchmark, "Fig. 11 (top): total SWAPs", format_swap_report(result, "total_swaps"))
    emit(
        benchmark,
        "Fig. 11 (bottom): critical-path SWAPs",
        format_swap_report(result, "critical_swaps"),
    )
    # Shape check: the corral topologies beat the square lattice for QV at
    # the largest size in the grid (paper Section 6.1).
    series = swap_series(result, "QuantumVolume", "total_swaps")
    largest = max(size for size, _ in series["Square-Lattice"])
    lattice = dict(series["Square-Lattice"])[largest]
    corral = dict(series["Corral1,2"])[largest]
    assert corral <= lattice
