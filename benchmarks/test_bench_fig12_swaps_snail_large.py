"""Benchmark: paper Fig. 12 — SWAP counts, SNAIL vs baseline at 84 qubits."""

from repro.experiments import figure12_study, format_swap_report, swap_series


def test_bench_fig12(benchmark, run_once, emit):
    result = run_once(benchmark, figure12_study, seed=11)
    emit(benchmark, "Fig. 12 (top): total SWAPs", format_swap_report(result, "total_swaps"))
    emit(
        benchmark,
        "Fig. 12 (bottom): critical-path SWAPs",
        format_swap_report(result, "critical_swaps"),
    )
    # Shape checks from Section 6.1: Tree improves on Heavy-Hex, Hypercube
    # improves on Tree, for Quantum Volume at the largest measured size.
    series = swap_series(result, "QuantumVolume", "total_swaps")
    largest = max(size for size, _ in series["Heavy-Hex"])
    heavy = dict(series["Heavy-Hex"])[largest]
    tree = dict(series["Tree"])[largest]
    cube = dict(series["Hypercube"])[largest]
    assert tree < heavy
    assert cube <= tree
    benchmark.extra_info["qv_tree_vs_heavyhex_reduction"] = 1.0 - tree / heavy
    benchmark.extra_info["qv_hypercube_vs_tree_reduction"] = 1.0 - cube / max(tree, 1)
