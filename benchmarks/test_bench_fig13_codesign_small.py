"""Benchmark: paper Fig. 13 — co-designed 2Q gate counts at 16-20 qubits."""

from repro.experiments import figure13_study, format_gate_report, gate_series


def test_bench_fig13(benchmark, run_once, emit):
    result = run_once(benchmark, figure13_study, seed=11)
    emit(benchmark, "Fig. 13 (top): total 2Q gates", format_gate_report(result, "total_2q"))
    emit(
        benchmark,
        "Fig. 13 (bottom): critical-path 2Q gates (pulse duration)",
        format_gate_report(result, "critical_2q"),
    )
    emit(
        benchmark,
        "Fig. 13 (pulse-length weighted duration)",
        format_gate_report(result, "weighted_duration"),
    )
    # Shape check (paper Section 6.2): the Corral + sqrt(iSWAP) co-design
    # consistently outperforms Heavy-Hex + CNOT.
    series = gate_series(result, "QuantumVolume", "total_2q")
    largest = max(size for size, _ in series["Heavy-Hex-CX"])
    assert dict(series["Corral1,1-siswap"])[largest] < dict(series["Heavy-Hex-CX"])[largest]
