"""Benchmark: paper Fig. 14 — co-designed 2Q gate counts at 84 qubits."""

from repro.experiments import figure14_study, format_gate_report, gate_series


def test_bench_fig14(benchmark, run_once, emit):
    result = run_once(benchmark, figure14_study, seed=11)
    emit(benchmark, "Fig. 14 (top): total 2Q gates", format_gate_report(result, "total_2q"))
    emit(
        benchmark,
        "Fig. 14 (bottom): critical-path 2Q gates (pulse duration)",
        format_gate_report(result, "critical_2q"),
    )
    # Shape check: the SNAIL hypercube design beats Heavy-Hex + CNOT on QV
    # at the largest measured size, for both totals and critical path.
    for metric in ("total_2q", "critical_2q"):
        series = gate_series(result, "QuantumVolume", metric)
        largest = max(size for size, _ in series["Heavy-Hex-CX"])
        heavy = dict(series["Heavy-Hex-CX"])[largest]
        cube = dict(series["Hypercube-siswap"])[largest]
        assert cube < heavy
        benchmark.extra_info[f"qv_heavyhex_over_hypercube_{metric}"] = heavy / max(cube, 1)
