"""Benchmark: paper Fig. 15 — n-th-root iSWAP pulse-duration sensitivity study."""

from repro.core.sensitivity import format_sensitivity_report
from repro.experiments import figure15_study, reduction_comparison


def test_bench_fig15(benchmark, run_once, emit):
    result = run_once(benchmark, figure15_study, seed=2022)
    emit(benchmark, "Fig. 15 report", format_sensitivity_report(result))
    comparison = reduction_comparison(result)
    emit(
        benchmark,
        "n-root infidelity reduction vs sqrt(iSWAP) at Fb=0.99 (measured vs paper)",
        {
            f"n={root}": {
                "measured_percent": round(100 * values["measured"], 1),
                "paper_percent": round(100 * values["paper"], 1),
            }
            for root, values in comparison.items()
        },
    )
    # Shape checks (paper Section 6.3): deeper fractions reduce the total
    # pulse duration, and at a 99% iSWAP fidelity the 3rd/4th roots reduce
    # the total infidelity relative to sqrt(iSWAP).
    durations = {root: result.root_results[root].pulse_duration for root in result.roots}
    assert durations[max(result.roots)] <= durations[2] + 1e-9
    reductions = result.infidelity_reduction_vs_sqiswap(0.99)
    assert reductions[3] > 0.0
    assert reductions[4] > 0.0
