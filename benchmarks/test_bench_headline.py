"""Benchmark: the paper's headline QV ratios (abstract / Section 6.1).

Hypercube + sqrt(iSWAP) versus Heavy-Hex + CNOT, averaged over Quantum
Volume circuit sizes: total SWAPs (paper 2.57x), critical-path SWAPs
(5.63x), total 2Q gates (3.16x) and critical-path 2Q gates (6.11x).
"""

from repro.experiments import format_headline_report, headline_study


def test_bench_headline(benchmark, run_once, emit):
    ratios = run_once(benchmark, headline_study, seed=11)
    emit(benchmark, "Headline ratios (measured vs paper)", format_headline_report(ratios))
    emit(benchmark, "Headline ratios raw", ratios.compared_to_paper())
    # Shape check: every headline aggregate shows a clear (>1.5x) advantage
    # for the co-designed machine, as in the paper.
    for value in ratios.as_dict().values():
        assert value > 1.5
