"""Benchmark: layout hot path and the worker-shared result cache.

Companion of ``test_bench_routing_hotpath.py`` for this PR's two claims:

* the vectorized :class:`DenseLayout` scorer lays a batch of 48-qubit
  corral QV circuits out at least 3x faster than the legacy Python-loop
  scorer (``engine="reference"``), selecting bit-identical layouts;
* a parallel (``--workers N``) rerun against a warm shared cache dir
  performs **zero** transpiles: every point is served off disk *by the
  pool workers*, whose hits are visible in the parent's ``CacheStats``.

The DAGs are prebuilt outside the timed region (they are shared with the
routing stage in a real pipeline and identical for both engines), so the
timer isolates exactly the subset-search + ranking work that was
vectorized.
"""

from __future__ import annotations

import time
import warnings

from repro.circuits.dag import DAGCircuit
from repro.core.pipeline import run_sweep
from repro.runtime import ExperimentRunner, PersistentResultCache
from repro.topology import corral_topology
from repro.transpiler import DenseLayout, PropertySet, make_target
from repro.workloads import quantum_volume_circuit

LAYOUT_QUBITS = 48  # Corral with 24 posts — the acceptance-bar device
LAYOUT_BATCH = 10  # one sweep's worth of QV instances

SWEEP_WORKLOADS = ("QuantumVolume", "GHZ")
SWEEP_SIZES = (12, 16, 20)
SWEEP_SEED = 11
SWEEP_WORKERS = 4


def _layout_batch(engine: str):
    # A fresh CouplingMap per engine: the densest-subset memo never leaks
    # across the comparison.
    coupling_map = corral_topology(LAYOUT_QUBITS // 2, (1, 1))
    prepared = []
    for seed in range(LAYOUT_BATCH):
        circuit = quantum_volume_circuit(LAYOUT_QUBITS, seed=seed)
        properties = PropertySet()
        DAGCircuit.shared(circuit, properties)  # prebuilt, as routing shares it
        prepared.append((circuit, properties))
    layout_pass = DenseLayout(coupling_map, engine=engine)
    start = time.perf_counter()
    layouts = []
    for circuit, properties in prepared:
        layout_pass.run(circuit, properties)
        layouts.append(properties["layout"].to_dict())
    elapsed = time.perf_counter() - start
    return layouts, elapsed


def test_bench_dense_layout_vectorized_speedup(benchmark, emit):
    vector_layouts, vector_seconds = _layout_batch("vector")
    reference_layouts, reference_seconds = _layout_batch("reference")
    benchmark.pedantic(_layout_batch, args=("vector",), rounds=1, iterations=1)

    # Same circuits, same device: layout selection must be bit-identical,
    # not merely equally good.
    assert vector_layouts == reference_layouts
    speedup = reference_seconds / max(vector_seconds, 1e-9)
    emit(
        benchmark,
        f"Vectorized DenseLayout vs legacy scorer "
        f"({LAYOUT_QUBITS}-qubit corral QV x{LAYOUT_BATCH})",
        {
            "qubits": LAYOUT_QUBITS,
            "circuits": LAYOUT_BATCH,
            "reference_seconds": round(reference_seconds, 4),
            "vector_seconds": round(vector_seconds, 4),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= 3.0


def _parallel_sweep(cache_dir):
    runner = ExperimentRunner(
        parallel=True,
        max_workers=SWEEP_WORKERS,
        result_cache=PersistentResultCache(cache_dir),
    )
    targets = [
        make_target(corral_topology(12, (1, 1)), "siswap", name="corral-24q-siswap"),
        make_target(corral_topology(16, (1, 1)), "siswap", name="corral-32q-siswap"),
    ]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # sandbox pool fallback
        with runner:
            start = time.perf_counter()
            result = run_sweep(
                SWEEP_WORKLOADS, SWEEP_SIZES, targets, seed=SWEEP_SEED, runner=runner
            )
            elapsed = time.perf_counter() - start
    return result, runner.result_cache.stats(), elapsed


def test_bench_parallel_rerun_on_warm_cache_transpiles_nothing(benchmark, emit, tmp_path):
    """Workers of a warm parallel rerun serve every point from shared disk."""
    cold, cold_stats, cold_seconds = _parallel_sweep(tmp_path)
    warm, warm_stats, warm_seconds = _parallel_sweep(tmp_path)
    benchmark.pedantic(lambda: _parallel_sweep(tmp_path), rounds=1, iterations=1)

    assert [r.as_dict() for r in warm] == [r.as_dict() for r in cold]
    # The acceptance bar: zero transpiles on the parallel warm rerun, with
    # the workers' disk hits surfaced through the parent's CacheStats.
    assert warm_stats.computed == 0
    assert warm_stats.disk_hits == len(cold.records)
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    emit(
        benchmark,
        f"Parallel (--workers {SWEEP_WORKERS}) rerun on a warm shared cache dir",
        {
            "points": len(cold.records),
            "workers": SWEEP_WORKERS,
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "speedup": round(speedup, 1),
            "cold": str(cold_stats),
            "warm": str(warm_stats),
        },
    )
    assert speedup >= 2.0
