"""Benchmark: the vectorized density-matrix engine.

Two claims are exercised:

* the local-contraction engine beats the legacy full-expansion engine by
  at least 5x wall-clock on an 8-qubit noisy Quantum Volume circuit (in
  practice ~40x), with matching output states;
* wall-clock vs qubit count is reported for ideal and noisy runs up to a
  width the legacy engine could not reach (its default ceiling was 10
  qubits), demonstrating the raised ceilings.

The regenerated series land in ``extra_info`` and therefore in the
``BENCH_*.json`` artifacts of the smoke and nightly CI jobs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.noise.circuit_noise import CircuitNoiseModel
from repro.noise.density_matrix import DensityMatrixSimulator
from repro.workloads import quantum_volume_circuit

SEED = 3
SPEEDUP_WIDTH = 8
#: Scaling grid: the quick configuration stops at 10 qubits so the smoke CI
#: job stays fast; REPRO_FULL=1 extends to 12, past the legacy ceiling.
SCALING_WIDTHS_QUICK = (4, 6, 8, 10)
SCALING_WIDTHS_FULL = (4, 6, 8, 10, 12)


def _noise_model() -> CircuitNoiseModel:
    return CircuitNoiseModel(
        one_qubit_error=0.001, two_qubit_error=0.01, t1=100.0, t2=90.0
    )


def _timed_run(engine: str, width: int, noisy: bool) -> tuple:
    circuit = quantum_volume_circuit(width, seed=SEED)
    simulator = DensityMatrixSimulator(engine=engine)
    model = _noise_model() if noisy else None
    start = time.perf_counter()
    state = simulator.run(circuit, noise_model=model)
    return time.perf_counter() - start, state


def test_bench_noisy_sim_speedup_vs_legacy(benchmark, run_once, emit):
    fast_seconds, fast_state = run_once(
        benchmark, _timed_run, "local", SPEEDUP_WIDTH, True
    )
    slow_seconds, slow_state = _timed_run("expand", SPEEDUP_WIDTH, True)
    speedup = slow_seconds / max(fast_seconds, 1e-9)
    emit(
        benchmark,
        f"Vectorized vs full-expansion engine (noisy QV-{SPEEDUP_WIDTH})",
        {
            "qubits": SPEEDUP_WIDTH,
            "local_seconds": round(fast_seconds, 4),
            "expand_seconds": round(slow_seconds, 4),
            "speedup": round(speedup, 1),
        },
    )
    assert np.max(np.abs(fast_state.matrix - slow_state.matrix)) < 1e-10
    # The acceptance bar: local contractions beat full expansion >= 5x.
    assert speedup >= 5.0


def test_bench_noisy_sim_scaling(benchmark, run_once, emit):
    widths = SCALING_WIDTHS_FULL if os.environ.get("REPRO_FULL") else SCALING_WIDTHS_QUICK

    def _scale():
        rows = {}
        for width in widths:
            ideal_seconds, _ = _timed_run("local", width, noisy=False)
            noisy_seconds, state = _timed_run("local", width, noisy=True)
            rows[width] = {
                "ideal_seconds": round(ideal_seconds, 4),
                "noisy_seconds": round(noisy_seconds, 4),
                "trace": round(state.trace(), 9),
            }
        return rows

    rows = run_once(benchmark, _scale)
    emit(benchmark, "Density-matrix wall-clock vs qubit count (QV)", rows)
    for width, row in rows.items():
        assert abs(row["trace"] - 1.0) < 1e-6, f"trace drift at {width} qubits"
