"""Benchmark: routing hot path and the cross-process result cache.

Three claims are exercised:

* the vectorized SWAP scorer routes a 48-qubit corral QV circuit at least
  3x faster than the legacy per-candidate Python loop (``engine=
  "reference"``), with a bit-identical SWAP sequence at the same seed;
* a second *process* rerunning a sweep against a shared ``--cache-dir``
  performs zero transpilations (every point is a disk hit) and finishes
  at least 5x faster than the cold run;
* the same holds for the in-process equivalent (two fresh
  :class:`~repro.runtime.PersistentResultCache` instances over one
  directory), without the interpreter-startup noise.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.core.pipeline import run_sweep
from repro.runtime import ExperimentRunner, PersistentResultCache
from repro.topology import corral_topology
from repro.transpiler import DenseLayout, PropertySet, SabreRouting, make_target
from repro.workloads import quantum_volume_circuit

_SRC = Path(__file__).resolve().parent.parent / "src"

ROUTER_SEED = 7
ROUTER_QUBITS = 48  # Corral with 24 posts — the acceptance-bar device

SWEEP_WORKLOADS = ("QuantumVolume", "GHZ")
SWEEP_SIZES = (12, 16, 20)
SWEEP_SEED = 11

#: The CLI sweep is heavy enough that compute dominates interpreter
#: startup in the cold/warm ratio.
CLI_SWEEP = [
    "swaps",
    "--scale",
    "large",
    "--sizes",
    "24",
    "32",
    "40",
    "--workloads",
    "QuantumVolume",
    "QFT",
]


def _route(engine: str):
    coupling_map = corral_topology(ROUTER_QUBITS // 2, (1, 1))
    circuit = quantum_volume_circuit(ROUTER_QUBITS, seed=ROUTER_SEED)
    properties = PropertySet()
    DenseLayout(coupling_map).run(circuit, properties)
    start = time.perf_counter()
    routed = SabreRouting(coupling_map, seed=ROUTER_SEED, engine=engine).run(
        circuit, properties
    )
    elapsed = time.perf_counter() - start
    return routed, properties["routing_swaps"], elapsed


def test_bench_routing_vectorized_speedup(benchmark, emit):
    vector_routed, vector_swaps, vector_seconds = _route("vector")
    reference_routed, reference_swaps, reference_seconds = _route("reference")
    benchmark.pedantic(_route, args=("vector",), rounds=1, iterations=1)

    # Same seed, same scorer semantics: the SWAP sequence must be
    # bit-identical, not merely equal in count.
    assert vector_swaps == reference_swaps
    assert [(inst.name, inst.qubits) for inst in vector_routed] == [
        (inst.name, inst.qubits) for inst in reference_routed
    ]
    speedup = reference_seconds / max(vector_seconds, 1e-9)
    emit(
        benchmark,
        f"Vectorized SABRE vs legacy scorer ({ROUTER_QUBITS}-qubit corral QV)",
        {
            "qubits": ROUTER_QUBITS,
            "routing_swaps": int(vector_swaps),
            "reference_seconds": round(reference_seconds, 3),
            "vector_seconds": round(vector_seconds, 3),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= 3.0


def _disk_sweep(cache_dir) -> tuple:
    runner = ExperimentRunner(
        parallel=False, result_cache=PersistentResultCache(cache_dir)
    )
    targets = [
        make_target(corral_topology(12, (1, 1)), "siswap", name="corral-24q-siswap"),
        make_target(corral_topology(16, (1, 1)), "siswap", name="corral-32q-siswap"),
    ]
    start = time.perf_counter()
    result = run_sweep(SWEEP_WORKLOADS, SWEEP_SIZES, targets, seed=SWEEP_SEED, runner=runner)
    elapsed = time.perf_counter() - start
    return result, runner.result_cache.stats(), elapsed


def test_bench_disk_cache_cross_instance_warm(benchmark, emit, tmp_path):
    cold, cold_stats, cold_seconds = _disk_sweep(tmp_path)
    # A fresh cache instance over the same directory models a new process:
    # the memory LRU starts empty, every point must come off disk.
    warm, warm_stats, warm_seconds = _disk_sweep(tmp_path)
    benchmark.pedantic(lambda: _disk_sweep(tmp_path), rounds=1, iterations=1)

    assert [r.as_dict() for r in warm] == [r.as_dict() for r in cold]
    assert warm_stats.computed == 0
    assert warm_stats.disk_hits == len(cold)
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    emit(
        benchmark,
        "Disk-cache warm rerun (fresh cache instance, shared directory)",
        {
            "points": len(cold),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(speedup, 1),
            "cold": str(cold_stats),
            "warm": str(warm_stats),
        },
    )
    assert speedup >= 5.0


def test_bench_disk_cache_cli_cross_process(benchmark, emit, tmp_path):
    """Two real CLI processes sharing ``--cache-dir``: warm does no work."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro", *CLI_SWEEP, "--cache-dir", str(tmp_path)]

    def _invoke():
        started = time.perf_counter()
        process = subprocess.run(command, capture_output=True, text=True, env=env)
        elapsed = time.perf_counter() - started
        assert process.returncode == 0, process.stderr
        return process, elapsed

    cold_process, cold_seconds = _invoke()
    warm_process, warm_seconds = _invoke()
    benchmark.pedantic(_invoke, rounds=1, iterations=1)

    assert cold_process.stdout == warm_process.stdout
    cache_line = warm_process.stderr.strip().splitlines()[-1]
    assert " 0 transpiled" in cache_line, cache_line
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    emit(
        benchmark,
        "Cold vs warm CLI process on a shared --cache-dir",
        {
            "command": " ".join(CLI_SWEEP),
            "cold_seconds": round(cold_seconds, 2),
            "warm_seconds": round(warm_seconds, 2),
            "speedup": round(speedup, 1),
            "warm_cache_line": cache_line,
        },
    )
    assert speedup >= 5.0
