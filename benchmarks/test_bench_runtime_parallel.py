"""Benchmark: the experiment runtime — result caching and parallel fan-out.

Two claims are exercised on a multi-point sweep (two workloads x three
sizes x two backends = 12 transpilations):

* a warm :class:`~repro.runtime.ResultCache` serves a repeated sweep at
  least 2x faster than recomputing it (in practice orders of magnitude),
  with bit-identical records;
* a 4-worker process pool produces records bit-identical to the serial
  loop; its wall-clock ratio is reported (the speedup itself depends on
  the host's core count, so it is emitted rather than asserted).
"""

from __future__ import annotations

import time

from repro.transpiler import make_target
from repro.core.pipeline import run_sweep
from repro.runtime import ExperimentRunner, ResultCache
from repro.topology import get_topology

WORKLOADS = ("QuantumVolume", "GHZ")
SIZES = (8, 10, 12)
SEED = 11


def _backends():
    return [
        make_target(get_topology("Corral1,1", "small"), "siswap", name="Corral1,1-siswap"),
        make_target(get_topology("Heavy-Hex", "small"), "cx", name="Heavy-Hex-CX"),
    ]


def _sweep(runner=None):
    return run_sweep(WORKLOADS, SIZES, _backends(), seed=SEED, runner=runner)


def test_bench_runtime_result_cache(benchmark, emit):
    start = time.perf_counter()
    serial = _sweep()
    cold_seconds = time.perf_counter() - start

    runner = ExperimentRunner(parallel=False, result_cache=ResultCache())
    _sweep(runner)  # populate the cache

    start = time.perf_counter()
    warm = _sweep(runner)
    warm_seconds = time.perf_counter() - start
    benchmark.pedantic(_sweep, args=(runner,), rounds=1, iterations=1)

    assert [r.as_dict() for r in warm] == [r.as_dict() for r in serial]
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    emit(
        benchmark,
        "Result-cache speedup on a 12-point sweep",
        {
            "points": len(serial),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(speedup, 1),
            "cache": str(runner.result_cache.stats()),
        },
    )
    # The acceptance bar: a warm runtime beats recomputation by >= 2x.
    assert speedup >= 2.0


def test_bench_runtime_parallel_parity(benchmark, emit):
    start = time.perf_counter()
    serial = _sweep()
    serial_seconds = time.perf_counter() - start

    runner = ExperimentRunner(parallel=True, max_workers=4, result_cache=None)
    start = time.perf_counter()
    parallel = _sweep(runner)
    parallel_seconds = time.perf_counter() - start
    benchmark.pedantic(_sweep, args=(runner,), rounds=1, iterations=1)

    assert [r.as_dict() for r in parallel] == [r.as_dict() for r in serial]
    emit(
        benchmark,
        "Parallel (4 workers) vs serial on a 12-point sweep",
        {
            "points": len(serial),
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        },
    )
