"""Soak benchmark: a warm server vs. repeated one-shot CLI invocations.

The headline claim of ``repro serve`` (docs/architecture.md) is that a
resident process amortizes interpreter startup, imports and cache warmup
across requests.  This benchmark pins it down: 8 concurrent clients each
running a cached QuantumVolume sweep against one warm server must finish
at least 5x faster end-to-end than 8 sequential cold ``python -m repro``
invocations of the equivalent sweep on an equally warm disk cache.

Both sides read fully cached results, so the comparison isolates the
per-request overhead (process start + imports + cache probing for the
CLI, one local HTTP round-trip for the server) rather than raw
transpilation throughput.
"""

from __future__ import annotations

import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.experiments import FIG11_TOPOLOGIES
from repro.server import ServeClient, ServerHandle

WORKLOAD = "QuantumVolume"
SIZES = (6, 8, 10)
SEED = 0
CLIENTS = 8


def _cli_invocation(cache_dir):
    """One cold-process CLI sweep: the Fig. 11 swap study on a QV grid."""
    return [
        sys.executable,
        "-m",
        "repro",
        "swaps",
        "--workloads",
        WORKLOAD,
        "--sizes",
        *[str(size) for size in SIZES],
        "--seed",
        str(SEED),
        "--cache-dir",
        str(cache_dir),
    ]


def _server_sweep(port):
    """The equivalent grid through ``/v1/sweep`` (same points as the CLI)."""
    client = ServeClient(port=port, timeout=300.0)
    result = client.sweep(
        [WORKLOAD],
        list(SIZES),
        [{"topology": name, "basis": "cx"} for name in FIG11_TOPOLOGIES],
        routing="sabre",
        seed=SEED,
    )
    assert result["count"] == len(SIZES) * len(FIG11_TOPOLOGIES)
    return result


def test_bench_serve_soak(benchmark, emit, tmp_path):
    cli_cache = tmp_path / "cli-cache"
    serve_cache = tmp_path / "serve-cache"

    # Warm both caches untimed: one CLI run persists the grid to disk, one
    # server request fills the resident LRU (and the server's disk tier).
    warmup = subprocess.run(
        _cli_invocation(cli_cache), capture_output=True, text=True, timeout=900
    )
    assert warmup.returncode == 0, warmup.stderr

    with ServerHandle(port=0, parallel=False, cache_dir=str(serve_cache)) as handle:
        first = _server_sweep(handle.port)
        assert first["cache"]["computed"] == first["count"]

        # Timed: 8 sequential cold CLI processes on the warm disk cache.
        start = time.perf_counter()
        for _ in range(CLIENTS):
            run = subprocess.run(
                _cli_invocation(cli_cache), capture_output=True, text=True, timeout=900
            )
            assert run.returncode == 0, run.stderr
        cli_seconds = time.perf_counter() - start

        # Timed: 8 concurrent clients against the warm server.
        def _soak():
            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                return list(pool.map(_server_sweep, [handle.port] * CLIENTS))

        start = time.perf_counter()
        results = _soak()
        serve_seconds = time.perf_counter() - start
        benchmark.pedantic(_soak, rounds=1, iterations=1)

        # Every concurrent client saw the same fully cached records.
        for result in results:
            assert result["records"] == first["records"]
            assert result["cache"]["computed"] == 0

        metrics = ServeClient(port=handle.port, timeout=30.0).metrics()
        assert metrics["jobs"]["failed"] == 0

    speedup = cli_seconds / max(serve_seconds, 1e-9)
    emit(
        benchmark,
        f"Warm server ({CLIENTS} concurrent clients) vs {CLIENTS} cold CLI runs",
        {
            "grid_points": first["count"],
            "cli_seconds": round(cli_seconds, 4),
            "serve_seconds": round(serve_seconds, 4),
            "speedup": round(speedup, 1),
            "server_cache": metrics["cache"],
        },
    )
    # The acceptance bar: the resident server amortizes startup at least
    # 5x over one-shot processes doing identical fully cached work.
    assert speedup >= 5.0
