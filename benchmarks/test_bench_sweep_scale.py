"""Benchmark: million-point sweep machinery, exercised at 50k-point scale.

Four claims from the scaling work are pinned here:

* **Packed segments** — a ~50k-point sweep lands its cache records in at
  most a few dozen segment files (not 50k inodes);
* **Warm reruns** — replaying the sweep against the warm directory is at
  least 5x faster than the cold compute, with zero recomputation;
* **Persistent pool workers** — a second ``map`` on a live runner is
  faster than the same ``map`` on a freshly spawned pool;
* **Kill-and-resume** — a sweep interrupted after its first shard
  resumes by recomputing exactly the missing shards, and the final
  ``SweepResult`` is record-identical to an uninterrupted run.

The scale legs use a cheap synthetic task (~100 µs) through the real
``ExperimentRunner`` + ``PersistentResultCache`` path, so the numbers
measure the runtime machinery rather than 50k transpilations.  The
resume leg interrupts deterministically via an exception; the real
SIGKILL variant lives in ``tests/runtime/test_crash_recovery.py``.
"""

from __future__ import annotations

import time
import warnings

import pytest

from repro.core.pipeline import run_sweep, run_sweep_sharded
from repro.runtime import ExperimentRunner, PersistentResultCache
from repro.transpiler.target import Target

N_POINTS = 50_000


def _work(index: int):
    """Synthetic sweep point: ~100 µs of compute, deterministic result."""
    return {"index": index, "weight": sum(i * i for i in range(2000)) + index}


def _grid():
    tasks = [(index,) for index in range(N_POINTS)]
    keys = [("scale-point", index) for index in range(N_POINTS)]
    return tasks, keys


def test_bench_packed_segments_and_warm_rerun(benchmark, emit, tmp_path):
    tasks, keys = _grid()

    cold_cache = PersistentResultCache(tmp_path)
    cold_runner = ExperimentRunner(parallel=False, result_cache=cold_cache)
    start = time.perf_counter()
    cold = cold_runner.map(_work, tasks, keys=keys)
    cold_seconds = time.perf_counter() - start
    cold_cache.close()

    segments = sorted(tmp_path.glob("seg-*.rps"))
    total_files = [path for path in tmp_path.iterdir() if path.is_file()]
    # O(1) file count: a few dozen segments at most, never one per record.
    assert 1 <= len(segments) <= 36
    assert len(total_files) <= 2 * len(segments)  # only segments + sidecars

    warm_cache = PersistentResultCache(tmp_path)
    warm_runner = ExperimentRunner(parallel=False, result_cache=warm_cache)
    start = time.perf_counter()
    warm = warm_runner.map(_work, tasks, keys=keys)
    warm_seconds = time.perf_counter() - start
    benchmark.pedantic(
        warm_runner.map, args=(_work, tasks), kwargs={"keys": keys},
        rounds=1, iterations=1,
    )

    assert warm == cold
    stats = warm_cache.stats()
    assert stats.computed == 0  # the warm pass recomputes nothing
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    emit(
        benchmark,
        f"{N_POINTS}-point sweep on packed segments",
        {
            "points": N_POINTS,
            "segment_files": len(segments),
            "files_total": len(total_files),
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "warm_speedup": round(speedup, 1),
        },
    )
    # The acceptance bar: a warm rerun beats the cold sweep by >= 5x.
    assert speedup >= 5.0


def test_bench_persistent_pool_second_map(benchmark, emit):
    tasks = [(index,) for index in range(256)]

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        live = ExperimentRunner(parallel=True, max_workers=2, result_cache=None)
        with live:
            live.map(_work, tasks)  # pays the pool spawn
            pool_survived = live.pool_alive
            start = time.perf_counter()
            second = live.map(_work, tasks)
            live_seconds = time.perf_counter() - start

        start = time.perf_counter()
        fresh = ExperimentRunner(parallel=True, max_workers=2, result_cache=None)
        with fresh:
            first = fresh.map(_work, tasks)
        fresh_seconds = time.perf_counter() - start
        benchmark.pedantic(
            lambda: ExperimentRunner(parallel=True, max_workers=2).map(_work, tasks),
            rounds=1, iterations=1,
        )

    assert second == first
    emit(
        benchmark,
        "Second map on a live pool vs a fresh pool",
        {
            "tasks": len(tasks),
            "live_pool_seconds": round(live_seconds, 4),
            "fresh_pool_seconds": round(fresh_seconds, 4),
            "pool_survived_between_maps": pool_survived,
            "speedup": round(fresh_seconds / max(live_seconds, 1e-9), 2),
        },
    )
    if pool_survived:
        # Keeping workers alive must beat paying the spawn again.
        assert live_seconds < fresh_seconds


class _Interrupted(Exception):
    pass


def test_bench_kill_and_resume(benchmark, emit, tmp_path):
    target = Target.from_names(
        "Corral1,1", "siswap", scale="small", name="Corral1,1-siswap"
    )
    checkpoint_dir = tmp_path / "ckpt"

    def die_after_first_shard(index, total, status, points):
        raise _Interrupted

    start = time.perf_counter()
    with pytest.raises(_Interrupted):
        run_sweep_sharded(
            ["GHZ"], [4, 5, 6], [target], checkpoint_dir,
            shard_points=1, shard_progress=die_after_first_shard,
        )
    interrupted_seconds = time.perf_counter() - start

    statuses = {}
    start = time.perf_counter()
    resumed = run_sweep_sharded(
        ["GHZ"], [4, 5, 6], [target], checkpoint_dir,
        shard_points=1,
        shard_progress=lambda i, n, status, k: statuses.setdefault(i, status),
    )
    resume_seconds = time.perf_counter() - start
    benchmark.pedantic(
        run_sweep_sharded,
        args=(["GHZ"], [4, 5, 6], [target], checkpoint_dir),
        kwargs={"shard_points": 1},
        rounds=1, iterations=1,
    )

    # Only the shards the "crash" lost are recomputed...
    assert statuses == {0: "restored", 1: "computed", 2: "computed"}
    # ...and the result is record-identical to an uninterrupted sweep.
    direct = run_sweep(["GHZ"], [4, 5, 6], [target])
    assert [r.as_dict() for r in resumed.records] == [
        r.as_dict() for r in direct.records
    ]
    emit(
        benchmark,
        "Kill-and-resume on a 3-shard sweep",
        {
            "interrupted_seconds": round(interrupted_seconds, 3),
            "resume_seconds": round(resume_seconds, 3),
            "shards": statuses,
        },
    )
