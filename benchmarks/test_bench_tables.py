"""Benchmarks: paper Table 1 and Table 2 (topology properties)."""

from repro.experiments import format_table_comparison, table1, table2


def test_bench_table1(benchmark, run_once, emit):
    """Table 1 — 16-20 qubit topology properties (measured vs paper)."""
    rows = run_once(benchmark, table1)
    emit(benchmark, "Table 1", format_table_comparison(rows, "Table 1 (measured | paper)"))
    assert len(rows) == 8


def test_bench_table2(benchmark, run_once, emit):
    """Table 2 — 84-qubit topology properties (measured vs paper)."""
    rows = run_once(benchmark, table2)
    emit(benchmark, "Table 2", format_table_comparison(rows, "Table 2 (measured | paper)"))
    assert len(rows) == 7
