"""Benchmark: the optimization-level ladder of the staged compilation API.

Measures, per level 0..3, the wall-clock cost and resulting 2Q gate counts
of compiling a QV + QFT workload pair onto the co-designed prototype
(Corral(1,1) + sqrt(iSWAP)) and the CNOT baseline (Heavy-Hex + CX).  The
per-level table is attached to the benchmark's ``extra_info`` so it lands
in the ``BENCH_*.json`` artifacts the CI uploads.
"""

import time

from repro.transpiler import Target, transpile
from repro.workloads import build_workload

LEVELS = (0, 1, 2, 3)
TARGETS = (("Corral1,1", "siswap"), ("Heavy-Hex", "cx"))
WORKLOADS = (("QuantumVolume", 12), ("QFT", 12))
SEED = 11


def _ladder():
    rows = {}
    for topology, basis in TARGETS:
        target = Target.from_names(topology, basis)
        for workload, size in WORKLOADS:
            circuit = build_workload(workload, size, seed=SEED)
            for level in LEVELS:
                start = time.perf_counter()
                metrics = transpile(
                    circuit, target, seed=SEED, optimization_level=level
                ).metrics
                elapsed = time.perf_counter() - start
                rows[f"{target.name}/{workload}-{size}/L{level}"] = {
                    "wall_clock_s": round(elapsed, 4),
                    "total_2q": metrics.total_2q,
                    "critical_2q": metrics.critical_2q,
                    "total_swaps": metrics.total_swaps,
                }
    return rows


def test_bench_transpile_levels(benchmark, run_once, emit):
    rows = run_once(benchmark, _ladder)
    emit(benchmark, "Optimization-level ladder (wall-clock + 2Q counts)", rows)
    for topology, basis in TARGETS:
        name = f"{topology}-{basis}"
        for workload, size in WORKLOADS:
            point = f"{name}/{workload}-{size}"
            # The ladder must be monotone where it promises to be: level 2
            # never costs more 2Q gates than level 1, which never costs
            # more than the cheap level-0 router.
            assert (
                rows[f"{point}/L2"]["total_2q"]
                <= rows[f"{point}/L1"]["total_2q"]
                <= rows[f"{point}/L0"]["total_2q"]
            )
