"""Co-design comparison: a miniature version of paper Figs. 11 and 13.

Transpiles the paper's workloads at two prototype-scale sizes onto every
small-machine design point (topology + basis pairing), and prints

* the routing-induced SWAP counts (topology efficiency, Fig. 11), and
* the translated 2Q gate counts and critical-path pulse counts (the full
  co-design comparison, Fig. 13).

Run with:  python examples/codesign_comparison.py
(set REPRO_FULL=1 for the full size sweep of the paper)
"""

from repro.experiments import (
    figure11_study,
    figure13_study,
    format_gate_report,
    format_swap_report,
)


def main() -> None:
    sizes = [8, 12, 16]
    workloads = ["QuantumVolume", "QAOAVanilla", "GHZ"]

    print("== Topology study (routing-induced SWAPs, cf. paper Fig. 11) ==\n")
    swap_result = figure11_study(sizes=sizes, workloads=workloads, seed=11)
    print(format_swap_report(swap_result, "total_swaps"))
    print(format_swap_report(swap_result, "critical_swaps"))

    print("== Co-design study (native 2Q gates, cf. paper Fig. 13) ==\n")
    gate_result = figure13_study(sizes=sizes, workloads=workloads, seed=11)
    print(format_gate_report(gate_result, "total_2q"))
    print(format_gate_report(gate_result, "critical_2q"))


if __name__ == "__main__":
    main()
