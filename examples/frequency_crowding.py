"""Frequency-crowding report: which modulators can wire up which topologies.

Reproduces, quantitatively, the paper's Section 2.4 / 4.1 argument: the
cross-resonance and tunable-coupler frequency budgets cannot allocate
collision-free pump tones for the rich SNAIL topologies (Tree, Corral),
while the SNAIL's wide difference-frequency band can.

Run with:  python examples/frequency_crowding.py
"""

from repro.experiments.frequency_study import (
    feasible_modulators,
    format_frequency_report,
    frequency_crowding_study,
)


def main() -> None:
    for scale in ("small", "large"):
        rows = frequency_crowding_study(scale=scale)
        print(f"\n=== {scale} machines ===")
        print(format_frequency_report(rows))
        print("\nCollision-free modulators per topology:")
        for topology, modulators in sorted(feasible_modulators(rows).items()):
            supported = ", ".join(modulators) if modulators else "(none)"
            print(f"  {topology:<22} {supported}")


if __name__ == "__main__":
    main()
