"""Validate the paper's count surrogates against density-matrix simulation.

The paper never simulates noise: it argues that fewer 2Q gates and shorter
critical paths imply higher fidelity.  This example checks that argument
with the vectorized density-matrix engine (local tensor contractions plus
cached channel superoperators, usable up to 14 qubits): two design points
compile the same Quantum Volume circuit, both compiled circuits are
simulated under an identical depolarising + relaxation noise model (after
dropping idle device qubits), and the simulated output fidelity /
heavy-output probability are compared against the gate-count surrogates.

Run with:  python examples/noisy_validation.py
"""

from repro.transpiler import make_target, transpile
from repro.noise import CircuitNoiseModel, circuit_output_fidelity
from repro.topology import get_topology
from repro.workloads import quantum_volume_circuit


def main() -> None:
    circuit = quantum_volume_circuit(6, seed=11)
    noise = CircuitNoiseModel.from_gate_fidelity(0.99, t1=60.0, t2=60.0)

    design_points = [
        ("Heavy-Hex + CNOT", "Heavy-Hex", "cx"),
        ("Corral(1,1) + sqrt(iSWAP)", "Corral1,1", "siswap"),
    ]

    print(f"Workload: {circuit.name}, noise: 99% 2Q fidelity, T1 = T2 = 60 pulse units\n")
    header = (
        f"{'design point':<28}{'total 2Q':>10}{'crit 2Q':>9}"
        f"{'closed-form EPS':>17}{'simulated fidelity':>20}"
    )
    print(header)
    print("-" * len(header))
    for label, topology, basis in design_points:
        target = make_target(get_topology(topology, "small"), basis, name=label)
        result = transpile(circuit, target, seed=1)
        # The transpiled circuit lives on the full 16-20 qubit device; drop
        # the idle qubits so density-matrix simulation stays tractable.
        compact = result.circuit.remove_idle_qubits()
        estimate = noise.estimated_success_probability(compact)
        fidelity = circuit_output_fidelity(compact, noise, max_qubits=14)
        print(
            f"{label:<28}{result.metrics.total_2q:>10}{result.metrics.critical_2q:>9}"
            f"{estimate:>17.3f}{fidelity:>20.3f}"
        )
    print(
        "\nThe design point with fewer 2Q gates and a shorter critical path also"
        "\nachieves the higher simulated output fidelity, and the closed-form"
        "\ncount-based estimate orders the designs the same way — the surrogate"
        "\nused throughout the paper's evaluation is consistent with a full"
        "\ndensity-matrix noise simulation."
    )


if __name__ == "__main__":
    main()
