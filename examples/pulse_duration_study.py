"""Pulse-duration sensitivity study: a miniature version of paper Fig. 15.

For Haar-random two-qubit targets, decomposes into templates of n-th-root
iSWAP gates (the SNAIL's native family), and reports how the decomposition
infidelity, the total pulse duration, and the combined fidelity under the
linear-decoherence model (paper Eqs. 12-13) change with the root index n.

Run with:  python examples/pulse_duration_study.py
(set REPRO_FULL=1 for the paper's full 50-target, n=2..7 configuration)
"""

from repro.core.sensitivity import format_sensitivity_report
from repro.experiments import figure15_study, reduction_comparison


def main() -> None:
    result = figure15_study(seed=2022)
    print(format_sensitivity_report(result))

    print("\nInfidelity reduction vs sqrt(iSWAP) at Fb(iSWAP) = 0.99 "
          "(paper reports 14% / 25% / 11% for n = 3 / 4 / 5):")
    for root, values in sorted(reduction_comparison(result).items()):
        print(
            f"  n={root}: measured {100 * values['measured']:+.1f}%   "
            f"paper {100 * values['paper']:.0f}%"
        )


if __name__ == "__main__":
    main()
