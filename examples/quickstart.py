"""Quickstart: the staged compilation API on the paper's headline comparison.

Builds three co-designed machines as :class:`repro.Target` design points —
a SNAIL Corral with the native sqrt(iSWAP) basis, Google-style
Square-Lattice + SYC, and an IBM-style Heavy-Hex machine with a CNOT
basis — then:

1. compiles a Quantum Volume circuit onto each with
   ``transpile(circuit, target, optimization_level=...)`` and prints the
   paper's metrics (total 2Q gates, critical-path 2Q gates),
2. shows the optimization-level ladder on one target (level 1 is the
   paper's Fig. 10 flow; level 2 adds gate cancellation; level 3 adds a
   duration-aware schedule),
3. batch-compiles a whole sweep of circuits through ``transpile_batch``.

Run with:  python examples/quickstart.py
"""

from repro import FidelityModel, Target, transpile, transpile_batch
from repro.transpiler import format_metrics_table
from repro.workloads import quantum_volume_circuit


def main() -> None:
    circuit = quantum_volume_circuit(12, seed=7)
    print(f"Workload: {circuit.name} with {circuit.two_qubit_gate_count()} SU(4) blocks\n")

    # A Target bundles topology + native basis + gate durations (+ optional
    # noise).  Registry constructors accept forgiving spellings.
    targets = [
        Target.from_names("heavy-hex", "cx", name="Heavy-Hex + CNOT"),
        Target.from_names("square-lattice", "syc", name="Square-Lattice + SYC"),
        Target.from_names("corral-1-1", "sqiswap", name="Corral(1,1) + sqrt(iSWAP)"),
    ]

    metrics = [transpile(circuit, target, seed=1).metrics for target in targets]
    print(format_metrics_table(metrics))

    model = FidelityModel(two_qubit_fidelity=0.995, decoherence_per_pulse=0.999)
    print("\nEstimated success probability (uniform-fidelity model):")
    for record in metrics:
        print(
            f"  {record.topology:<22} {record.basis:<8}"
            f" gate-limited={model.gate_limited(record):.3f}"
            f" time-limited={model.time_limited(record):.3f}"
            f" combined={model.combined(record):.3f}"
        )

    # The optimization-level ladder: 0 = fastest, 1 = paper flow (default),
    # 2 = + cancellation passes, 3 = + noise-aware routing & scheduling.
    corral = targets[-1]
    print(f"\nOptimization levels on {corral.name}:")
    for level in (0, 1, 2, 3):
        result = transpile(circuit, corral, seed=1, optimization_level=level)
        duration = result.metrics.extra.get("duration_ns")
        suffix = f"  scheduled={duration:.0f} ns" if duration else ""
        print(
            f"  level {level}: total_2q={result.metrics.total_2q:<4}"
            f" critical_2q={result.metrics.critical_2q:<4}{suffix}"
        )

    # Batch compilation fans a circuit list out through the experiment
    # runtime (pass runner=ExperimentRunner(parallel=True) for a pool).
    batch = [quantum_volume_circuit(width, seed=7) for width in (6, 8, 10, 12)]
    results = transpile_batch(batch, corral, seed=1, optimization_level=2)
    print(f"\nBatch of {len(results)} QV circuits on {corral.name}:")
    print(format_metrics_table([result.metrics for result in results]))


if __name__ == "__main__":
    main()
