"""Quickstart: transpile a Quantum Volume circuit onto a co-designed machine.

Builds the paper's headline comparison at prototype scale: a SNAIL Corral
with the native sqrt(iSWAP) basis versus an IBM-style Heavy-Hex machine
with a CNOT basis, and prints the metrics the paper uses as reliability
surrogates (total 2Q gates and critical-path 2Q gates / pulse duration).

Run with:  python examples/quickstart.py
"""

from repro import FidelityModel, make_backend
from repro.topology import get_topology
from repro.transpiler import format_metrics_table
from repro.workloads import quantum_volume_circuit


def main() -> None:
    circuit = quantum_volume_circuit(12, seed=7)
    print(f"Workload: {circuit.name} with {circuit.two_qubit_gate_count()} SU(4) blocks\n")

    backends = [
        make_backend(get_topology("Heavy-Hex", "small"), "cx", name="Heavy-Hex + CNOT"),
        make_backend(get_topology("Square-Lattice", "small"), "syc", name="Square-Lattice + SYC"),
        make_backend(get_topology("Corral1,1", "small"), "siswap", name="Corral(1,1) + sqrt(iSWAP)"),
    ]

    metrics = []
    for backend in backends:
        result = backend.transpile(circuit, seed=1)
        metrics.append(result.metrics)

    print(format_metrics_table(metrics))

    model = FidelityModel(two_qubit_fidelity=0.995, decoherence_per_pulse=0.999)
    print("\nEstimated success probability (uniform-fidelity model):")
    for record in metrics:
        print(
            f"  {record.topology:<22} {record.basis:<8}"
            f" gate-limited={model.gate_limited(record):.3f}"
            f" time-limited={model.time_limited(record):.3f}"
            f" combined={model.combined(record):.3f}"
        )


if __name__ == "__main__":
    main()
