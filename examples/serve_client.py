"""Walk-through client for a running ``repro serve`` instance.

Checks health, compiles one point, then streams a small QuantumVolume
sweep with live progress and reports the request's cache outcome.  Used
by CI as the server smoke test: ``--expect computed`` on a cold cache,
``--expect disk`` after a server restart on the same cache directory,
``--expect memory`` against a warm resident cache.

Run with:  python examples/serve_client.py --port 8537
(start the server first:  repro serve --port 8537)
"""

from __future__ import annotations

import argparse
import sys

from repro.server import ServeClient, ServeError


def classify(cache) -> str:
    """Name the dominant cache outcome of one request's stats delta."""
    if cache is None:
        return "uncached"
    if cache["computed"] > 0:
        return "computed"
    if cache["disk_hits"] > 0:
        return "disk"
    return "memory"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8537)
    parser.add_argument("--token", default=None, help="bearer token if the server requires auth")
    parser.add_argument(
        "--expect",
        choices=("computed", "disk", "memory"),
        default=None,
        help="fail unless the sweep's cache outcome matches (CI smoke assertion)",
    )
    args = parser.parse_args(argv)

    client = ServeClient(host=args.host, port=args.port, token=args.token, timeout=300.0)
    if not client.wait_until_ready(timeout=30.0):
        print(f"error: no server answering on {args.host}:{args.port}", file=sys.stderr)
        return 2

    health = client.health()
    print(f"health: {health['status']} (uptime {health['uptime_seconds']:.1f}s, "
          f"workers={health['workers']}, auth={'on' if health['auth'] else 'off'})")

    try:
        single = client.transpile({"workload": "GHZ", "size": 8})
    except ServeError as error:
        print(f"error: transpile failed: {error}", file=sys.stderr)
        return 2
    record = single["results"][0]
    print(f"transpile: GHZ(8) -> {record['total_2q']} 2q gates, "
          f"{record['total_swaps']} swaps, depth {record['depth']} "
          f"[{classify(single['cache'])} in {single['elapsed_seconds']:.3f}s]")

    def progress(event) -> None:
        if event["type"] == "start":
            print(f"sweep: {event['total']} points in {event['chunks']} chunks")
        else:
            print(f"  progress: {event['completed']}/{event['total']} "
                  f"({event['chunk_seconds']:.3f}s)")

    try:
        sweep = client.sweep(
            ["QuantumVolume"],
            [6, 8, 10],
            [{"topology": "Corral1,1", "basis": "siswap"}],
            on_progress=progress,
            chunk_size=1,
        )
    except ServeError as error:
        print(f"error: sweep failed: {error}", file=sys.stderr)
        return 2
    outcome = classify(sweep["cache"])
    print(f"sweep: {sweep['count']} records in {sweep['elapsed_seconds']:.3f}s "
          f"[{outcome}] cache={sweep['cache']}")

    if args.expect is not None and outcome != args.expect:
        print(f"error: expected cache outcome {args.expect!r}, got {outcome!r}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
