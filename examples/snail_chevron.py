"""SNAIL device model: regenerate a Fig.-6-style chevron and gate calibration.

Sweeps the parametrically driven qubit-qubit exchange over pulse length and
pump detuning (the paper's Fig. 6 axes), renders the chevron as ASCII art,
and reports the pulse lengths that calibrate each n-th-root iSWAP gate —
the linear pulse-length scaling behind the paper's sensitivity study.

Run with:  python examples/snail_chevron.py
"""

from repro.experiments import chevron_summary, figure6_study
from repro.snailsim import SnailExchangeModel, render_ascii_chevron


def main() -> None:
    model = SnailExchangeModel(coupling_mhz=0.5, t1_us=30.0)
    data = figure6_study(coupling_mhz=0.5, t1_us=30.0)

    print("Parametrically driven exchange between two module qubits (cf. paper Fig. 6)")
    print(chevron_summary(data))
    print()
    print(render_ascii_chevron(data))
    print()

    print("Calibrated n-th-root iSWAP pulse lengths (g/2pi = 0.5 MHz):")
    for root in (1, 2, 3, 4, 5):
        pulse = model.pulse_length_for_root(root)
        fidelity = model.gate_fidelity_estimate(pulse)
        print(
            f"  n={root}:  pulse = {pulse:7.1f} ns   "
            f"coherence-limited fidelity ~ {fidelity:.4f}"
        )


if __name__ == "__main__":
    main()
