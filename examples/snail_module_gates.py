"""Simultaneous drives on one SNAIL module: parallel gates and 3-mode gates.

Paper Section 4.1 claims that (a) multiple two-qubit gates can run in
parallel inside one SNAIL neighbourhood because third-order parametric
drives have tiny static cross-talk, and (b) applying several pumps at once
creates three-or-more-mode gates.  This example exercises both claims on
the Hamiltonian-level module simulator.

Run with:  python examples/snail_module_gates.py
"""

from repro.snailsim import PumpTone, SnailModule


def main() -> None:
    module = SnailModule()
    print("Four-qubit SNAIL module")
    print(f"  qubit frequencies (GHz): {tuple(module.qubit_frequencies_ghz)}")
    print(
        "  minimum difference-frequency separation: "
        f"{module.minimum_difference_separation_mhz():.0f} MHz"
    )

    print("\nPulse calibration (0.5 MHz exchange strength):")
    for root in (1, 2, 3, 4):
        print(f"  {root}-root iSWAP pulse length: {module.pulse_length_for_root(root):7.1f} ns")

    print("\nParallel gates in one module (sqrt(iSWAP) on (0,1) and (2,3) at once):")
    fidelity = module.parallel_gate_fidelity([(0, 1), (2, 3)], root=2)
    print(f"  fidelity vs ideal simultaneous gates: {fidelity:.5f}")

    crowded = SnailModule(qubit_frequencies_ghz=(4.5, 5.0, 5.504, 6.006))
    crowded_fidelity = crowded.parallel_gate_fidelity([(0, 1), (2, 3)], root=2)
    print(
        "  same drive on a frequency-crowded module "
        f"(differences 2 MHz apart): {crowded_fidelity:.5f}"
    )
    print("  -> the SNAIL's GHz-scale difference frequencies are what make")
    print("     parallel in-module gates possible (paper Section 4.1).")

    print("\nThree-mode gate (two pumps sharing qubit 0):")
    spread = module.three_mode_excitation_spread(0, (1, 2))
    for qubit, probability in spread.items():
        print(f"  excitation probability on qubit {qubit}: {probability:.3f}")
    print("  one pulse distributes the hub excitation over both partners —")
    print("  the >=3-mode interaction the paper attributes to simultaneous drives.")

    print("\nSpurious couplings induced by a single pump on (0,1):")
    for pair, strength in sorted(module.effective_couplings([PumpTone(pair=(0, 1))]).items()):
        print(f"  {pair}: {strength:.4f} MHz")


if __name__ == "__main__":
    main()
