"""Topology report: regenerate paper Tables 1 and 2 and inspect SNAIL modules.

Prints the graph-structural properties (diameter, average distance, average
connectivity) of every topology the paper evaluates, side by side with the
values published in the paper, and shows how the SNAIL Tree and Corral are
assembled from per-SNAIL modules.

Run with:  python examples/topology_report.py
"""

from repro.experiments import format_table_comparison, table1, table2
from repro.topology import corral_modules, tree_modules


def main() -> None:
    print(format_table_comparison(table1(), "Table 1 — 16-20 qubit machines (measured vs paper)"))
    print()
    print(format_table_comparison(table2(), "Table 2 — 84 qubit machines (measured vs paper)"))

    print("\nSNAIL module structure of the 20-qubit Tree (each SNAIL couples a clique):")
    for module in tree_modules(levels=2, arity=4):
        print(f"  {module.label:<16} qubits={module.qubits}")

    print("\nSNAIL module structure of the 16-qubit Corral(1,1):")
    for module in corral_modules(8, (1, 1)):
        print(f"  {module.label:<10} qubits={module.qubits}")


if __name__ == "__main__":
    main()
