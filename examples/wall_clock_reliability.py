"""Wall-clock reliability: schedule design points with physical pulse lengths.

The paper compares machines in normalised pulse counts; this example drops
the normalisation.  Every co-design point is transpiled, scheduled with
its modulator's representative gate durations (SNAIL ~200 ns sqrt(iSWAP),
CR ~370 ns CNOT, fSim ~32 ns SYC) and scored with a T1/T2 + gate-error
reliability model, producing an estimated probability of success in real
time units.

Run with:  python examples/wall_clock_reliability.py
"""

from repro.core import ReliabilityModel, design_targets, reliability_ranking
from repro.core.reliability import format_reliability_report
from repro.experiments.scheduling_study import format_scheduling_report, scheduling_study


def main() -> None:
    backends = list(design_targets("small").values())
    model = ReliabilityModel(two_qubit_fidelity=0.995, t1_us=80.0, t2_us=70.0)

    print("Reliability ranking, Quantum Volume 12:")
    ranking = reliability_ranking(backends, "QuantumVolume", 12, model=model, seed=3)
    print(format_reliability_report(ranking))

    print("\nReliability ranking, QFT 12:")
    ranking = reliability_ranking(backends, "QFT", 12, model=model, seed=3)
    print(format_reliability_report(ranking))

    print("\nFull duration-aware study (QV + GHZ, 8-16 qubits):")
    rows = scheduling_study(scale="small", workloads=("QuantumVolume", "GHZ"), sizes=(8, 12, 16))
    print(format_scheduling_report(rows))


if __name__ == "__main__":
    main()
