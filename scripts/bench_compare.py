#!/usr/bin/env python
"""Compare a pytest-benchmark JSON artifact against a committed baseline.

CI runs the smoke benchmarks with ``--benchmark-json BENCH_smoke.json``;
this script diffs the per-benchmark mean times against the baseline
committed at ``benchmarks/baselines/smoke.json`` and reports anything
slower than the tolerance band.  Machine-to-machine variance makes
absolute times meaningless across runners, so the default mode only
*warns* (exit code 0; the CI step additionally sets
``continue-on-error``) — pass ``--strict`` to turn regressions into a
non-zero exit for local A/B runs on one machine.

Usage::

    python scripts/bench_compare.py BENCH_smoke.json
    python scripts/bench_compare.py BENCH_smoke.json --tolerance 0.5 --strict
    python scripts/bench_compare.py BENCH_smoke.json --write-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / (
    "benchmarks/baselines/smoke.json"
)


def load_means(path: Path) -> dict:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file."""
    data = json.loads(path.read_text("utf-8"))
    return {
        entry["name"]: float(entry["stats"]["mean"])
        for entry in data.get("benchmarks", [])
    }


def compare(current: dict, baseline: dict, tolerance: float):
    """Split benchmarks into (regressions, improvements, steady, new, gone)."""
    regressions, improvements, steady = [], [], []
    for name in sorted(current):
        if name not in baseline:
            continue
        ratio = current[name] / max(baseline[name], 1e-12)
        row = (name, baseline[name], current[name], ratio)
        if ratio > 1.0 + tolerance:
            regressions.append(row)
        elif ratio < 1.0 - tolerance:
            improvements.append(row)
        else:
            steady.append(row)
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))
    return regressions, improvements, steady, new, gone


def _print_rows(label: str, rows) -> None:
    if not rows:
        return
    print(f"{label}:")
    for name, base, mean, ratio in rows:
        print(f"  {name}: {base:.4f}s -> {mean:.4f}s ({ratio:.2f}x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", type=Path, help="BENCH_*.json to check")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional slowdown before a benchmark is flagged "
        "(default: 0.5 = 50%%, generous because CI runners vary)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when regressions exceed the tolerance "
        "(default: warn only)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="overwrite the baseline with the artifact's means and exit",
    )
    args = parser.parse_args(argv)

    current = load_means(args.artifact)
    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps({"benchmarks": [
                {"name": name, "stats": {"mean": mean}}
                for name, mean in sorted(current.items())
            ]}, indent=2) + "\n",
            "utf-8",
        )
        print(f"baseline written: {args.baseline} ({len(current)} benchmarks)")
        return 0

    if not args.baseline.is_file():
        print(f"no baseline at {args.baseline} — nothing to compare")
        return 0
    baseline = load_means(args.baseline)
    regressions, improvements, steady, new, gone = compare(
        current, baseline, args.tolerance
    )

    print(
        f"benchmark comparison: {args.artifact.name} vs {args.baseline.name} "
        f"(tolerance ±{args.tolerance:.0%})"
    )
    _print_rows("REGRESSIONS (slower than tolerance)", regressions)
    _print_rows("improvements", improvements)
    _print_rows("within tolerance", steady)
    if new:
        print("new benchmarks (no baseline entry): " + ", ".join(new))
    if gone:
        print("missing benchmarks (in baseline only): " + ", ".join(gone))
    if regressions:
        print(
            f"WARNING: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.tolerance:.0%}"
        )
        return 1 if args.strict else 0
    print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
