#!/usr/bin/env python
"""Compare a pytest-benchmark JSON artifact against a committed baseline.

This script is a thin wrapper over :mod:`repro.bench.compare` — the same
comparison core behind ``repro bench compare`` / ``repro bench check``
and the CI gate — so the tolerance-band bucketing and the strict-mode
rules live in exactly one place.

CI runs the smoke benchmarks with ``--benchmark-json BENCH_smoke.json``;
this script diffs the per-benchmark mean times against the baseline
committed at ``benchmarks/baselines/smoke.json`` and reports anything
slower than the tolerance band.  Machine-to-machine variance makes
absolute times meaningless across runners, so the default mode only
*warns* — pass ``--strict`` to turn gate violations into a non-zero
exit for local A/B runs on one machine.

Exit-code contract::

    0   no gate violated (or violations in non-strict mode)
    1   --strict and: a regression beyond tolerance, a baseline
        benchmark missing from the artifact ("gone" — deleted or
        renamed, i.e. silently out of coverage), or an empty
        current∩baseline overlap (a vacuous comparison)
    2   malformed artifact/baseline (the error names the entry)

Usage::

    python scripts/bench_compare.py BENCH_smoke.json
    python scripts/bench_compare.py BENCH_smoke.json --tolerance 0.5 --strict
    python scripts/bench_compare.py BENCH_smoke.json --write-baseline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]

try:
    from repro.bench.compare import run_compare
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.bench.compare import run_compare

from repro.bench.artifact import load_means  # noqa: F401  (back-compat re-export)
from repro.bench.compare import compare  # noqa: F401  (back-compat re-export)

DEFAULT_BASELINE = _REPO_ROOT / "benchmarks/baselines/smoke.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", type=Path, help="BENCH_*.json to check")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional slowdown before a benchmark is flagged "
        "(default: 0.5 = 50%%, generous because CI runners vary)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on regressions beyond tolerance, on baseline "
        "benchmarks missing from the artifact, and on an empty "
        "current/baseline overlap (default: warn only)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="overwrite the baseline with the artifact's means (recording "
        "git SHA, date and round counts) and exit",
    )
    args = parser.parse_args(argv)

    return run_compare(
        args.artifact,
        args.baseline,
        tolerance=args.tolerance,
        strict=args.strict,
        write_baseline_instead=args.write_baseline,
    )


if __name__ == "__main__":
    sys.exit(main())
