#!/usr/bin/env python
"""Repository lint gate.

Runs ``ruff check`` (configured in ``pyproject.toml``) when ruff is
installed — that is what CI does after ``pip install ruff`` — plus a
stricter docstring pass (the pydocstyle ``D1xx`` "missing docstring"
subset) scoped to the packages whose inter-process protocols and
on-disk formats live in prose: ``repro.runtime``, ``repro.server`` and
``repro.bench``.  In offline environments
without ruff it falls back to byte-compiling every Python tree, which
still catches syntax errors, so the gate always has teeth and
``python scripts/lint.py`` passes or fails for the same code everywhere.
"""

from __future__ import annotations

import compileall
import shutil
import subprocess
import sys
from pathlib import Path

TARGETS = ("src", "tests", "benchmarks", "examples", "scripts")

#: Packages where every public module/class/function/method must carry a
#: docstring (ruff pydocstyle D100-D104 + D106; magic methods and
#: ``__init__`` are documented via their class docstrings instead).
DOCSTRING_TARGETS = ("src/repro/runtime", "src/repro/server", "src/repro/bench")
DOCSTRING_RULES = "D100,D101,D102,D103,D104,D106"


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    targets = [str(root / target) for target in TARGETS if (root / target).exists()]
    if shutil.which("ruff"):
        status = subprocess.call(["ruff", "check", *targets], cwd=root)
        if status:
            return status
        return subprocess.call(
            [
                "ruff",
                "check",
                "--extend-select",
                DOCSTRING_RULES,
                *[str(root / target) for target in DOCSTRING_TARGETS],
            ],
            cwd=root,
        )
    print("ruff not installed; falling back to a syntax-only gate", file=sys.stderr)
    ok = all(
        compileall.compile_dir(target, quiet=1, force=False) for target in targets
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
