"""Legacy shim; all project metadata (PEP 621), pytest/ruff configuration
and the ``repro`` console-script entry point live in ``pyproject.toml``.

Kept because ``python setup.py develop`` is the one editable-install path
that still works in fully offline environments (``pip install -e .`` goes
through PEP 517 and needs the ``wheel`` package or network access for
build isolation); setuptools >= 61 reads the pyproject metadata here."""
from setuptools import setup

setup()
