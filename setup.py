"""Setup script (legacy path kept so that offline editable installs work
without the ``wheel`` package being available)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Co-Designed Architectures for Modular "
        "Superconducting Quantum Computers' (HPCA 2023)"
    ),
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.21", "scipy>=1.7", "networkx>=2.6"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
