"""repro — reproduction of "Co-Designed Architectures for Modular
Superconducting Quantum Computers" (McKinney et al., HPCA 2023).

The library is organised bottom-up:

* :mod:`repro.linalg` — two-qubit unitary analysis (Weyl chamber, KAK).
* :mod:`repro.circuits`, :mod:`repro.gates` — circuit IR and gate library.
* :mod:`repro.simulator` — state-vector / unitary validation simulators.
* :mod:`repro.topology` — coupling graphs: lattices, hypercubes and the
  SNAIL-enabled Tree / Corral topologies.
* :mod:`repro.transpiler` — layout, routing, basis translation, scheduling,
  metrics.
* :mod:`repro.decomposition` — coverage rules and (approximate) synthesis.
* :mod:`repro.workloads` — the six parameterised benchmarks of the paper
  plus extension workloads.
* :mod:`repro.noise` — Kraus channels, density-matrix simulation, circuit
  noise models.
* :mod:`repro.frequency` — modulator frequency budgets and pump-tone
  allocation (frequency crowding).
* :mod:`repro.qasm` — OpenQASM 2 export / import.
* :mod:`repro.snailsim` — device-level SNAIL exchange model (Fig. 6).
* :mod:`repro.core` — backends, co-design points, fidelity and reliability
  models, sweeps.
* :mod:`repro.runtime` — the experiment execution seam: process-pool
  fan-out with ordered collection plus per-point result caching.
* :mod:`repro.experiments` — one entry point per paper table / figure plus
  the extension studies.
* :mod:`repro.bench` — benchmark trajectory history, comparison core and
  regression gates behind ``repro bench`` and ``scripts/bench_compare.py``.

Quick start::

    from repro import Target, transpile
    from repro.workloads import quantum_volume_circuit

    target = Target.from_names("corral-1-1", "sqiswap")
    result = transpile(quantum_volume_circuit(12, seed=1), target,
                       optimization_level=2)
    print(result.metrics.total_2q, result.metrics.critical_2q)

Compilation is staged (``init -> layout -> routing -> translation ->
optimization -> scheduling``); ``optimization_level`` 0..3 selects the
preset schedule (level 1 is the paper's Fig. 10 flow) and every stage is
fed from the name-based pass registry (:mod:`repro.transpiler.registry`).
``transpile_batch`` compiles whole circuit lists through the experiment
runner (process-pool fan-out + result caching).  The legacy ``Backend``
bundle remains as a deprecation shim over :class:`Target`.

Running experiments in parallel
-------------------------------

Every experiment driver (and every ``repro`` CLI experiment command) runs
its sweep points through an :class:`repro.runtime.ExperimentRunner`.  Sweep
points are independent and deterministically seeded, so fanning them out
over a process pool is bit-identical to the serial loop::

    from repro import ExperimentRunner
    from repro.experiments import figure11_study

    runner = ExperimentRunner(parallel=True, max_workers=4)
    result = figure11_study(runner=runner)        # same records, less wall-clock

From the command line use ``repro swaps --parallel --workers 4`` (or set
``REPRO_PARALLEL=1`` / ``REPRO_WORKERS=4`` process-wide).  A runner can
carry a :class:`repro.runtime.ResultCache` (the CLI attaches one unless
``--no-cache`` is given), so repeated points — rerun studies, overlapping
grids — are served from memory::

    runner = ExperimentRunner(parallel=True, result_cache=ResultCache())

Three further caches accelerate the hot paths themselves:
the LRU gate-unitary cache (:mod:`repro.linalg.cache`), the decomposition
cache keyed on canonical Weyl coordinates
(:mod:`repro.decomposition.cache`), and the fused single-qubit fast path
of :class:`repro.simulator.StatevectorSimulator`.

Continuous integration
----------------------

``.github/workflows/ci.yml`` lints (ruff), runs the fast test suite on
Python 3.10 and 3.12 (``pytest -m "not slow"``; the ``slow`` marker tags
long experiment regenerations), runs the full suite including benchmarks
in a nightly-style job, and uploads smoke-benchmark ``BENCH_*.json``
artifacts.  Locally, ``python scripts/lint.py`` and
``python -m pytest -m "not slow"`` mirror the quick gate.
"""

from repro.circuits import QuantumCircuit
from repro.core import (
    Backend,
    CodesignPoint,
    FidelityModel,
    SweepResult,
    design_backends,
    design_points,
    design_targets,
    make_backend,
    pulse_duration_sensitivity_study,
    run_point,
    run_sweep,
)
from repro.decomposition import TemplateDecomposer, get_basis
from repro.runtime import ExperimentRunner, ResultCache, point_seed
from repro.topology import CouplingMap, get_topology, large_topologies, small_topologies
from repro.transpiler import (
    Target,
    TranspileMetrics,
    TranspileResult,
    available_passes,
    make_target,
    register_pass,
    transpile,
    transpile_batch,
)
from repro.workloads import build_workload

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "Backend",
    "CodesignPoint",
    "FidelityModel",
    "SweepResult",
    "design_backends",
    "design_points",
    "design_targets",
    "make_backend",
    "pulse_duration_sensitivity_study",
    "run_point",
    "run_sweep",
    "TemplateDecomposer",
    "get_basis",
    "ExperimentRunner",
    "ResultCache",
    "point_seed",
    "CouplingMap",
    "get_topology",
    "large_topologies",
    "small_topologies",
    "Target",
    "make_target",
    "available_passes",
    "register_pass",
    "TranspileMetrics",
    "TranspileResult",
    "transpile",
    "transpile_batch",
    "build_workload",
    "__version__",
]
