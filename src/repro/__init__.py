"""repro — reproduction of "Co-Designed Architectures for Modular
Superconducting Quantum Computers" (McKinney et al., HPCA 2023).

The library is organised bottom-up:

* :mod:`repro.linalg` — two-qubit unitary analysis (Weyl chamber, KAK).
* :mod:`repro.circuits`, :mod:`repro.gates` — circuit IR and gate library.
* :mod:`repro.simulator` — state-vector / unitary validation simulators.
* :mod:`repro.topology` — coupling graphs: lattices, hypercubes and the
  SNAIL-enabled Tree / Corral topologies.
* :mod:`repro.transpiler` — layout, routing, basis translation, scheduling,
  metrics.
* :mod:`repro.decomposition` — coverage rules and (approximate) synthesis.
* :mod:`repro.workloads` — the six parameterised benchmarks of the paper
  plus extension workloads.
* :mod:`repro.noise` — Kraus channels, density-matrix simulation, circuit
  noise models.
* :mod:`repro.frequency` — modulator frequency budgets and pump-tone
  allocation (frequency crowding).
* :mod:`repro.qasm` — OpenQASM 2 export / import.
* :mod:`repro.snailsim` — device-level SNAIL exchange model (Fig. 6).
* :mod:`repro.core` — backends, co-design points, fidelity and reliability
  models, sweeps.
* :mod:`repro.experiments` — one entry point per paper table / figure plus
  the extension studies.

Quick start::

    from repro import Backend, get_basis
    from repro.topology import corral_topology
    from repro.workloads import quantum_volume_circuit

    backend = Backend(corral_topology(8, (1, 1)), get_basis("siswap"))
    result = backend.transpile(quantum_volume_circuit(12, seed=1))
    print(result.metrics.total_2q, result.metrics.critical_2q)
"""

from repro.circuits import QuantumCircuit
from repro.core import (
    Backend,
    CodesignPoint,
    FidelityModel,
    SweepResult,
    design_backends,
    design_points,
    make_backend,
    pulse_duration_sensitivity_study,
    run_point,
    run_sweep,
)
from repro.decomposition import TemplateDecomposer, get_basis
from repro.topology import CouplingMap, get_topology, large_topologies, small_topologies
from repro.transpiler import TranspileMetrics, TranspileResult, transpile
from repro.workloads import build_workload

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "Backend",
    "CodesignPoint",
    "FidelityModel",
    "SweepResult",
    "design_backends",
    "design_points",
    "make_backend",
    "pulse_duration_sensitivity_study",
    "run_point",
    "run_sweep",
    "TemplateDecomposer",
    "get_basis",
    "CouplingMap",
    "get_topology",
    "large_topologies",
    "small_topologies",
    "TranspileMetrics",
    "TranspileResult",
    "transpile",
    "build_workload",
    "__version__",
]
