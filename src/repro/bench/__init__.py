"""Performance observability: benchmark trajectories and regression gates.

Every headline claim in this reproduction is a speedup (the ~40x noisy
simulator, the ~6x router, the ~200x warm-server soak), and the smoke CI
uploads one ``BENCH_*.json`` artifact per run — but a single artifact
diffed against a single committed baseline cannot tell a noisy runner
from a real erosion.  This package closes the loop with three layers:

* :mod:`repro.bench.artifact` — hardened loading of pytest-benchmark
  JSON artifacts (:func:`read_artifact`, :func:`load_means`) with run
  provenance (:class:`RunMeta`: git SHA, timestamp, host tag) and a
  named :class:`MalformedArtifactError` instead of bare ``KeyError``\\ s.
* :mod:`repro.bench.compare` — the single comparison core shared by
  ``scripts/bench_compare.py``, the ``repro bench`` CLI verbs and CI:
  tolerance-band bucketing (:func:`compare`), provenance-carrying
  baseline IO (:func:`write_baseline` / :func:`read_baseline`) and the
  strict-mode rules (regressions, *gone* benchmarks and an empty
  current∩baseline overlap all fail).
* :mod:`repro.bench.history` — an append-only history store
  (:class:`BenchHistory`): one JSON-lines series per benchmark keyed by
  benchmark name (disk-cache idiom: slug + content digest filenames,
  torn tail lines read as misses), a ``runs.jsonl`` manifest, and a
  rolling-baseline regression check (:meth:`BenchHistory.check`).
* :mod:`repro.bench.report` — terminal / markdown trajectory tables
  with sparkline series (:func:`format_report`).

Exit-code contract (``scripts/bench_compare.py`` and ``repro bench``):
``0`` = no gate violated, ``1`` = regression / gone benchmark / empty
overlap (strict or ``check``), ``2`` = malformed artifact or usage
error.  See ``docs/architecture.md`` for the on-disk history format.
"""

from repro.bench.artifact import (
    Artifact,
    MalformedArtifactError,
    RunMeta,
    current_git_sha,
    load_means,
    read_artifact,
)
from repro.bench.compare import (
    ZERO_BASELINE_FLOOR,
    Comparison,
    compare,
    format_comparison,
    read_baseline,
    run_compare,
    write_baseline,
)
from repro.bench.history import (
    DEFAULT_HISTORY_DIR,
    BenchCheck,
    BenchHistory,
    HistoryEntry,
    history_dir_from_env,
)
from repro.bench.report import format_report, sparkline

__all__ = [
    "Artifact",
    "MalformedArtifactError",
    "RunMeta",
    "current_git_sha",
    "load_means",
    "read_artifact",
    "ZERO_BASELINE_FLOOR",
    "Comparison",
    "compare",
    "format_comparison",
    "read_baseline",
    "run_compare",
    "write_baseline",
    "DEFAULT_HISTORY_DIR",
    "BenchCheck",
    "BenchHistory",
    "HistoryEntry",
    "history_dir_from_env",
    "format_report",
    "sparkline",
]
