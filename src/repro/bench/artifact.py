"""Hardened loading of pytest-benchmark JSON artifacts.

A ``BENCH_*.json`` artifact is whatever ``pytest --benchmark-json``
wrote — possibly truncated by a killed CI step, possibly produced by a
different pytest-benchmark version, possibly hand-edited.  The loaders
here therefore never surface a bare ``KeyError``: a malformed benchmark
entry raises :class:`MalformedArtifactError` naming the file and the
offending entry, so a CI log says *which* benchmark broke the artifact
instead of ``KeyError: 'mean'``.

Provenance travels with the numbers.  :func:`read_artifact` resolves a
:class:`RunMeta` (git SHA, timestamp, host tag) from, in precedence
order, the ``repro_run_meta`` block that ``benchmarks/conftest.py``
injects via the ``pytest_benchmark_update_json`` hook, then
pytest-benchmark's own ``commit_info`` / ``machine_info`` /
``datetime`` fields.  Timestamps are always *read from the artifact* or
passed in explicitly — nothing here invents a wall-clock time, so
recording the same artifact twice yields identical metadata.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Union


class MalformedArtifactError(ValueError):
    """A benchmark artifact (or baseline) entry is structurally invalid.

    The message always identifies the source file and, for per-entry
    problems, the entry index and benchmark name, so the failing record
    can be found without re-parsing the JSON by hand.
    """


@dataclass(frozen=True)
class RunMeta:
    """Provenance of one benchmark run: where, when and at which commit."""

    git_sha: Optional[str] = None
    timestamp: Optional[str] = None
    host: Optional[str] = None
    source: Optional[str] = None

    def describe(self) -> str:
        """One header-line summary, with explicit ``unknown`` gaps."""
        sha = (self.git_sha or "unknown")[:12]
        return (
            f"sha={sha} date={self.timestamp or 'unknown'} "
            f"host={self.host or 'unknown'}"
        )

    def merged_over(self, fallback: "RunMeta") -> "RunMeta":
        """This meta, with ``None`` fields filled from ``fallback``."""
        return replace(
            fallback,
            **{
                field: value
                for field, value in vars(self).items()
                if value is not None
            },
        )


@dataclass(frozen=True)
class Artifact:
    """Parsed artifact: per-benchmark means/rounds plus run provenance."""

    means: Dict[str, float]
    rounds: Dict[str, int]
    meta: RunMeta

    def __len__(self) -> int:
        return len(self.means)


def _entry_label(index: int, entry) -> str:
    name = entry.get("name") if isinstance(entry, dict) else None
    if isinstance(name, str) and name:
        return f"benchmark entry #{index} ({name!r})"
    return f"benchmark entry #{index}"


def _parse_entries(data: dict, source: str) -> "tuple[Dict[str, float], Dict[str, int]]":
    entries = data.get("benchmarks", [])
    if not isinstance(entries, list):
        raise MalformedArtifactError(
            f"{source}: 'benchmarks' must be a list, got {type(entries).__name__}"
        )
    means: Dict[str, float] = {}
    rounds: Dict[str, int] = {}
    for index, entry in enumerate(entries):
        label = _entry_label(index, entry)
        if not isinstance(entry, dict):
            raise MalformedArtifactError(
                f"{source}: {label}: expected an object, got {type(entry).__name__}"
            )
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise MalformedArtifactError(
                f"{source}: {label}: missing or non-string 'name'"
            )
        stats = entry.get("stats")
        if not isinstance(stats, dict):
            raise MalformedArtifactError(f"{source}: {label}: missing 'stats' object")
        if "mean" not in stats:
            raise MalformedArtifactError(f"{source}: {label}: missing 'stats.mean'")
        try:
            mean = float(stats["mean"])
        except (TypeError, ValueError):
            raise MalformedArtifactError(
                f"{source}: {label}: non-numeric 'stats.mean' "
                f"({stats['mean']!r})"
            ) from None
        if not math.isfinite(mean) or mean < 0.0:
            raise MalformedArtifactError(
                f"{source}: {label}: 'stats.mean' must be a finite non-negative "
                f"number, got {mean!r}"
            )
        means[name] = mean
        entry_rounds = stats.get("rounds")
        if isinstance(entry_rounds, (int, float)) and not isinstance(entry_rounds, bool):
            rounds[name] = int(entry_rounds)
    return means, rounds


def _read_json(path: Path) -> dict:
    try:
        data = json.loads(path.read_text("utf-8"))
    except OSError as error:
        raise MalformedArtifactError(f"{path}: unreadable ({error})") from error
    except json.JSONDecodeError as error:
        raise MalformedArtifactError(f"{path}: invalid JSON ({error})") from error
    if not isinstance(data, dict):
        raise MalformedArtifactError(
            f"{path}: top level must be an object, got {type(data).__name__}"
        )
    return data


def _artifact_meta(data: dict, source: str) -> RunMeta:
    """Provenance from the artifact: injected block first, then stock fields."""
    injected = data.get("repro_run_meta")
    injected = injected if isinstance(injected, dict) else {}
    commit_info = data.get("commit_info")
    commit_info = commit_info if isinstance(commit_info, dict) else {}
    machine_info = data.get("machine_info")
    machine_info = machine_info if isinstance(machine_info, dict) else {}

    def _str(value) -> Optional[str]:
        return value if isinstance(value, str) and value else None

    return RunMeta(
        git_sha=_str(injected.get("git_sha")) or _str(commit_info.get("id")),
        timestamp=_str(injected.get("timestamp")) or _str(data.get("datetime")),
        host=_str(injected.get("host")) or _str(machine_info.get("node")),
        source=source,
    )


def read_artifact(path: Union[str, Path]) -> Artifact:
    """Parse a pytest-benchmark JSON artifact into an :class:`Artifact`.

    Raises :class:`MalformedArtifactError` (never a bare ``KeyError``)
    identifying the offending entry when the file is structurally bad.
    """
    path = Path(path)
    data = _read_json(path)
    means, rounds = _parse_entries(data, path.name)
    return Artifact(means=means, rounds=rounds, meta=_artifact_meta(data, path.name))


def load_means(path: Union[str, Path]) -> Dict[str, float]:
    """``{benchmark name: mean seconds}`` from a pytest-benchmark JSON file.

    The historical ``scripts/bench_compare.py`` entry point, kept as the
    one-call convenience over :func:`read_artifact` (same hardening).
    """
    return read_artifact(path).means


def current_git_sha(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """Best-effort SHA of the checked-out commit, or ``None``.

    Preference order: the ``GITHUB_SHA`` environment variable (present
    on CI runners even for shallow or detached checkouts), then ``git
    rev-parse HEAD``.  Never raises — benchmark recording must work in
    exported tarballs too.
    """
    env_sha = os.environ.get("GITHUB_SHA", "").strip()
    if env_sha:
        return env_sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None
