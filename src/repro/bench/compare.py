"""The single benchmark-comparison core shared by script, CLI and CI.

``scripts/bench_compare.py`` (the historical entry point), the ``repro
bench compare`` / ``repro bench check`` verbs and the CI gate all funnel
through :func:`compare` + :func:`format_comparison` + :func:`run_compare`
so that the tolerance-band bucketing and the strict-mode rules cannot
drift apart between surfaces.

Strict-mode rules (all pinned by ``tests/bench/``):

* **regressions** — a compared benchmark slower than ``1 + tolerance``
  times its baseline mean;
* **gone benchmarks** — a baseline entry absent from the current
  artifact.  A deleted or renamed benchmark silently leaves regression
  coverage forever if this only warns, so strict mode fails on it;
* **empty overlap** — a non-empty baseline sharing *no* names with the
  current artifact.  An artifact whose benchmarks were all renamed used
  to print "no regressions beyond tolerance" and exit 0 — vacuous truth
  as a green check.

Baselines written by :func:`write_baseline` carry provenance (git SHA,
date, host, per-benchmark round counts) in a ``meta`` block;
:func:`format_comparison` prints it in the header so "the baseline says
0.8 s" always comes with *whose* 0.8 s that was.  Baselines that
predate the meta block still load and report ``provenance: unknown``.

Zero-mean baselines are a trap: ``current / max(baseline, 1e-12)``
turns any genuinely-zero (or denormal-tiny) baseline entry into a
guaranteed astronomic "regression" on every later run.  Entries whose
baseline mean is below :data:`ZERO_BASELINE_FLOOR` are skipped with an
explicit warning instead of being compared.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.artifact import (
    Artifact,
    MalformedArtifactError,
    RunMeta,
    _parse_entries,
    _read_json,
    current_git_sha,
    read_artifact,
)

#: Baseline means below this are unusable as a ratio denominator: a
#: benchmark that measured ~0 s (or a hand-written zero) would flag every
#: subsequent non-zero run as an unbounded regression.  One nanosecond is
#: far below anything pytest-benchmark can resolve for these workloads.
ZERO_BASELINE_FLOOR = 1e-9

#: One comparison row: ``(name, baseline mean, current mean, ratio)``.
Row = Tuple[str, float, float, float]


@dataclass
class Comparison:
    """Tolerance-band bucketing of one run against one baseline."""

    tolerance: float
    regressions: List[Row] = field(default_factory=list)
    improvements: List[Row] = field(default_factory=list)
    steady: List[Row] = field(default_factory=list)
    new: List[str] = field(default_factory=list)
    gone: List[str] = field(default_factory=list)
    #: Names skipped because the baseline mean was below the zero floor.
    skipped_zero_baseline: List[str] = field(default_factory=list)

    @property
    def overlap(self) -> int:
        """Number of benchmarks present in both current and baseline."""
        return (
            len(self.regressions)
            + len(self.improvements)
            + len(self.steady)
            + len(self.skipped_zero_baseline)
        )

    @property
    def empty_overlap(self) -> bool:
        """True when a non-empty baseline shares no names with the run."""
        return self.overlap == 0 and bool(self.gone)

    def violations(self, *, ignore_gone: bool = False) -> List[str]:
        """Human-readable gate violations (empty list = gate passes)."""
        problems: List[str] = []
        if self.regressions:
            problems.append(
                f"{len(self.regressions)} benchmark(s) regressed beyond "
                f"{self.tolerance:.0%}"
            )
        if self.gone and not ignore_gone:
            problems.append(
                f"{len(self.gone)} baseline benchmark(s) missing from the "
                f"current run (deleted or renamed): {', '.join(self.gone)}"
            )
        if self.empty_overlap:
            problems.append(
                "current and baseline share no benchmark names — the "
                "comparison is vacuous"
            )
        return problems


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float,
) -> Comparison:
    """Bucket ``current`` against ``baseline`` within a tolerance band.

    Baseline entries with a mean below :data:`ZERO_BASELINE_FLOOR` are
    collected into ``skipped_zero_baseline`` (and a ``RuntimeWarning``
    is emitted) instead of producing a division-driven fake regression.
    """
    result = Comparison(tolerance=tolerance)
    for name in sorted(current):
        if name not in baseline:
            continue
        base = baseline[name]
        if base < ZERO_BASELINE_FLOOR:
            result.skipped_zero_baseline.append(name)
            continue
        ratio = current[name] / base
        row = (name, base, current[name], ratio)
        if ratio > 1.0 + tolerance:
            result.regressions.append(row)
        elif ratio < 1.0 - tolerance:
            result.improvements.append(row)
        else:
            result.steady.append(row)
    result.new = sorted(set(current) - set(baseline))
    result.gone = sorted(set(baseline) - set(current))
    if result.skipped_zero_baseline:
        warnings.warn(
            "zero/near-zero baseline mean(s) skipped (unusable as a ratio "
            "denominator): " + ", ".join(result.skipped_zero_baseline),
            RuntimeWarning,
            stacklevel=2,
        )
    return result


# --------------------------------------------------------------------------
# Baseline IO (provenance-carrying)


def write_baseline(
    path: Union[str, Path],
    artifact: Artifact,
    *,
    git_sha: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> RunMeta:
    """Write ``artifact``'s means as a baseline, with provenance.

    The ``meta`` block records the git SHA (explicit argument, else the
    artifact's own provenance, else the current checkout), the date (the
    artifact's run timestamp unless overridden), the host tag, the
    source artifact name and the total round count; each benchmark entry
    keeps its per-benchmark ``stats.rounds``.  Returns the meta written.
    """
    meta = RunMeta(git_sha=git_sha, timestamp=timestamp).merged_over(artifact.meta)
    if meta.git_sha is None:
        meta = RunMeta(git_sha=current_git_sha()).merged_over(meta)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "meta": {
            "git_sha": meta.git_sha,
            "written": meta.timestamp,
            "host": meta.host,
            "source": meta.source,
            "total_rounds": sum(artifact.rounds.values()) or None,
        },
        "benchmarks": [
            {
                "name": name,
                "stats": (
                    {"mean": mean, "rounds": artifact.rounds[name]}
                    if name in artifact.rounds
                    else {"mean": mean}
                ),
            }
            for name, mean in sorted(artifact.means.items())
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", "utf-8")
    return meta


def read_baseline(path: Union[str, Path]) -> Tuple[Dict[str, float], RunMeta]:
    """Load a baseline file: ``(means, provenance)``.

    Accepts both provenance-carrying baselines and the legacy
    ``{"benchmarks": [{name, stats.mean}]}`` shape (meta fields all
    ``None``).  Malformed entries raise :class:`MalformedArtifactError`.
    """
    path = Path(path)
    data = _read_json(path)
    means, _rounds = _parse_entries(data, path.name)
    raw_meta = data.get("meta")
    raw_meta = raw_meta if isinstance(raw_meta, dict) else {}

    def _str(value) -> Optional[str]:
        return value if isinstance(value, str) and value else None

    meta = RunMeta(
        git_sha=_str(raw_meta.get("git_sha")),
        timestamp=_str(raw_meta.get("written")),
        host=_str(raw_meta.get("host")),
        source=_str(raw_meta.get("source")) or path.name,
    )
    return means, meta


# --------------------------------------------------------------------------
# Rendering + the shared compare flow


def _format_rows(label: str, rows: Sequence[Row]) -> List[str]:
    if not rows:
        return []
    lines = [f"{label}:"]
    for name, base, mean, ratio in rows:
        lines.append(f"  {name}: {base:.4f}s -> {mean:.4f}s ({ratio:.2f}x)")
    return lines


def format_comparison(
    result: Comparison,
    *,
    current_label: str,
    baseline_label: str,
    baseline_meta: Optional[RunMeta] = None,
    ignore_gone: bool = False,
) -> str:
    """The comparison report shared by the script and the CLI verbs."""
    lines = [
        f"benchmark comparison: {current_label} vs {baseline_label} "
        f"(tolerance ±{result.tolerance:.0%})"
    ]
    if baseline_meta is not None:
        if any((baseline_meta.git_sha, baseline_meta.timestamp, baseline_meta.host)):
            lines.append(f"baseline provenance: {baseline_meta.describe()}")
        elif baseline_meta.source and baseline_meta.source != baseline_label:
            lines.append(f"baseline provenance: unknown ({baseline_meta.source})")
        else:
            lines.append("baseline provenance: unknown (no meta block recorded)")
    lines += _format_rows("REGRESSIONS (slower than tolerance)", result.regressions)
    lines += _format_rows("improvements", result.improvements)
    lines += _format_rows("within tolerance", result.steady)
    if result.skipped_zero_baseline:
        lines.append(
            "WARNING: zero/near-zero baseline mean(s) skipped: "
            + ", ".join(result.skipped_zero_baseline)
        )
    if result.new:
        lines.append("new benchmarks (no baseline entry): " + ", ".join(result.new))
    if result.gone:
        lines.append(
            "missing benchmarks (in baseline only): " + ", ".join(result.gone)
        )
    violations = result.violations(ignore_gone=ignore_gone)
    if violations:
        for problem in violations:
            lines.append(f"WARNING: {problem}")
    else:
        lines.append("no regressions beyond tolerance")
    return "\n".join(lines)


def run_compare(
    artifact_path: Union[str, Path],
    baseline_path: Union[str, Path],
    *,
    tolerance: float = 0.5,
    strict: bool = False,
    write_baseline_instead: bool = False,
    ignore_gone: bool = False,
    emit=print,
) -> int:
    """The full artifact-vs-baseline flow; returns a process exit code.

    This is the one implementation behind ``scripts/bench_compare.py``
    and ``repro bench compare``.  Exit codes: ``0`` clean (or non-strict
    warnings), ``1`` strict-mode gate violation, ``2`` malformed input.
    """
    artifact_path, baseline_path = Path(artifact_path), Path(baseline_path)
    try:
        artifact = read_artifact(artifact_path)
    except MalformedArtifactError as error:
        emit(f"error: {error}")
        return 2

    if write_baseline_instead:
        meta = write_baseline(baseline_path, artifact)
        emit(
            f"baseline written: {baseline_path} ({len(artifact)} benchmarks, "
            f"{meta.describe()})"
        )
        return 0

    if not baseline_path.is_file():
        emit(f"no baseline at {baseline_path} — nothing to compare")
        return 0
    try:
        baseline, baseline_meta = read_baseline(baseline_path)
    except MalformedArtifactError as error:
        emit(f"error: {error}")
        return 2

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # rendered in the report
        result = compare(artifact.means, baseline, tolerance)
    emit(
        format_comparison(
            result,
            current_label=artifact_path.name,
            baseline_label=baseline_path.name,
            baseline_meta=baseline_meta,
            ignore_gone=ignore_gone,
        )
    )
    if result.violations(ignore_gone=ignore_gone):
        return 1 if strict else 0
    return 0
