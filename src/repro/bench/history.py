"""Append-only benchmark-trajectory store with a rolling regression gate.

The store borrows the disk-cache record idioms
(:mod:`repro.runtime.disk_cache`) scaled down to human-sized data:

* **one append-only series file per benchmark**, keyed by benchmark
  name.  The filename is a readable slug plus a content digest of the
  full name (``test_bench_headline-1a2b3c4d5e.bhl``) so that two names
  sharing a slug can never collide, exactly like the cache's
  SHA-digested record keys;
* **JSON-lines records** — each ``record()`` call appends one line per
  benchmark (``{"run": N, "name": ..., "mean": ..., "rounds": ...,
  "git_sha": ..., "timestamp": ..., "host": ...}``) with a single
  ``O_APPEND`` write, so concurrent recorders interleave whole lines;
* **torn tails read as misses** — a line that does not parse (a killed
  writer, a half-synced CI cache) is skipped, never an error, matching
  the cache's CRC-frame tolerance;
* **a ``runs.jsonl`` manifest** — one line per recorded run carrying
  the run ordinal and its provenance (git SHA, timestamp passed in,
  host tag, source artifact), the analogue of the cache's sidecar
  indexes: the cheap file that says what the series files contain.

:meth:`BenchHistory.check` gates the newest run against a **rolling
baseline**: the median of the up-to-``window`` preceding entries per
benchmark.  A median over several runs on the same host is what makes a
tolerance band defensible where a single-point diff is noise — the
series, not the snapshot, carries the performance claim.
"""

from __future__ import annotations

import json
import os
import re
import statistics
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.artifact import Artifact, RunMeta, read_artifact
from repro.bench.compare import Comparison, compare

#: Series files: one JSON-lines file per benchmark.
SERIES_SUFFIX = ".bhl"

#: Per-history manifest: one JSON line per recorded run.
RUNS_FILE = "runs.jsonl"

#: Environment variable selecting a default history directory.
HISTORY_DIR_ENV = "REPRO_BENCH_HISTORY"

#: Default history directory (relative to the working directory).
DEFAULT_HISTORY_DIR = ".repro-bench-history"


def history_dir_from_env() -> Optional[str]:
    """The ``REPRO_BENCH_HISTORY`` directory, or ``None`` when unset."""
    value = os.environ.get(HISTORY_DIR_ENV, "").strip()
    return value or None


def series_filename(name: str) -> str:
    """Slug + content digest, so distinct names never share a file."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-")[:80] or "bench"
    digest = sha256(name.encode("utf-8")).hexdigest()[:10]
    return f"{slug}-{digest}{SERIES_SUFFIX}"


@dataclass(frozen=True)
class HistoryEntry:
    """One recorded observation of one benchmark."""

    name: str
    run: int
    mean: float
    rounds: Optional[int] = None
    git_sha: Optional[str] = None
    timestamp: Optional[str] = None
    host: Optional[str] = None


@dataclass
class BenchCheck:
    """Outcome of gating the newest run against the rolling baseline."""

    comparison: Optional[Comparison]
    latest_run: Optional[dict]
    window: int
    #: Benchmarks seen for the first time in the newest run (no prior
    #: series to compare against — informational, never a failure).
    insufficient: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """True when the gate should exit non-zero."""
        return bool(self.violations)

    @property
    def violations(self) -> List[str]:
        """Human-readable gate violations (empty when the check passes)."""
        if self.comparison is None:
            return []
        return self.comparison.violations()


def _read_jsonl(path: Path) -> List[dict]:
    """Parse a JSON-lines file, skipping torn/corrupt lines."""
    if not path.is_file():
        return []
    records: List[dict] = []
    try:
        raw = path.read_text("utf-8")
    except OSError:
        return []
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn write — a miss, not an error
        if isinstance(record, dict):
            records.append(record)
    return records


def _append_jsonl(path: Path, record: dict) -> None:
    line = json.dumps(record, sort_keys=True) + "\n"
    with open(path, "a+b") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() > 0:
            # A killed writer may have left a torn, newline-less tail;
            # terminate it so the new record starts on its own line (the
            # torn line then reads as a skip, costing one record at most).
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
        handle.write(line.encode("utf-8"))


class BenchHistory:
    """Append-only per-benchmark series under one history directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root).expanduser()

    # -- writing ---------------------------------------------------------

    def record(
        self,
        artifact: Union[str, Path, Artifact],
        *,
        git_sha: Optional[str] = None,
        timestamp: Optional[str] = None,
        host: Optional[str] = None,
    ) -> dict:
        """Append one run (one entry per benchmark) to the history.

        Explicit ``git_sha`` / ``timestamp`` / ``host`` arguments win
        over the artifact's own provenance.  Returns the manifest line
        written to ``runs.jsonl``.
        """
        if not isinstance(artifact, Artifact):
            artifact = read_artifact(artifact)
        meta = RunMeta(git_sha=git_sha, timestamp=timestamp, host=host).merged_over(
            artifact.meta
        )
        self.root.mkdir(parents=True, exist_ok=True)
        runs = self.runs()
        run_id = runs[-1]["run"] + 1 if runs else 1
        manifest = {
            "run": run_id,
            "git_sha": meta.git_sha,
            "timestamp": meta.timestamp,
            "host": meta.host,
            "source": meta.source,
            "benchmarks": len(artifact.means),
        }
        _append_jsonl(self.root / RUNS_FILE, manifest)
        for name, mean in sorted(artifact.means.items()):
            _append_jsonl(
                self.root / series_filename(name),
                {
                    "run": run_id,
                    "name": name,
                    "mean": mean,
                    "rounds": artifact.rounds.get(name),
                    "git_sha": meta.git_sha,
                    "timestamp": meta.timestamp,
                    "host": meta.host,
                },
            )
        return manifest

    # -- reading ---------------------------------------------------------

    def runs(self) -> List[dict]:
        """The ``runs.jsonl`` manifest lines, oldest first."""
        records = [
            record
            for record in _read_jsonl(self.root / RUNS_FILE)
            if isinstance(record.get("run"), int)
        ]
        records.sort(key=lambda record: record["run"])
        return records

    def names(self) -> List[str]:
        """All benchmark names with a series file, sorted."""
        names = set()
        if self.root.is_dir():
            for path in self.root.glob(f"*{SERIES_SUFFIX}"):
                for record in _read_jsonl(path):
                    name = record.get("name")
                    if isinstance(name, str) and name:
                        names.add(name)
                        break
        return sorted(names)

    def series(self, name: str) -> List[HistoryEntry]:
        """The recorded trajectory of one benchmark, oldest first."""
        entries: List[HistoryEntry] = []
        for record in _read_jsonl(self.root / series_filename(name)):
            if record.get("name") != name:
                continue
            run, mean = record.get("run"), record.get("mean")
            if not isinstance(run, int) or not isinstance(mean, (int, float)):
                continue
            rounds = record.get("rounds")
            entries.append(
                HistoryEntry(
                    name=name,
                    run=run,
                    mean=float(mean),
                    rounds=int(rounds) if isinstance(rounds, int) else None,
                    git_sha=record.get("git_sha"),
                    timestamp=record.get("timestamp"),
                    host=record.get("host"),
                )
            )
        entries.sort(key=lambda entry: entry.run)
        return entries

    def all_series(self) -> Dict[str, List[HistoryEntry]]:
        """``{benchmark name: trajectory}`` for every recorded benchmark."""
        return {name: self.series(name) for name in self.names()}

    def rolling_baseline(
        self, *, window: int = 5, before_run: Optional[int] = None
    ) -> Dict[str, float]:
        """Median of the up-to-``window`` entries per benchmark.

        With ``before_run`` set, only entries from earlier runs count —
        that is the baseline the newest run is gated against.
        """
        baseline: Dict[str, float] = {}
        for name, entries in self.all_series().items():
            if before_run is not None:
                entries = [entry for entry in entries if entry.run < before_run]
            if entries:
                baseline[name] = statistics.median(
                    [entry.mean for entry in entries[-window:]]
                )
        return baseline

    # -- gating ----------------------------------------------------------

    def check(self, *, tolerance: float = 0.25, window: int = 5) -> BenchCheck:
        """Gate the newest recorded run against the rolling baseline.

        Regressions beyond ``tolerance`` and benchmarks that *vanished*
        from the newest run (present in prior runs' series but absent
        now — coverage holes) are violations; benchmarks appearing for
        the first time are listed as ``insufficient`` and pass.
        """
        runs = self.runs()
        if not runs:
            return BenchCheck(
                comparison=None,
                latest_run=None,
                window=window,
                notes=["no recorded runs — nothing to check"],
            )
        latest = runs[-1]
        if len(runs) == 1:
            return BenchCheck(
                comparison=None,
                latest_run=latest,
                window=window,
                notes=[
                    "only one recorded run — a rolling baseline needs at "
                    "least two (record more runs)"
                ],
            )
        latest_id = latest["run"]
        current = {
            name: entries[-1].mean
            for name, entries in self.all_series().items()
            if entries and entries[-1].run == latest_id
        }
        baseline = self.rolling_baseline(window=window, before_run=latest_id)
        comparison = compare(current, baseline, tolerance)
        return BenchCheck(
            comparison=comparison,
            latest_run=latest,
            window=window,
            insufficient=comparison.new,
        )
