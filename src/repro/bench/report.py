"""Trajectory rendering: terminal and markdown tables with sparklines.

One row per benchmark: how many runs the series holds, a sparkline of
the recorded means (oldest → newest), the first and latest values, and
the latest value's delta against the rolling median of the preceding
``window`` entries — the same quantity ``repro bench check`` gates on,
so the report and the gate can never tell different stories.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from repro.bench.history import BenchHistory, HistoryEntry

#: Eight-level block characters, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a numeric series (flat series render mid-level)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high - low <= 0:
        return SPARK_LEVELS[3] * len(values)
    scale = (len(SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        SPARK_LEVELS[int(round((value - low) * scale))] for value in values
    )


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{1e3 * value:.2f}ms"
    return f"{1e6 * value:.1f}us"


def _delta_vs_rolling(entries: List[HistoryEntry], window: int) -> Optional[float]:
    """Latest mean vs the median of the preceding ``window`` entries."""
    if len(entries) < 2:
        return None
    prior = [entry.mean for entry in entries[:-1]][-window:]
    median = statistics.median(prior)
    if median <= 0:
        return None
    return entries[-1].mean / median - 1.0


def format_report(
    history: BenchHistory, *, markdown: bool = False, window: int = 5
) -> str:
    """Render the full per-benchmark trajectory table."""
    runs = history.runs()
    all_series = history.all_series()
    header_bits = [f"bench history [{history.root}]: {len(runs)} run(s), "
                   f"{len(all_series)} benchmark(s)"]
    if runs:
        latest = runs[-1]
        sha = (latest.get("git_sha") or "unknown")[:12]
        header_bits.append(
            f"latest run #{latest['run']}: sha={sha} "
            f"date={latest.get('timestamp') or 'unknown'} "
            f"host={latest.get('host') or 'unknown'}"
        )
    if not all_series:
        return "\n".join(header_bits + ["(empty history — run `repro bench record`)"])

    rows = []
    for name, entries in sorted(all_series.items()):
        means = [entry.mean for entry in entries]
        delta = _delta_vs_rolling(entries, window)
        rows.append(
            (
                name,
                str(len(entries)),
                sparkline(means[-16:]),
                _format_seconds(means[0]),
                _format_seconds(means[-1]),
                "n/a" if delta is None else f"{delta:+.1%}",
            )
        )

    columns = ("benchmark", "runs", "trend", "first", "latest",
               f"Δ vs median[{window}]")
    if markdown:
        lines = ["# Benchmark trajectory", ""]
        lines += list(header_bits)
        lines += ["", "| " + " | ".join(columns) + " |",
                  "|" + "|".join("---" for _ in columns) + "|"]
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    widths = [
        max(len(columns[index]), *(len(row[index]) for row in rows))
        for index in range(len(columns))
    ]
    lines = header_bits + [""]
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
