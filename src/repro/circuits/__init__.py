"""Circuit intermediate representation: gates, instructions, circuits, DAGs."""

from repro.circuits.gate import Barrier, Gate, UnitaryGate
from repro.circuits.instruction import Instruction
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit, DAGNode

__all__ = [
    "Barrier",
    "Gate",
    "UnitaryGate",
    "Instruction",
    "QuantumCircuit",
    "DAGCircuit",
    "DAGNode",
]
