"""A lightweight quantum circuit container.

The :class:`QuantumCircuit` stores an ordered list of
:class:`~repro.circuits.instruction.Instruction` objects and provides the
counting / depth machinery the paper's evaluation is built on: total gate
counts, two-qubit gate counts, and *critical-path* counts (the longest
dependency chain through the circuit, weighting only the instructions a
predicate selects — e.g. only SWAPs, or only two-qubit basis gates).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gate import Barrier, Gate, UnitaryGate
from repro.circuits.instruction import Instruction


class QuantumCircuit:
    """An ordered sequence of gate applications on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: Optional[str] = None):
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._name = name or f"circuit_{num_qubits}q"
        self._instructions: List[Instruction] = []
        self.metadata: Dict[str, object] = {}

    # -- basic structure ----------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the circuit register."""
        return self._num_qubits

    @property
    def name(self) -> str:
        """Circuit name (used in reports and benchmark tables)."""
        return self._name

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """The instruction list as an immutable tuple."""
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self._name!r}, qubits={self._num_qubits}, "
            f"instructions={len(self._instructions)})"
        )

    # -- construction --------------------------------------------------------

    def append(
        self,
        gate: Gate,
        qubits: Sequence[int],
        induced: bool = False,
    ) -> "QuantumCircuit":
        """Append ``gate`` on ``qubits``; returns ``self`` for chaining."""
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if qubit < 0 or qubit >= self._num_qubits:
                raise ValueError(
                    f"qubit index {qubit} out of range for {self._num_qubits}-qubit circuit"
                )
        self._instructions.append(Instruction(gate, qubits, induced=induced))
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        """Append pre-built instructions (validated against this circuit)."""
        for instruction in instructions:
            self.append(instruction.gate, instruction.qubits, induced=instruction.induced)
        return self

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Shallow copy (instructions are immutable so sharing is safe)."""
        other = QuantumCircuit(self._num_qubits, name or self._name)
        other._instructions = list(self._instructions)
        other.metadata = dict(self.metadata)
        return other

    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Append another circuit onto this one (optionally remapped)."""
        if qubits is None:
            if other.num_qubits > self._num_qubits:
                raise ValueError("composed circuit does not fit")
            qubits = range(other.num_qubits)
        mapping = {i: int(q) for i, q in enumerate(qubits)}
        for instruction in other:
            self.append(
                instruction.gate,
                tuple(mapping[q] for q in instruction.qubits),
                induced=instruction.induced,
            )
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (reversed order, inverted gates)."""
        inverted = QuantumCircuit(self._num_qubits, f"{self._name}_dg")
        for instruction in reversed(self._instructions):
            inverted.append(instruction.gate.inverse(), instruction.qubits)
        return inverted

    def remove_idle_qubits(self) -> "QuantumCircuit":
        """Return a copy restricted to the qubits that are actually used.

        Transpiled circuits live on the full device register even when the
        algorithm only touches a few physical qubits; this compaction makes
        them small enough for state-vector / density-matrix validation.
        The old-index -> new-index mapping is stored in
        ``metadata["idle_qubit_mapping"]``.
        """
        used = sorted({q for inst in self._instructions for q in inst.qubits})
        if not used:
            used = [0]
        mapping = {old: new for new, old in enumerate(used)}
        compact = QuantumCircuit(len(used), name=self._name)
        compact.metadata = dict(self.metadata)
        compact.metadata["idle_qubit_mapping"] = dict(mapping)
        for instruction in self._instructions:
            compact.append(
                instruction.gate,
                tuple(mapping[q] for q in instruction.qubits),
                induced=instruction.induced,
            )
        return compact

    # -- convenience gate builders -------------------------------------------

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard."""
        from repro.gates import HGate

        return self.append(HGate(), (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli X."""
        from repro.gates import XGate

        return self.append(XGate(), (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli Y."""
        from repro.gates import YGate

        return self.append(YGate(), (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli Z."""
        from repro.gates import ZGate

        return self.append(ZGate(), (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        """S gate."""
        from repro.gates import SGate

        return self.append(SGate(), (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        from repro.gates import TGate

        return self.append(TGate(), (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """T-dagger gate."""
        from repro.gates import TdgGate

        return self.append(TdgGate(), (qubit,))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """X rotation."""
        from repro.gates import RXGate

        return self.append(RXGate(theta), (qubit,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Y rotation."""
        from repro.gates import RYGate

        return self.append(RYGate(theta), (qubit,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Z rotation."""
        from repro.gates import RZGate

        return self.append(RZGate(theta), (qubit,))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Generic single-qubit gate."""
        from repro.gates import U3Gate

        return self.append(U3Gate(theta, phi, lam), (qubit,))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-NOT."""
        from repro.gates import CXGate

        return self.append(CXGate(), (control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        from repro.gates import CZGate

        return self.append(CZGate(), (control, target))

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled-phase."""
        from repro.gates import CPhaseGate

        return self.append(CPhaseGate(lam), (control, target))

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """ZZ rotation."""
        from repro.gates import RZZGate

        return self.append(RZZGate(theta), (qubit_a, qubit_b))

    def rxx(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """XX rotation."""
        from repro.gates import RXXGate

        return self.append(RXXGate(theta), (qubit_a, qubit_b))

    def swap(self, qubit_a: int, qubit_b: int, induced: bool = False) -> "QuantumCircuit":
        """SWAP two qubits."""
        from repro.gates import SwapGate

        return self.append(SwapGate(), (qubit_a, qubit_b), induced=induced)

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """iSWAP."""
        from repro.gates import ISwapGate

        return self.append(ISwapGate(), (qubit_a, qubit_b))

    def siswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Square-root iSWAP (the SNAIL basis gate)."""
        from repro.gates import SqrtISwapGate

        return self.append(SqrtISwapGate(), (qubit_a, qubit_b))

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Toffoli."""
        from repro.gates import CCXGate

        return self.append(CCXGate(), (control_a, control_b, target))

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], label: str = "unitary") -> "QuantumCircuit":
        """Append an arbitrary unitary on the given qubits."""
        return self.append(UnitaryGate(matrix, label=label), tuple(qubits))

    def barrier(self, qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Append a barrier (ignored by all counting metrics)."""
        if qubits is None:
            qubits = range(self._num_qubits)
        return self.append(Barrier(len(tuple(qubits))), tuple(qubits))

    # -- counting and metrics --------------------------------------------------

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names."""
        return dict(Counter(inst.name for inst in self._instructions))

    def size(self) -> int:
        """Total number of instructions (barriers excluded)."""
        return sum(1 for inst in self._instructions if inst.name != "barrier")

    def num_nonlocal_gates(self) -> int:
        """Number of instructions acting on two or more qubits."""
        return sum(
            1
            for inst in self._instructions
            if inst.num_qubits >= 2 and inst.name != "barrier"
        )

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit instructions."""
        return sum(1 for inst in self._instructions if inst.is_two_qubit)

    def swap_count(self, induced_only: bool = False) -> int:
        """Number of SWAP instructions, optionally only transpiler-induced ones."""
        return sum(
            1
            for inst in self._instructions
            if inst.name == "swap" and (inst.induced or not induced_only)
        )

    def depth(self, weight: Optional[Callable[[Instruction], float]] = None) -> float:
        """Longest dependency path through the circuit.

        Args:
            weight: optional per-instruction weight; defaults to 1 for every
                non-barrier instruction (ordinary circuit depth).
        """
        if weight is None:
            weight = lambda inst: 0.0 if inst.name == "barrier" else 1.0
        frontier = [0.0] * self._num_qubits
        longest = 0.0
        for instruction in self._instructions:
            start = max(frontier[q] for q in instruction.qubits)
            end = start + weight(instruction)
            for qubit in instruction.qubits:
                frontier[qubit] = end
            longest = max(longest, end)
        return longest

    def critical_path_count(self, predicate: Callable[[Instruction], bool]) -> int:
        """Maximum number of predicate-selected instructions on any path.

        This is the quantity the paper calls "critical path SWAPs" (with the
        predicate selecting SWAP gates) and "pulse duration" / "critical path
        2Q gates" (with the predicate selecting two-qubit basis gates).
        """
        return int(self.depth(weight=lambda inst: 1.0 if predicate(inst) else 0.0))

    def critical_path_swaps(self, induced_only: bool = False) -> int:
        """Critical-path SWAP count (paper Figs. 4, 11, 12 bottom rows)."""
        return self.critical_path_count(
            lambda inst: inst.name == "swap" and (inst.induced or not induced_only)
        )

    def critical_path_two_qubit(self) -> int:
        """Critical-path two-qubit gate count (paper Figs. 13, 14 bottom rows)."""
        return self.critical_path_count(lambda inst: inst.is_two_qubit)

    def weighted_duration(self) -> float:
        """Critical-path duration using each gate's relative pulse duration.

        Single-qubit gates contribute zero (the paper treats them as free);
        two-qubit gates contribute :meth:`Gate.duration`, so e.g. an
        ``n``-th-root iSWAP contributes ``1/n``.
        """
        return float(self.depth(weight=lambda inst: inst.gate.duration()))

    # -- analysis ---------------------------------------------------------------

    def two_qubit_interactions(self) -> Counter:
        """Histogram of unordered qubit pairs touched by two-qubit gates."""
        pairs: Counter = Counter()
        for instruction in self._instructions:
            if instruction.is_two_qubit:
                pairs[tuple(sorted(instruction.qubits))] += 1
        return pairs

    def to_unitary(self) -> np.ndarray:
        """Full circuit unitary (little-endian register ordering).

        Intended for verification on small circuits; the cost is
        ``O(4^n)`` memory.
        """
        from repro.simulator.unitary import circuit_unitary

        return circuit_unitary(self)
