"""Directed-acyclic-graph view of a circuit, backed by flat integer arrays.

The routing passes need the dependency structure of a circuit: which gates
are currently executable (the *front layer*) and which gates become
executable once a given gate has been applied.  Dependency edges are held
in CSR form (``indptr``/``indices`` integer arrays, one pair for
successors and one for predecessors) rather than per-node Python sets, so
the routers' inner loop — decrement a predecessor counter, push newly
ready successors — runs on O(degree) array slices, and one DAG can be
shared across stochastic routing trials and layout passes through the
transpiler :class:`~repro.transpiler.passmanager.PropertySet`.

:class:`DAGNode` survives as a lightweight read-only view for callers that
want per-node objects; longest-path utilities cross-check the
critical-path counters of :class:`~repro.circuits.circuit.QuantumCircuit`.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction

#: PropertySet key under which a shared DAG is recorded (see
#: :meth:`DAGCircuit.shared`).
SHARED_DAG_PROPERTY = "shared_dag"


def _csr_from_edges(
    sources: np.ndarray, targets: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build (indptr, indices) grouped by source, ascending within a row."""
    order = np.lexsort((targets, sources))
    indices = targets[order]
    counts = np.bincount(sources, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices


class DAGNode:
    """Read-only per-node view into the array-backed DAG."""

    __slots__ = ("_dag", "index")

    def __init__(self, dag: "DAGCircuit", index: int):
        self._dag = dag
        self.index = index

    @property
    def instruction(self) -> Instruction:
        """The instruction this node represents."""
        return self._dag.instruction(self.index)

    @property
    def predecessors(self) -> Tuple[int, ...]:
        """Predecessor indices, ascending."""
        return self._dag.predecessors(self.index)

    @property
    def successors(self) -> Tuple[int, ...]:
        """Successor indices, ascending."""
        return self._dag.successors(self.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DAGNode(index={self.index}, name={self.instruction.name!r})"


class DAGCircuit:
    """Dependency DAG of a :class:`QuantumCircuit` on CSR integer arrays."""

    def __init__(self, circuit: QuantumCircuit):
        self._num_qubits = circuit.num_qubits
        self._instructions: Tuple[Instruction, ...] = tuple(circuit)
        n = len(self._instructions)

        # One dependency edge per (wire, consecutive instruction pair);
        # duplicates (two shared wires between the same pair) collapse.
        last_on_wire: Dict[int, int] = {}
        sources: List[int] = []
        targets: List[int] = []
        pred_counts = np.zeros(n, dtype=np.int64)
        is_two_qubit = np.zeros(n, dtype=bool)
        needs_coupling = np.zeros(n, dtype=bool)
        qubit_pairs = np.full((n, 2), -1, dtype=np.int64)
        for index, instruction in enumerate(self._instructions):
            previous: List[int] = []
            for qubit in instruction.qubits:
                prev = last_on_wire.get(qubit)
                if prev is not None and prev not in previous:
                    previous.append(prev)
                last_on_wire[qubit] = index
            pred_counts[index] = len(previous)
            sources.extend(previous)
            targets.extend([index] * len(previous))
            if instruction.num_qubits >= 2 and instruction.name != "barrier":
                # Multi-qubit gates (should none survive the decompose init
                # stage) are routed on their first two operands, exactly as
                # the routers' adjacency checks always treated them.
                needs_coupling[index] = True
                is_two_qubit[index] = instruction.is_two_qubit
                qubit_pairs[index, 0] = instruction.qubits[0]
                qubit_pairs[index, 1] = instruction.qubits[1]

        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        self._succ_indptr, self._succ_indices = _csr_from_edges(src, dst, n)
        self._pred_indptr, self._pred_indices = _csr_from_edges(dst, src, n)
        self._pred_counts = pred_counts
        self._is_two_qubit = is_two_qubit
        self._needs_coupling = needs_coupling
        self._qubit_pairs = qubit_pairs
        for array in (
            self._succ_indptr,
            self._succ_indices,
            self._pred_indptr,
            self._pred_indices,
            self._pred_counts,
            self._is_two_qubit,
            self._needs_coupling,
            self._qubit_pairs,
        ):
            array.setflags(write=False)

    # -- sharing ------------------------------------------------------------

    @classmethod
    def shared(cls, circuit: QuantumCircuit, properties) -> "DAGCircuit":
        """The DAG for ``circuit`` cached in a transpiler property set.

        Routing and layout passes all operate on the same circuit object
        between transforming stages, so the first caller builds the DAG and
        every later pass (or stochastic routing trial) reuses it.  The
        entry is keyed on the exact circuit object: a pass that transformed
        the circuit gets a fresh DAG, never a stale one.
        """
        entry = properties.get(SHARED_DAG_PROPERTY)
        if entry is not None and entry[0] is circuit:
            return entry[1]
        dag = cls(circuit)
        properties[SHARED_DAG_PROPERTY] = (circuit, dag)
        return dag

    # -- structure ---------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits of the underlying circuit."""
        return self._num_qubits

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """All instructions, in original (topological) order."""
        return self._instructions

    @property
    def nodes(self) -> Tuple[DAGNode, ...]:
        """All DAG nodes, in original instruction order (a topological order)."""
        return tuple(DAGNode(self, index) for index in range(len(self._instructions)))

    def __len__(self) -> int:
        return len(self._instructions)

    def node(self, index: int) -> DAGNode:
        """Node accessor by instruction index."""
        return DAGNode(self, index)

    def instruction(self, index: int) -> Instruction:
        """Instruction accessor by index (no node object allocation)."""
        return self._instructions[index]

    def front_layer(self) -> List[int]:
        """Indices of instructions with no predecessors."""
        return [int(i) for i in np.nonzero(self._pred_counts == 0)[0]]

    def successors(self, index: int) -> Tuple[int, ...]:
        """Successor indices of a node, ascending."""
        start, stop = self._succ_indptr[index], self._succ_indptr[index + 1]
        return tuple(int(i) for i in self._succ_indices[start:stop])

    def predecessors(self, index: int) -> Tuple[int, ...]:
        """Predecessor indices of a node, ascending."""
        start, stop = self._pred_indptr[index], self._pred_indptr[index + 1]
        return tuple(int(i) for i in self._pred_indices[start:stop])

    def topological_order(self) -> List[int]:
        """A topological order (original instruction order is one)."""
        return list(range(len(self._instructions)))

    # -- flat-array accessors (router hot path) -----------------------------

    def predecessor_counts(self) -> np.ndarray:
        """Writable copy of the per-node predecessor counts."""
        return self._pred_counts.copy()

    @property
    def successor_indptr(self) -> np.ndarray:
        """CSR row pointers of the successor adjacency (read-only)."""
        return self._succ_indptr

    @property
    def successor_indices(self) -> np.ndarray:
        """CSR column indices of the successor adjacency (read-only)."""
        return self._succ_indices

    @property
    def two_qubit_mask(self) -> np.ndarray:
        """Boolean per-node mask of exactly-two-qubit instructions (read-only)."""
        return self._is_two_qubit

    @property
    def coupling_mask(self) -> np.ndarray:
        """Per-node mask of gates needing coupled operands (read-only).

        True for every multi-qubit non-barrier gate — a superset of
        :attr:`two_qubit_mask` when 3+-qubit gates survive to routing.
        """
        return self._needs_coupling

    @property
    def qubit_pairs(self) -> np.ndarray:
        """Per-node first-two-operand array; ``-1`` outside :attr:`coupling_mask`."""
        return self._qubit_pairs

    def two_qubit_interactions(self) -> Counter:
        """Unordered-pair interaction counts (as the circuit method, but
        computed from the flat operand arrays)."""
        pairs = self._qubit_pairs[self._is_two_qubit]
        if not len(pairs):
            return Counter()
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        encoded = lo * self._num_qubits + hi
        unique, counts = np.unique(encoded, return_counts=True)
        return Counter(
            {
                (int(code // self._num_qubits), int(code % self._num_qubits)): int(count)
                for code, count in zip(unique, counts)
            }
        )

    def qubit_activity(self) -> np.ndarray:
        """Per-qubit two-qubit-gate participation counts (read-only int64).

        ``qubit_activity()[q]`` equals the sum over
        :meth:`two_qubit_interactions` entries containing ``q`` — the
        ranking signal of the layout passes, without building a Counter.
        Cached on the DAG, which is immutable.
        """
        if getattr(self, "_qubit_activity", None) is None:
            pairs = self._qubit_pairs[self._is_two_qubit]
            activity = np.bincount(
                pairs.ravel(), minlength=self._num_qubits
            ).astype(np.int64)
            activity.setflags(write=False)
            self._qubit_activity = activity
        return self._qubit_activity

    def interaction_matrix(self) -> np.ndarray:
        """Symmetric (n, n) matrix of unordered-pair interaction counts.

        The dense form of :meth:`two_qubit_interactions`, consumed by the
        vectorized layout scorers (one gather per candidate row instead of
        a dict walk).  Cached on the DAG, read-only.
        """
        if getattr(self, "_interaction_matrix", None) is None:
            n = self._num_qubits
            matrix = np.zeros((n, n), dtype=np.int64)
            pairs = self._qubit_pairs[self._is_two_qubit]
            if len(pairs):
                np.add.at(matrix, (pairs[:, 0], pairs[:, 1]), 1)
                matrix = matrix + matrix.T
            matrix.setflags(write=False)
            self._interaction_matrix = matrix
        return self._interaction_matrix

    # -- analysis -----------------------------------------------------------

    def longest_path_length(
        self, weight: Optional[Callable[[Instruction], float]] = None
    ) -> float:
        """Length of the longest path under the given per-node weight."""
        if weight is None:
            weight = lambda inst: 0.0 if inst.name == "barrier" else 1.0
        n = len(self._instructions)
        distances = np.zeros(n)
        for index, instruction in enumerate(self._instructions):
            start, stop = self._pred_indptr[index], self._pred_indptr[index + 1]
            incoming = (
                distances[self._pred_indices[start:stop]].max() if stop > start else 0.0
            )
            distances[index] = incoming + weight(instruction)
        return float(distances.max()) if n else 0.0

    def layers(self) -> List[List[int]]:
        """Partition nodes into ASAP layers (greedy earliest scheduling)."""
        n = len(self._instructions)
        level = np.zeros(n, dtype=np.int64)
        for index in range(n):
            start, stop = self._pred_indptr[index], self._pred_indptr[index + 1]
            if stop > start:
                level[index] = level[self._pred_indices[start:stop]].max() + 1
        layered: Dict[int, List[int]] = {}
        for index in range(n):
            layered.setdefault(int(level[index]), []).append(index)
        return [layered[depth] for depth in sorted(layered)]
