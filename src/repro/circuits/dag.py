"""Directed-acyclic-graph view of a circuit.

The routing passes need the dependency structure of a circuit: which gates
are currently executable (the *front layer*) and which gates become
executable once a given gate has been applied.  This module provides a
minimal DAG built from qubit wire order, plus longest-path utilities used
to cross-check the critical-path counters of
:class:`~repro.circuits.circuit.QuantumCircuit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction


@dataclass
class DAGNode:
    """One instruction in the dependency graph."""

    index: int
    instruction: Instruction
    predecessors: Set[int] = field(default_factory=set)
    successors: Set[int] = field(default_factory=set)


class DAGCircuit:
    """Dependency DAG of a :class:`QuantumCircuit`."""

    def __init__(self, circuit: QuantumCircuit):
        self._num_qubits = circuit.num_qubits
        self._nodes: List[DAGNode] = []
        last_on_wire: Dict[int, int] = {}
        for index, instruction in enumerate(circuit):
            node = DAGNode(index=index, instruction=instruction)
            for qubit in instruction.qubits:
                if qubit in last_on_wire:
                    previous = last_on_wire[qubit]
                    node.predecessors.add(previous)
                    self._nodes[previous].successors.add(index)
                last_on_wire[qubit] = index
            self._nodes.append(node)

    # -- structure ---------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits of the underlying circuit."""
        return self._num_qubits

    @property
    def nodes(self) -> Tuple[DAGNode, ...]:
        """All DAG nodes, in original instruction order (a topological order)."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> DAGNode:
        """Node accessor by instruction index."""
        return self._nodes[index]

    def front_layer(self) -> List[int]:
        """Indices of instructions with no predecessors."""
        return [node.index for node in self._nodes if not node.predecessors]

    def successors(self, index: int) -> Tuple[int, ...]:
        """Successor indices of a node."""
        return tuple(sorted(self._nodes[index].successors))

    def predecessors(self, index: int) -> Tuple[int, ...]:
        """Predecessor indices of a node."""
        return tuple(sorted(self._nodes[index].predecessors))

    def topological_order(self) -> List[int]:
        """A topological order (original instruction order is one)."""
        return list(range(len(self._nodes)))

    # -- analysis -----------------------------------------------------------

    def longest_path_length(
        self, weight: Optional[Callable[[Instruction], float]] = None
    ) -> float:
        """Length of the longest path under the given per-node weight."""
        if weight is None:
            weight = lambda inst: 0.0 if inst.name == "barrier" else 1.0
        distances = [0.0] * len(self._nodes)
        best = 0.0
        for node in self._nodes:  # already topologically ordered
            incoming = max(
                (distances[p] for p in node.predecessors), default=0.0
            )
            distances[node.index] = incoming + weight(node.instruction)
            best = max(best, distances[node.index])
        return best

    def layers(self) -> List[List[int]]:
        """Partition nodes into ASAP layers (greedy earliest scheduling)."""
        level: Dict[int, int] = {}
        layered: Dict[int, List[int]] = {}
        for node in self._nodes:
            depth = max((level[p] + 1 for p in node.predecessors), default=0)
            level[node.index] = depth
            layered.setdefault(depth, []).append(node.index)
        return [layered[d] for d in sorted(layered)]
