"""Gate abstractions for the circuit IR.

A :class:`Gate` is a named unitary operation on a fixed number of qubits.
Concrete standard gates live in :mod:`repro.gates`; this module defines the
abstract base plus the generic :class:`UnitaryGate` wrapper used for raw
matrices (e.g. the Haar-random SU(4) blocks of Quantum Volume circuits).

Matrix convention: a gate matrix is written over the ordered computational
basis of its *argument list*, most-significant first.  For a two-qubit gate
applied as ``circuit.append(gate, (a, b))`` the matrix rows/columns are
ordered ``|ab> = |00>, |01>, |10>, |11>``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.linalg.cache import cached_unitary


class Gate:
    """A named unitary operation acting on ``num_qubits`` qubits."""

    def __init__(
        self,
        name: str,
        num_qubits: int,
        params: Sequence[float] = (),
        label: Optional[str] = None,
    ):
        if num_qubits < 1:
            raise ValueError("a gate must act on at least one qubit")
        self._name = name
        self._num_qubits = int(num_qubits)
        self._params = tuple(float(p) for p in params)
        self._label = label

    # -- basic properties ------------------------------------------------

    @property
    def name(self) -> str:
        """Canonical lowercase gate name (e.g. ``"cx"``)."""
        return self._name

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return self._num_qubits

    @property
    def params(self) -> Tuple[float, ...]:
        """Numeric gate parameters (angles), possibly empty."""
        return self._params

    @property
    def label(self) -> str:
        """Human-readable label; defaults to the gate name."""
        return self._label if self._label is not None else self._name

    @property
    def is_two_qubit(self) -> bool:
        """True for gates on exactly two qubits."""
        return self._num_qubits == 2

    # -- behaviour subclasses must/should provide --------------------------

    def matrix(self) -> np.ndarray:
        """Unitary matrix of the gate (see module docstring for ordering)."""
        raise NotImplementedError(f"gate {self._name!r} does not define a matrix")

    def cached_matrix(self) -> np.ndarray:
        """Unitary of the gate, served from the process-global LRU cache.

        Keyed on ``(name, num_qubits, params)``, so every instance of e.g.
        ``CXGate`` shares one matrix.  The returned array is frozen
        (non-writeable); use :meth:`matrix` when a mutable copy is needed.
        """
        key = (
            self._name,
            self._num_qubits,
            tuple(round(p, 12) for p in self._params),
        )
        return cached_unitary(key, self.matrix)

    def inverse(self) -> "Gate":
        """Return a gate implementing the adjoint of this gate."""
        return UnitaryGate(self.matrix().conj().T, label=f"{self.label}_dg")

    def duration(self) -> float:
        """Relative pulse duration of the gate.

        Single-qubit gates are treated as free (duration 0), matching the
        paper's normalisation; two-qubit gates default to one pulse unit.
        Subclasses (e.g. fractional iSWAP gates) override this.
        """
        return 0.0 if self._num_qubits == 1 else 1.0

    # -- dunder helpers -----------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._params:
            params = ", ".join(f"{p:.4g}" for p in self._params)
            return f"{type(self).__name__}({self._name}, [{params}])"
        return f"{type(self).__name__}({self._name})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self._name == other._name
            and self._num_qubits == other._num_qubits
            and len(self._params) == len(other._params)
            and all(
                abs(a - b) < 1e-12 for a, b in zip(self._params, other._params)
            )
        )

    def __hash__(self) -> int:
        return hash((self._name, self._num_qubits, tuple(round(p, 12) for p in self._params)))


class UnitaryGate(Gate):
    """A gate defined directly by its unitary matrix."""

    def __init__(self, matrix: np.ndarray, label: Optional[str] = None):
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("unitary matrix must be square")
        dim = matrix.shape[0]
        num_qubits = int(round(np.log2(dim)))
        if 2 ** num_qubits != dim:
            raise ValueError("matrix dimension must be a power of two")
        identity = np.eye(dim)
        if not np.allclose(matrix @ matrix.conj().T, identity, atol=1e-8):
            raise ValueError("matrix is not unitary")
        super().__init__("unitary", num_qubits, (), label=label or "unitary")
        self._matrix = matrix.copy()

    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def cached_matrix(self) -> np.ndarray:
        """Frozen view of the wrapped matrix (no global cache entry needed)."""
        frozen = self.__dict__.get("_frozen_matrix")
        if frozen is None:
            frozen = self._matrix.copy()
            frozen.setflags(write=False)
            self.__dict__["_frozen_matrix"] = frozen
        return frozen

    def inverse(self) -> "UnitaryGate":
        return UnitaryGate(self._matrix.conj().T, label=f"{self.label}_dg")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnitaryGate):
            return NotImplemented
        return self._matrix.shape == other._matrix.shape and bool(
            np.allclose(self._matrix, other._matrix, atol=1e-12)
        )

    def __hash__(self) -> int:
        return hash((self._name, self._num_qubits, self._matrix.tobytes()))


class Barrier(Gate):
    """A scheduling barrier; not a unitary operation, ignored by metrics."""

    def __init__(self, num_qubits: int):
        super().__init__("barrier", num_qubits)

    def matrix(self) -> np.ndarray:
        return np.eye(2 ** self.num_qubits, dtype=complex)

    def duration(self) -> float:
        return 0.0
