"""Instruction: a gate bound to specific circuit qubits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.circuits.gate import Gate


@dataclass(frozen=True)
class Instruction:
    """A gate application on concrete qubit indices.

    Attributes:
        gate: the applied :class:`~repro.circuits.gate.Gate`.
        qubits: the circuit qubit indices, in gate-argument order.
        induced: True when the instruction was inserted by the transpiler
            (e.g. a routing SWAP) rather than being part of the source
            algorithm.  The paper reports *induced* SWAP counts.
    """

    gate: Gate
    qubits: Tuple[int, ...]
    induced: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.qubits) != self.gate.num_qubits:
            raise ValueError(
                f"gate {self.gate.name!r} expects {self.gate.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError("instruction qubits must be distinct")

    @property
    def name(self) -> str:
        """Gate name shortcut."""
        return self.gate.name

    @property
    def num_qubits(self) -> int:
        """Number of qubits the instruction touches."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit instructions (the paper's unit of cost)."""
        return self.gate.num_qubits == 2 and self.gate.name != "barrier"

    def remap(self, mapping) -> "Instruction":
        """Return a copy with qubits translated through ``mapping``.

        ``mapping`` may be a dict or a callable taking a qubit index.
        """
        if callable(mapping):
            new_qubits = tuple(mapping(q) for q in self.qubits)
        else:
            new_qubits = tuple(mapping[q] for q in self.qubits)
        return Instruction(self.gate, new_qubits, induced=self.induced)
