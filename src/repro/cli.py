"""Command-line interface for regenerating the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro tables                    # Tables 1 and 2
    python -m repro swaps --scale small       # Fig. 11-style SWAP study
    python -m repro swaps --scale large       # Fig. 4 / 12-style SWAP study
    python -m repro codesign --scale small    # Fig. 13-style co-design study
    python -m repro headline                  # abstract's headline ratios
    python -m repro sensitivity               # Fig. 15 sensitivity study
    python -m repro chevron                   # Fig. 6 chevron
    python -m repro frequency --scale small   # frequency-crowding extension study
    python -m repro schedule --scale small    # duration-aware co-design extension
    python -m repro reliability QuantumVolume 12   # wall-clock reliability ranking
    python -m repro qasm GHZ 8                # export a workload as OpenQASM 2
    python -m repro run QuantumVolume 12 --topology corral-1-1 --basis sqiswap --level 2
    python -m repro cache gc --cache-dir .repro-cache --max-bytes 100000000
    python -m repro serve --port 8537 --workers 4 --cache-dir .repro-cache
    python -m repro bench record BENCH_smoke.json  # append run to bench history
    python -m repro bench report --markdown        # trajectory table
    python -m repro bench check --tolerance 0.25   # regression gate (exit 1)

Every sub-command prints a text report; ``--csv PATH`` additionally writes
the raw data for external plotting.  Experiment commands accept
``--parallel`` / ``--workers N`` to fan sweep points out over a process
pool (identical results, less wall-clock) and ``--no-cache`` to disable
in-process result memoization.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core import (
    ReliabilityModel,
    design_targets,
    reliability_ranking,
    run_point,
    run_sweep_sharded,
)
from repro.core.reliability import format_reliability_report
from repro.core.sensitivity import format_sensitivity_report
from repro.experiments import (
    chevron_summary,
    codesign_study,
    figure6_study,
    figure15_study,
    format_frequency_report,
    format_gate_report,
    format_headline_report,
    format_scheduling_report,
    format_swap_report,
    format_table_comparison,
    frequency_crowding_study,
    headline_study,
    reduction_comparison,
    scheduling_study,
    swap_study,
    table1,
    table2,
)
from repro.experiments.swap_study import (
    FIG4_TOPOLOGIES,
    FIG11_TOPOLOGIES,
    FIG12_TOPOLOGIES,
)
from repro.qasm import circuit_to_qasm
from repro.runtime import (
    ExperimentRunner,
    FailurePolicy,
    FaultPlan,
    PersistentResultCache,
    cache_dir_from_env,
    collect_garbage,
    max_bytes_from_env,
    resolve_result_cache,
    segment_stats,
    verify_cache,
)
from repro.snailsim import render_ascii_chevron
from repro.transpiler import (
    Target,
    available_levels,
    available_passes,
    format_metrics_table,
    transpile,
)
from repro.visualization import sweep_to_csv
from repro.workloads import available_workloads, build_workload


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution-runtime options shared by every experiment command."""
    parser.add_argument(
        "--parallel",
        action="store_true",
        default=None,
        help="fan sweep points out over a process pool (REPRO_PARALLEL=1 "
        "sets this by default); results are identical to serial runs",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker-process count for --parallel (default: CPU count or "
        "REPRO_WORKERS)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable in-process memoization of repeated sweep points",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for a disk-backed result cache shared across "
        "processes (REPRO_CACHE_DIR sets the default); repeated runs "
        "skip transpilation for every point already on disk",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a parallel task that runs longer than this "
        "(default: wait forever)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-dispatch a failed/hung parallel task up to N times with "
        "exponential backoff (default: 0)",
    )
    parser.add_argument(
        "--on-poison",
        choices=("quarantine", "raise", "skip"),
        default=None,
        help="what to do with a task that repeatedly crashes its worker: "
        "quarantine it (probe in isolation, then continue without it — "
        "the default), raise, or skip without probing",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan for chaos drills, e.g. "
        "'crash@3;hang@5=0.4;state=/tmp/faults' "
        "(REPRO_FAULT_PLAN sets the default; see docs/robustness.md)",
    )


def _runner_from_args(args: argparse.Namespace) -> ExperimentRunner:
    """Build the experiment runner the parsed runtime options describe.

    The runner is remembered on the namespace so that :func:`main` can
    report cache and fault statistics once the command has finished.
    """
    failure_policy = None
    if any(
        getattr(args, name, None) is not None
        for name in ("task_timeout", "max_retries", "on_poison")
    ):
        failure_policy = FailurePolicy(
            task_timeout=getattr(args, "task_timeout", None),
            max_retries=getattr(args, "max_retries", None) or 0,
            on_poison=getattr(args, "on_poison", None) or "quarantine",
        )
    runner = ExperimentRunner(
        parallel=getattr(args, "parallel", None),
        max_workers=getattr(args, "workers", None),
        result_cache=resolve_result_cache(
            cache_dir=getattr(args, "cache_dir", None),
            no_cache=getattr(args, "no_cache", False),
        ),
        failure_policy=failure_policy,
        fault_plan=FaultPlan.parse(getattr(args, "inject_faults", None)),
    )
    args._runner = runner
    return runner


def _cache_report(args: argparse.Namespace) -> Optional[str]:
    """One status line about the persistent cache, if one was used."""
    runner = getattr(args, "_runner", None)
    if runner is None or not isinstance(runner.result_cache, PersistentResultCache):
        return None
    stats = runner.result_cache.stats()
    return (
        f"result cache [{runner.result_cache.cache_dir}]: "
        f"{stats.hits} memory hits, {stats.disk_hits} disk hits, "
        f"{stats.computed} transpiled"
    )


def _fault_report(args: argparse.Namespace) -> Optional[str]:
    """One status line about absorbed failures, if any occurred."""
    runner = getattr(args, "_runner", None)
    if runner is None or not runner.fault_stats:
        return None
    return runner.fault_stats.describe()


def _add_common_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=("small", "large"), default="small")
    parser.add_argument("--sizes", type=int, nargs="*", default=None)
    parser.add_argument("--workloads", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--csv", default=None, help="write the raw sweep data to a CSV file")
    _add_runtime_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Co-Designed Architectures for "
        "Modular Superconducting Quantum Computers' (HPCA 2023).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    tables_parser = commands.add_parser("tables", help="regenerate Tables 1 and 2")
    _add_runtime_arguments(tables_parser)

    swaps = commands.add_parser("swaps", help="SWAP-count study (Figs. 4, 11, 12)")
    _add_common_sweep_arguments(swaps)

    codesign = commands.add_parser("codesign", help="co-design 2Q study (Figs. 13, 14)")
    _add_common_sweep_arguments(codesign)

    headline = commands.add_parser("headline", help="headline QV ratios (abstract)")
    headline.add_argument("--sizes", type=int, nargs="*", default=None)
    headline.add_argument("--seed", type=int, default=11)
    _add_runtime_arguments(headline)

    sensitivity = commands.add_parser("sensitivity", help="n-root iSWAP study (Fig. 15)")
    sensitivity.add_argument("--seed", type=int, default=2022)
    _add_runtime_arguments(sensitivity)

    chevron = commands.add_parser("chevron", help="SNAIL exchange chevron (Fig. 6)")
    _add_runtime_arguments(chevron)

    frequency = commands.add_parser(
        "frequency", help="frequency-crowding feasibility per (topology, modulator)"
    )
    frequency.add_argument("--scale", choices=("small", "large"), default="small")
    _add_runtime_arguments(frequency)

    schedule = commands.add_parser(
        "schedule", help="duration-aware co-design study (physical pulse lengths)"
    )
    schedule.add_argument("--scale", choices=("small", "large"), default="small")
    schedule.add_argument("--sizes", type=int, nargs="*", default=(8, 12, 16))
    schedule.add_argument("--workloads", nargs="*", default=("QuantumVolume", "GHZ"))
    schedule.add_argument("--seed", type=int, default=5)
    _add_runtime_arguments(schedule)

    reliability = commands.add_parser(
        "reliability", help="wall-clock reliability ranking of the design points"
    )
    reliability.add_argument("workload", choices=available_workloads())
    reliability.add_argument("size", type=int)
    reliability.add_argument("--scale", choices=("small", "large"), default="small")
    reliability.add_argument("--two-qubit-fidelity", type=float, default=0.995)
    reliability.add_argument("--t1-us", type=float, default=100.0)
    reliability.add_argument("--t2-us", type=float, default=100.0)
    reliability.add_argument("--seed", type=int, default=0)
    _add_runtime_arguments(reliability)

    qasm = commands.add_parser("qasm", help="export a workload circuit as OpenQASM 2")
    qasm.add_argument("workload", choices=available_workloads())
    qasm.add_argument("size", type=int)
    qasm.add_argument("--seed", type=int, default=0)
    qasm.add_argument(
        "--transpile-to",
        default=None,
        help="optional topology name; the circuit is transpiled (synthesis mode) before export",
    )
    qasm.add_argument("--basis", default="siswap")
    qasm.add_argument("--scale", choices=("small", "large"), default="small")

    cache = commands.add_parser(
        "cache", help="inspect or garbage-collect a shared result-cache directory"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_gc = cache_commands.add_parser(
        "gc", help="evict records by total-size and/or age budget, oldest first"
    )
    cache_gc.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory to collect (REPRO_CACHE_DIR sets the default)",
    )
    cache_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="keep at most this many bytes of records "
        "(REPRO_CACHE_MAX_BYTES sets the default)",
    )
    cache_gc.add_argument(
        "--max-age-hours",
        type=float,
        default=None,
        help="evict records older than this many hours",
    )
    cache_info = cache_commands.add_parser(
        "info", help="report the record count and total size of a cache directory"
    )
    cache_info.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory to inspect (REPRO_CACHE_DIR sets the default)",
    )
    cache_verify = cache_commands.add_parser(
        "verify",
        help="audit every segment frame, sidecar index and legacy record "
        "(CRC validation); exits non-zero on unrepaired corruption",
    )
    cache_verify.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory to audit (REPRO_CACHE_DIR sets the default)",
    )
    cache_verify.add_argument(
        "--repair",
        action="store_true",
        help="rewrite damaged segments keeping only their valid frames "
        "(dropped records heal as cache misses) and rebuild stale indexes",
    )

    bench = commands.add_parser(
        "bench",
        help="record, report and gate on benchmark trajectories "
        "(BENCH_*.json history)",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    def _add_history_dir(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--history-dir",
            default=None,
            help="bench-history directory (REPRO_BENCH_HISTORY sets the "
            "default; falls back to ./.repro-bench-history)",
        )

    bench_record = bench_commands.add_parser(
        "record",
        help="append a pytest-benchmark artifact to the per-benchmark history",
    )
    bench_record.add_argument("artifact", type=Path, help="BENCH_*.json to record")
    _add_history_dir(bench_record)
    bench_record.add_argument(
        "--sha", default=None, help="git SHA to tag the run with "
        "(default: the artifact's own provenance, then the checkout)"
    )
    bench_record.add_argument(
        "--timestamp", default=None,
        help="run timestamp to record (default: the artifact's datetime field)",
    )
    bench_record.add_argument(
        "--host", default=None,
        help="host tag to record (default: the artifact's machine_info node)",
    )

    bench_report = bench_commands.add_parser(
        "report", help="render the per-benchmark trajectory table"
    )
    _add_history_dir(bench_report)
    bench_report.add_argument(
        "--markdown", action="store_true", help="emit a markdown table"
    )
    bench_report.add_argument(
        "--window", type=_positive_int, default=5,
        help="rolling-median window for the delta column (default: 5)",
    )

    bench_check = bench_commands.add_parser(
        "check",
        help="gate the newest recorded run against the rolling baseline "
        "(non-zero exit on regression or vanished benchmarks)",
    )
    _add_history_dir(bench_check)
    bench_check.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown vs the rolling median "
        "(default: 0.25 — the history is same-host, so tighter than the "
        "cross-machine bench_compare default)",
    )
    bench_check.add_argument(
        "--window", type=_positive_int, default=5,
        help="rolling-baseline window: median of the last N prior entries "
        "per benchmark (default: 5)",
    )

    bench_compare_parser = bench_commands.add_parser(
        "compare",
        help="one-shot artifact-vs-baseline diff (same core as "
        "scripts/bench_compare.py)",
    )
    bench_compare_parser.add_argument("artifact", type=Path)
    bench_compare_parser.add_argument(
        "--baseline", type=Path,
        default=Path("benchmarks/baselines/smoke.json"),
        help="baseline JSON (default: benchmarks/baselines/smoke.json)",
    )
    bench_compare_parser.add_argument("--tolerance", type=float, default=0.5)
    bench_compare_parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on regressions, vanished benchmarks or an "
        "empty current∩baseline overlap",
    )
    bench_compare_parser.add_argument(
        "--write-baseline", action="store_true",
        help="overwrite the baseline with the artifact's means (plus git "
        "SHA / date / rounds provenance) and exit",
    )

    serve = commands.add_parser(
        "serve",
        help="run the persistent compilation server (warm pool + resident cache)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8537,
        help="TCP port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="process-pool size for the resident runner (default: CPU count "
        "or REPRO_WORKERS)",
    )
    serve.add_argument(
        "--serial",
        action="store_true",
        help="run the resident runner without a process pool",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the resident shared result cache "
        "(REPRO_CACHE_DIR sets the default)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching entirely",
    )
    serve.add_argument(
        "--queue-size",
        type=_positive_int,
        default=64,
        help="bound on queued requests; a full queue answers 503",
    )

    sweep = commands.add_parser(
        "sweep",
        help="checkpointed grid sweep: deterministic shards with --resume "
        "recomputing only what is missing",
    )
    sweep.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory for the shard manifest and per-shard record files",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue an existing checkpoint (recompute only missing "
        "shards); without it an existing checkpoint is an error",
    )
    sweep.add_argument(
        "--shard-points",
        type=_positive_int,
        default=256,
        help="points per shard — the granularity of crash loss and of "
        "progress reporting (default: 256)",
    )
    sweep.add_argument(
        "--workloads", nargs="*", default=("QuantumVolume", "GHZ"),
        help="workload names (default: QuantumVolume GHZ)",
    )
    sweep.add_argument(
        "--sizes", type=int, nargs="*", default=(4, 8, 12),
        help="circuit widths (default: 4 8 12)",
    )
    sweep.add_argument(
        "--topologies",
        nargs="*",
        default=None,
        help="topology names (default: the scale's co-design points)",
    )
    sweep.add_argument("--basis", default="siswap")
    sweep.add_argument("--scale", choices=("small", "large"), default="small")
    sweep.add_argument(
        "--layout",
        choices=available_passes("layout"),
        default=None,
        help="layout pass (default: the level preset)",
    )
    sweep.add_argument(
        "--routing",
        choices=available_passes("routing"),
        default=None,
        help="routing pass (default: the level preset)",
    )
    sweep.add_argument(
        "--level", type=int, choices=available_levels(), default=1
    )
    sweep.add_argument("--seed", type=int, default=11)
    sweep.add_argument("--csv", default=None, help="write the sweep records to a CSV file")
    _add_runtime_arguments(sweep)

    run = commands.add_parser("run", help="transpile one workload on one design point")
    run.add_argument("workload", choices=available_workloads())
    run.add_argument("size", type=int)
    run.add_argument("--topology", default="Corral1,1")
    run.add_argument("--basis", default="siswap")
    run.add_argument("--scale", choices=("small", "large"), default="small")
    # Choices are enumerated from the transpiler's pass registry, so a pass
    # registered via @register_pass becomes addressable here with no CLI
    # change, and a bad name errors listing the registered options.
    run.add_argument(
        "--routing",
        choices=available_passes("routing"),
        default=None,
        help="routing pass (registered: %(choices)s; default: the level preset)",
    )
    run.add_argument(
        "--layout",
        choices=available_passes("layout"),
        default=None,
        help="layout pass (registered: %(choices)s; default: the level preset)",
    )
    run.add_argument(
        "--level",
        type=int,
        choices=available_levels(),
        default=1,
        help="optimization level: 0 fastest, 1 paper flow (default), "
        "2 adds gate cancellation, 3 adds noise-aware routing + scheduling",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--timing",
        action="store_true",
        help="append a per-stage wall-time report for the compilation",
    )

    return parser


def _format_stage_times(stage_times) -> str:
    """Fixed-width per-stage timing table (the CLI ``--timing`` report)."""
    total = sum(stage_times.values()) or 1.0
    lines = [f"{'stage':<14}{'time [ms]':>12}{'share':>8}", "-" * 34]
    for stage, elapsed in stage_times.items():  # insertion order = run order
        lines.append(
            f"{stage:<14}{1e3 * elapsed:>12.2f}{100 * elapsed / total:>7.1f}%"
        )
    lines.append(f"{'total':<14}{1e3 * sum(stage_times.values()):>12.2f}{'':>8}")
    return "\n".join(lines)


def _command_tables(args: argparse.Namespace) -> str:
    runner = _runner_from_args(args)
    return "\n\n".join(
        [
            format_table_comparison(table1(runner=runner), "Table 1 (measured | paper)"),
            format_table_comparison(table2(runner=runner), "Table 2 (measured | paper)"),
        ]
    )


def _command_swaps(args: argparse.Namespace) -> str:
    topologies = FIG11_TOPOLOGIES if args.scale == "small" else FIG12_TOPOLOGIES
    if args.scale == "large" and args.workloads is None:
        topologies = FIG4_TOPOLOGIES
    result = swap_study(
        args.scale,
        topologies,
        workloads=args.workloads,
        sizes=args.sizes,
        seed=args.seed,
        runner=_runner_from_args(args),
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(sweep_to_csv(result))
    return format_swap_report(result, "total_swaps") + "\n" + format_swap_report(
        result, "critical_swaps"
    )


def _command_codesign(args: argparse.Namespace) -> str:
    result = codesign_study(
        args.scale,
        workloads=args.workloads,
        sizes=args.sizes,
        seed=args.seed,
        runner=_runner_from_args(args),
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(sweep_to_csv(result))
    return format_gate_report(result, "total_2q") + "\n" + format_gate_report(
        result, "critical_2q"
    )


def _command_headline(args: argparse.Namespace) -> str:
    ratios = headline_study(
        sizes=args.sizes, seed=args.seed, runner=_runner_from_args(args)
    )
    return format_headline_report(ratios)


def _command_sensitivity(args: argparse.Namespace) -> str:
    result = figure15_study(seed=args.seed, runner=_runner_from_args(args))
    report = [format_sensitivity_report(result), ""]
    for root, values in sorted(reduction_comparison(result).items()):
        report.append(
            f"n={root}: measured reduction {100 * values['measured']:+.1f}% "
            f"(paper {100 * values['paper']:.0f}%)"
        )
    return "\n".join(report)


def _command_chevron(args: argparse.Namespace) -> str:
    data = figure6_study(runner=_runner_from_args(args))
    return chevron_summary(data) + "\n\n" + render_ascii_chevron(data)


def _command_frequency(args: argparse.Namespace) -> str:
    return format_frequency_report(
        frequency_crowding_study(scale=args.scale, runner=_runner_from_args(args))
    )


def _command_schedule(args: argparse.Namespace) -> str:
    rows = scheduling_study(
        scale=args.scale,
        workloads=tuple(args.workloads),
        sizes=tuple(args.sizes),
        seed=args.seed,
        runner=_runner_from_args(args),
    )
    return format_scheduling_report(rows)


def _command_reliability(args: argparse.Namespace) -> str:
    model = ReliabilityModel(
        two_qubit_fidelity=args.two_qubit_fidelity, t1_us=args.t1_us, t2_us=args.t2_us
    )
    targets = list(design_targets(args.scale).values())
    ranking = reliability_ranking(
        targets,
        args.workload,
        args.size,
        model=model,
        seed=args.seed,
        runner=_runner_from_args(args),
    )
    return format_reliability_report(ranking)


def _command_qasm(args: argparse.Namespace) -> str:
    circuit = build_workload(args.workload, args.size, seed=args.seed)
    if args.transpile_to is not None:
        target = Target.from_names(
            args.transpile_to,
            args.basis,
            scale=args.scale,
            name=f"{args.transpile_to}-{args.basis}",
        )
        circuit = transpile(circuit, target, translation_mode="synthesis").circuit
    return circuit_to_qasm(circuit)


def _command_cache(args: argparse.Namespace) -> str:
    directory = args.cache_dir if args.cache_dir is not None else cache_dir_from_env()
    if directory is None:
        raise SystemExit(
            "repro cache: no cache directory given (use --cache-dir or REPRO_CACHE_DIR)"
        )
    if args.cache_command == "info":
        # A pure read-only scan: segment_stats never rewrites, truncates or
        # sweeps anything, so `info` is safe to run beside a live writer.
        resolved = Path(directory).expanduser().resolve()
        report = segment_stats(resolved) if resolved.is_dir() else None
        if report is None or report.live_records == 0:
            # An empty or not-yet-created directory deserves an explicit
            # answer (with the path actually inspected), not a bare zero
            # report that reads like a formatting bug.
            state = "no cache directory" if not resolved.is_dir() else "empty cache"
            return f"result cache [{resolved}]: {state} (0 records)"
        return f"result cache [{resolved}]:\n{report.describe()}"
    if args.cache_command == "verify":
        resolved = Path(directory).expanduser().resolve()
        if not resolved.is_dir():
            return f"cache verify [{resolved}]: no cache directory"
        # Without --repair this is a pure read-only audit (safe beside
        # readers); with it, damaged segments are rewritten like GC does.
        report = verify_cache(resolved, repair=args.repair)
        body = f"cache verify [{resolved}]:\n{report.describe()}"
        if not report.clean and not args.repair:
            raise SystemExit(
                body + "\nrun again with --repair to drop the corrupt frames"
            )
        return body
    max_bytes = args.max_bytes if args.max_bytes is not None else max_bytes_from_env()
    max_age = None if args.max_age_hours is None else args.max_age_hours * 3600.0
    # Without an eviction policy `cache gc` is still useful: it compacts
    # dead bytes out of the segments and migrates legacy records.
    report = collect_garbage(
        directory, max_bytes=max_bytes, max_age_seconds=max_age, compact=True
    )
    return f"cache gc [{directory}]: {report.describe()}"


def _command_bench(args: argparse.Namespace) -> str:
    # Imported lazily like the server: the bench verbs are tooling around
    # the benchmark harness and pull in nothing the hot paths need.
    from repro.bench import (
        DEFAULT_HISTORY_DIR,
        BenchHistory,
        MalformedArtifactError,
        format_comparison,
        format_report,
        history_dir_from_env,
        run_compare,
    )

    if args.bench_command == "compare":
        # The one-shot diff shares its whole flow (and exit-code contract)
        # with scripts/bench_compare.py via run_compare.
        code = run_compare(
            args.artifact,
            args.baseline,
            tolerance=args.tolerance,
            strict=args.strict,
            write_baseline_instead=args.write_baseline,
        )
        if code:
            raise SystemExit(code)
        return ""

    directory = (
        args.history_dir
        if args.history_dir is not None
        else (history_dir_from_env() or DEFAULT_HISTORY_DIR)
    )
    history = BenchHistory(directory)

    if args.bench_command == "record":
        try:
            manifest = history.record(
                args.artifact,
                git_sha=args.sha,
                timestamp=args.timestamp,
                host=args.host,
            )
        except MalformedArtifactError as error:
            print(f"repro bench record: {error}", file=sys.stderr)
            raise SystemExit(2) from error
        sha = (manifest.get("git_sha") or "unknown")[:12]
        return (
            f"recorded run #{manifest['run']}: {manifest['benchmarks']} "
            f"benchmark(s) from {args.artifact.name} "
            f"(sha={sha} host={manifest.get('host') or 'unknown'}) "
            f"-> {history.root}"
        )

    if args.bench_command == "report":
        return format_report(history, markdown=args.markdown, window=args.window)

    # bench check: gate the newest run against the rolling baseline.
    check = history.check(tolerance=args.tolerance, window=args.window)
    lines = [
        f"bench check [{history.root}]: window={check.window}, "
        f"tolerance ±{args.tolerance:.0%}"
    ]
    lines.extend(check.notes)
    if check.comparison is not None:
        latest = check.latest_run or {}
        sha = (latest.get("git_sha") or "unknown")[:12]
        lines.append(
            format_comparison(
                check.comparison,
                current_label=f"run #{latest.get('run', '?')} (sha={sha})",
                baseline_label=f"rolling median of last {check.window} runs",
            )
        )
    if check.insufficient:
        lines.append(
            "first-seen benchmarks (no prior series, not gated): "
            + ", ".join(check.insufficient)
        )
    body = "\n".join(lines)
    if check.failed:
        raise SystemExit(
            body + "\nbench check FAILED: " + "; ".join(check.violations)
        )
    return body


def _command_sweep(args: argparse.Namespace) -> str:
    from repro.runtime.checkpoint import CheckpointMismatch

    if args.topologies:
        targets = [
            Target.from_names(
                name, args.basis, scale=args.scale, name=f"{name}-{args.basis}"
            )
            for name in args.topologies
        ]
    else:
        targets = list(design_targets(args.scale).values())
    statuses = {"restored": 0, "computed": 0}

    def _shard_progress(index: int, total: int, status: str, points: int) -> None:
        statuses[status] = statuses.get(status, 0) + 1
        print(
            f"shard {index + 1}/{total}: {status} ({points} points)",
            file=sys.stderr,
        )

    try:
        result = run_sweep_sharded(
            args.workloads,
            args.sizes,
            targets,
            checkpoint_dir=args.checkpoint_dir,
            seed=args.seed,
            layout_method=args.layout,
            routing_method=args.routing,
            optimization_level=args.level,
            shard_points=args.shard_points,
            resume=args.resume,
            shard_progress=_shard_progress,
            runner=_runner_from_args(args),
        )
    except CheckpointMismatch as error:
        raise SystemExit(f"repro sweep: {error}") from error
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(sweep_to_csv(result))
    extras = ""
    if statuses.get("retried"):
        extras += f", {statuses['retried']} retried"
    if result.failed_points:
        extras += f", {len(result.failed_points)} failed"
    body = (
        f"sweep complete: {len(result)} points "
        f"({statuses['restored']} shards restored, "
        f"{statuses['computed']} computed{extras}) [{args.checkpoint_dir}]"
    )
    if result.failed_points:
        labels = "; ".join(str(point.get("label")) for point in result.failed_points)
        body += (
            f"\nfailed points (quarantined): {labels}"
            f"\nrecorded in {args.checkpoint_dir}/failures.json"
            " -- rerun with --resume to retry them"
        )
    return body


def _command_serve(args: argparse.Namespace) -> str:
    # Imported lazily: the server pulls in asyncio machinery no other
    # command needs, and keeping it out of module import keeps `repro run`
    # startup unchanged.
    from repro.server import run_server

    return run_server(
        host=args.host,
        port=args.port,
        parallel=not args.serial,
        workers=args.workers,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        queue_size=args.queue_size,
    )


def _command_run(args: argparse.Namespace) -> str:
    target = Target.from_names(
        args.topology, args.basis, scale=args.scale, name=f"{args.topology}-{args.basis}"
    )
    metrics = run_point(
        args.workload,
        args.size,
        target,
        seed=args.seed,
        layout_method=args.layout,
        routing_method=args.routing,
        optimization_level=args.level,
    )
    report = format_metrics_table([metrics])
    if args.timing:
        stage_times = metrics.extra.get("stage_times") or {}
        report += "\n\n" + _format_stage_times(stage_times)
    return report


_COMMANDS = {
    "tables": _command_tables,
    "swaps": _command_swaps,
    "codesign": _command_codesign,
    "headline": _command_headline,
    "sensitivity": _command_sensitivity,
    "chevron": _command_chevron,
    "frequency": _command_frequency,
    "schedule": _command_schedule,
    "reliability": _command_reliability,
    "qasm": _command_qasm,
    "bench": _command_bench,
    "cache": _command_cache,
    "sweep": _command_sweep,
    "serve": _command_serve,
    "run": _command_run,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    cache_line = _cache_report(args)
    if cache_line is not None:
        print(cache_line, file=sys.stderr)
    fault_line = _fault_report(args)
    if fault_line is not None:
        print(fault_line, file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
