"""Core co-design layer: backends, design points, fidelity models, sweeps."""

from repro.core.backend import Backend, make_backend
from repro.core.codesign import (
    LARGE_DESIGN_POINTS,
    SMALL_DESIGN_POINTS,
    CodesignPoint,
    design_backends,
    design_points,
    design_targets,
)
from repro.core.fidelity import (
    FidelityModel,
    best_total_fidelity,
    compare_designs,
    decomposition_total_fidelity,
    nth_root_pulse_fidelity,
)
from repro.core.noise import NoiseModel
from repro.core.pipeline import (
    SweepResult,
    run_point,
    run_sweep,
    run_sweep_sharded,
    sweep_spec_digest,
)
from repro.core.reliability import (
    ReliabilityEstimate,
    ReliabilityModel,
    durations_for_backend,
    format_reliability_report,
    reliability_ranking,
    simulated_reliability_check,
)
from repro.core.sensitivity import (
    RootStudyResult,
    SensitivityStudyResult,
    format_sensitivity_report,
    pulse_duration_sensitivity_study,
)
from repro.core.statistics import (
    MetricSummary,
    compare_backends,
    format_comparison,
    ordering_stability,
    seed_sweep,
)

__all__ = [
    "Backend",
    "make_backend",
    "LARGE_DESIGN_POINTS",
    "SMALL_DESIGN_POINTS",
    "CodesignPoint",
    "design_backends",
    "design_points",
    "design_targets",
    "FidelityModel",
    "best_total_fidelity",
    "compare_designs",
    "decomposition_total_fidelity",
    "nth_root_pulse_fidelity",
    "NoiseModel",
    "ReliabilityEstimate",
    "ReliabilityModel",
    "durations_for_backend",
    "format_reliability_report",
    "reliability_ranking",
    "simulated_reliability_check",
    "SweepResult",
    "run_point",
    "run_sweep",
    "run_sweep_sharded",
    "sweep_spec_digest",
    "RootStudyResult",
    "SensitivityStudyResult",
    "format_sensitivity_report",
    "pulse_duration_sensitivity_study",
    "MetricSummary",
    "compare_backends",
    "format_comparison",
    "ordering_stability",
    "seed_sweep",
]
