"""Backend: legacy (topology, native basis gate) machine description.

.. deprecated::
    :class:`Backend` is superseded by :class:`repro.transpiler.target.
    Target`, which additionally carries gate durations and optional noise
    rates and feeds the staged compilation pipeline.  ``Backend`` remains
    as a thin shim — construction and attribute access are unchanged, and
    :meth:`Backend.transpile` still works but emits a
    ``DeprecationWarning`` and delegates to the new staged ``transpile``
    at optimization level 1 (the paper's Fig. 10 flow, bit-identical to
    the old behaviour).  Migrate with ``backend.to_target()`` or build
    targets directly (``Target.from_names``, ``make_target``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.decomposition.basis import BasisGateSpec, get_basis
from repro.topology.coupling import CouplingMap
from repro.topology.analysis import TopologyProperties, topology_properties
from repro.transpiler.compile import TranspileResult, transpile
from repro.transpiler.target import Target


@dataclass
class Backend:
    """A machine design point: topology + native two-qubit basis (legacy)."""

    coupling_map: CouplingMap
    basis: BasisGateSpec
    name: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.name is None:
            self.name = f"{self.coupling_map.name}-{self.basis.name}"

    # -- structure -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return self.coupling_map.num_qubits

    def properties(self) -> TopologyProperties:
        """Graph-structural properties of the topology (Tables 1-2 row)."""
        return topology_properties(self.coupling_map)

    # -- migration -----------------------------------------------------------

    def to_target(self) -> Target:
        """The equivalent :class:`Target` (the supported design-point type)."""
        return Target(
            coupling_map=self.coupling_map,
            basis=self.basis,
            name=self.name,
            description=self.description,
        )

    # -- compilation -----------------------------------------------------------

    def transpile(
        self,
        circuit: QuantumCircuit,
        layout_method: str = "dense",
        routing_method: str = "sabre",
        translation_mode: str = "count",
        seed: int = 0,
    ) -> TranspileResult:
        """Transpile a circuit onto this backend (paper Fig. 10 flow).

        .. deprecated:: use ``transpile(circuit, backend.to_target(), ...)``.
        """
        warnings.warn(
            "Backend.transpile is deprecated; build a Target "
            "(backend.to_target() or Target.from_names) and call "
            "repro.transpiler.transpile(circuit, target, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return transpile(
            circuit,
            self.to_target(),
            layout_method=layout_method,
            routing_method=routing_method,
            translation_mode=translation_mode,
            seed=seed,
            optimization_level=1,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Backend(name={self.name!r}, qubits={self.num_qubits}, "
            f"basis={self.basis.name!r})"
        )


def make_backend(
    coupling_map: CouplingMap, basis_name: str, name: Optional[str] = None
) -> Backend:
    """Convenience constructor from a topology and a basis name (legacy).

    New code should use :func:`repro.transpiler.target.make_target`.
    """
    return Backend(coupling_map=coupling_map, basis=get_basis(basis_name), name=name)
