"""Backend: a (topology, native basis gate) machine description.

A backend bundles the two co-designed ingredients the paper studies — the
coupling topology produced by a modulator's connectivity and the native
basis gate produced by its physics — together with a transpile entry
point, so that a design point such as "Corral(1,1) + sqrt(iSWAP)" or
"Heavy-Hex + CNOT" is a single object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.decomposition.basis import BasisGateSpec, get_basis
from repro.topology.coupling import CouplingMap
from repro.topology.analysis import TopologyProperties, topology_properties
from repro.transpiler.compile import TranspileResult, transpile


@dataclass
class Backend:
    """A machine design point: topology + native two-qubit basis."""

    coupling_map: CouplingMap
    basis: BasisGateSpec
    name: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.name is None:
            self.name = f"{self.coupling_map.name}-{self.basis.name}"

    # -- structure -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return self.coupling_map.num_qubits

    def properties(self) -> TopologyProperties:
        """Graph-structural properties of the topology (Tables 1-2 row)."""
        return topology_properties(self.coupling_map)

    # -- compilation -----------------------------------------------------------

    def transpile(
        self,
        circuit: QuantumCircuit,
        layout_method: str = "dense",
        routing_method: str = "sabre",
        translation_mode: str = "count",
        seed: int = 0,
    ) -> TranspileResult:
        """Transpile a circuit onto this backend (paper Fig. 10 flow)."""
        return transpile(
            circuit,
            self.coupling_map,
            basis=self.basis,
            layout_method=layout_method,
            routing_method=routing_method,
            translation_mode=translation_mode,
            seed=seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Backend(name={self.name!r}, qubits={self.num_qubits}, "
            f"basis={self.basis.name!r})"
        )


def make_backend(
    coupling_map: CouplingMap, basis_name: str, name: Optional[str] = None
) -> Backend:
    """Convenience constructor from a topology and a basis name."""
    return Backend(coupling_map=coupling_map, basis=get_basis(basis_name), name=name)
