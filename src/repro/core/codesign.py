"""Co-design points: the (topology, basis) pairs the paper evaluates.

The central claim of the paper is that gate and topology must be chosen
*together* because both are consequences of the modulator.  The design
points below are the pairings used in Figs. 13 and 14:

* Heavy-Hex + CNOT       (IBM: CR modulator),
* Square-Lattice + SYC   (Google: tunable-coupler fSim),
* Tree / Tree-RR / Hypercube / Corral + sqrt(iSWAP)  (SNAIL modulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.backend import Backend
from repro.decomposition.basis import get_basis
from repro.topology import registry as topo_registry
from repro.transpiler.target import Target


@dataclass(frozen=True)
class CodesignPoint:
    """A named (topology, basis) pairing."""

    label: str
    topology: str
    basis: str

    def target(self, scale: str = "small") -> Target:
        """Materialise the design point at the requested machine scale."""
        coupling_map = topo_registry.get_topology(self.topology, scale=scale)
        return Target(
            coupling_map=coupling_map,
            basis=get_basis(self.basis),
            name=self.label,
            description=f"{self.topology} topology with {self.basis} basis gate",
        )

    def backend(self, scale: str = "small") -> Backend:
        """Legacy ``Backend`` view of the design point (prefer :meth:`target`)."""
        coupling_map = topo_registry.get_topology(self.topology, scale=scale)
        return Backend(
            coupling_map=coupling_map,
            basis=get_basis(self.basis),
            name=self.label,
            description=f"{self.topology} topology with {self.basis} basis gate",
        )


#: Fig. 13 legend (16-20 qubit machines).
SMALL_DESIGN_POINTS: List[CodesignPoint] = [
    CodesignPoint("Heavy-Hex-CX", topo_registry.HEAVY_HEX, "cx"),
    CodesignPoint("Square-Lattice-SYC", topo_registry.SQUARE_LATTICE, "syc"),
    CodesignPoint("Tree-siswap", topo_registry.TREE, "siswap"),
    CodesignPoint("Tree-RR-siswap", topo_registry.TREE_RR, "siswap"),
    CodesignPoint("Hypercube-siswap", topo_registry.HYPERCUBE, "siswap"),
    CodesignPoint("Corral1,1-siswap", topo_registry.CORRAL_1_1, "siswap"),
]

#: Fig. 14 legend (84-qubit machines).
LARGE_DESIGN_POINTS: List[CodesignPoint] = [
    CodesignPoint("Heavy-Hex-CX", topo_registry.HEAVY_HEX, "cx"),
    CodesignPoint("Square-Lattice-SYC", topo_registry.SQUARE_LATTICE, "syc"),
    CodesignPoint("Tree-siswap", topo_registry.TREE, "siswap"),
    CodesignPoint("Tree-RR-siswap", topo_registry.TREE_RR, "siswap"),
    CodesignPoint("Hypercube-siswap", topo_registry.HYPERCUBE, "siswap"),
]


def design_points(scale: str = "small") -> List[CodesignPoint]:
    """Design points evaluated at a given machine scale."""
    return list(SMALL_DESIGN_POINTS if scale == "small" else LARGE_DESIGN_POINTS)


def design_targets(scale: str = "small") -> Dict[str, Target]:
    """Materialised targets keyed by design-point label."""
    return {point.label: point.target(scale) for point in design_points(scale)}


def design_backends(scale: str = "small") -> Dict[str, Backend]:
    """Materialised legacy backends keyed by label (prefer :func:`design_targets`)."""
    return {point.label: point.backend(scale) for point in design_points(scale)}
