"""Fidelity models of the paper (Eqs. 12-13) and circuit-level estimates.

Two error regimes motivate the paper's twin metrics (Section 3.1):

* control-imperfection dominated: every executed gate contributes error,
  so *total gate count* is the figure of merit;
* decoherence dominated: error accrues with time, so *circuit duration*
  (critical-path pulse count) is the figure of merit.

For the pulse-duration sensitivity study the paper assumes decoherence
scales linearly with pulse length (Eq. 12): a basis pulse that is ``1/n``
as long as an iSWAP has ``1/n`` of its infidelity.  The best achievable
total fidelity of a decomposition with ``k`` pulses is then the product of
the approximate-decomposition fidelity and the per-pulse decoherence
fidelity raised to ``k`` (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.transpiler.metrics import TranspileMetrics


def nth_root_pulse_fidelity(iswap_fidelity: float, n: int) -> float:
    """Paper Eq. 12: ``Fb(n-root iSWAP) = 1 - (1 - Fb(iSWAP)) / n``."""
    if n < 1:
        raise ValueError("the root index must be a positive integer")
    if not 0.0 <= iswap_fidelity <= 1.0:
        raise ValueError("fidelity must lie in [0, 1]")
    return 1.0 - (1.0 - iswap_fidelity) / n


def decomposition_total_fidelity(
    decomposition_fidelity: float, pulse_fidelity: float, applications: int
) -> float:
    """Paper Eq. 13 integrand: ``F_d * (F_b)^k`` for a k-pulse template."""
    if applications < 0:
        raise ValueError("the number of applications cannot be negative")
    return float(decomposition_fidelity * pulse_fidelity ** applications)


def best_total_fidelity(
    candidates: Iterable[Tuple[int, float]], pulse_fidelity: float
) -> Tuple[int, float]:
    """Paper Eq. 13: maximise ``F_d(k) * Fb^k`` over template sizes ``k``.

    Args:
        candidates: pairs ``(k, decomposition_fidelity_at_k)``.
        pulse_fidelity: per-pulse decoherence fidelity ``F_b``.

    Returns:
        ``(best_k, best_total_fidelity)``.
    """
    best_k = -1
    best_value = -np.inf
    for applications, decomposition_fidelity in candidates:
        value = decomposition_total_fidelity(
            decomposition_fidelity, pulse_fidelity, applications
        )
        if value > best_value:
            best_value = value
            best_k = int(applications)
    if best_k < 0:
        raise ValueError("no candidate template sizes were supplied")
    return best_k, float(best_value)


@dataclass(frozen=True)
class FidelityModel:
    """Uniform-fidelity machine model used to rank transpiled circuits.

    The paper assumes all gates have uniform fidelity (Section 5) and uses
    gate counts / durations as reliability surrogates; this model turns
    those surrogates into explicit success-probability estimates so the
    examples can report end-to-end numbers.

    Attributes:
        two_qubit_fidelity: per-two-qubit-gate fidelity (1Q gates are free).
        decoherence_per_pulse: per-critical-path-pulse fidelity factor
            capturing idle decoherence along the longest path.
    """

    two_qubit_fidelity: float = 0.995
    decoherence_per_pulse: float = 0.999

    def gate_limited(self, metrics: TranspileMetrics) -> float:
        """Success estimate when control error dominates (count regime)."""
        return float(self.two_qubit_fidelity ** metrics.total_2q)

    def time_limited(self, metrics: TranspileMetrics) -> float:
        """Success estimate when decoherence dominates (duration regime)."""
        return float(self.decoherence_per_pulse ** metrics.weighted_duration
                     if metrics.weighted_duration
                     else self.decoherence_per_pulse ** metrics.critical_2q)

    def combined(self, metrics: TranspileMetrics) -> float:
        """Product of the two regimes (a pessimistic overall estimate)."""
        return self.gate_limited(metrics) * self.time_limited(metrics)


def compare_designs(
    metrics: Sequence[TranspileMetrics], model: FidelityModel | None = None
) -> Sequence[Tuple[str, float]]:
    """Rank design points by the combined fidelity estimate (best first)."""
    model = model or FidelityModel()
    ranked = sorted(
        ((f"{m.topology}+{m.basis}", model.combined(m)) for m in metrics),
        key=lambda item: -item[1],
    )
    return ranked
