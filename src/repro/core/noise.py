"""Heterogeneous noise model (an extension beyond the paper's uniform model).

The paper deliberately assumes uniform gate fidelity (Section 5) and uses
gate counts / critical-path pulse counts as reliability surrogates.  Real
devices have edge-to-edge fidelity variation, and one natural question the
paper leaves open is whether the co-design conclusions survive that
variation.  :class:`NoiseModel` supports that study:

* every coupling edge carries its own two-qubit gate fidelity,
* idle decoherence is charged per unit of critical-path pulse duration,
* :meth:`circuit_success_probability` turns a transpiled (physical)
  circuit into an estimated success probability.

The ``corral-scaling`` and reliability ablations in the benchmark suite
use this model; the paper's own numbers are reproduced with the uniform
:class:`~repro.core.fidelity.FidelityModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.topology.coupling import CouplingMap

Edge = Tuple[int, int]


@dataclass
class NoiseModel:
    """Per-edge two-qubit fidelities plus an idle-decoherence rate.

    Attributes:
        edge_fidelity: mapping from (sorted) physical edge to the fidelity
            of one native two-qubit gate on that edge.
        default_fidelity: fidelity assumed for edges not in the map.
        idle_fidelity_per_pulse: multiplicative fidelity factor charged per
            unit of pulse-duration-weighted critical path (decoherence).
    """

    edge_fidelity: Dict[Edge, float] = field(default_factory=dict)
    default_fidelity: float = 0.995
    idle_fidelity_per_pulse: float = 0.999

    # -- constructors ----------------------------------------------------------

    @classmethod
    def uniform(
        cls, fidelity: float = 0.995, idle_fidelity_per_pulse: float = 0.999
    ) -> "NoiseModel":
        """Uniform model equivalent to the paper's assumption."""
        return cls(
            edge_fidelity={},
            default_fidelity=fidelity,
            idle_fidelity_per_pulse=idle_fidelity_per_pulse,
        )

    @classmethod
    def random(
        cls,
        coupling_map: CouplingMap,
        mean_fidelity: float = 0.995,
        spread: float = 0.003,
        idle_fidelity_per_pulse: float = 0.999,
        seed: int = 0,
    ) -> "NoiseModel":
        """Sample edge fidelities around ``mean_fidelity`` (clipped to [0.5, 1])."""
        rng = np.random.default_rng(seed)
        edge_fidelity = {
            tuple(sorted(edge)): float(
                np.clip(rng.normal(mean_fidelity, spread), 0.5, 1.0)
            )
            for edge in coupling_map.edges()
        }
        return cls(
            edge_fidelity=edge_fidelity,
            default_fidelity=mean_fidelity,
            idle_fidelity_per_pulse=idle_fidelity_per_pulse,
        )

    # -- queries -------------------------------------------------------------------

    def fidelity(self, qubit_a: int, qubit_b: int) -> float:
        """Two-qubit gate fidelity on a physical edge."""
        return self.edge_fidelity.get(tuple(sorted((qubit_a, qubit_b))), self.default_fidelity)

    def fidelity_matrix(self, coupling_map: CouplingMap) -> np.ndarray:
        """Fidelity-weighted adjacency matrix of a device (non-edges are 0).

        ``fidelity_matrix(device)[a, b]`` answers :meth:`fidelity` for
        coupled pairs without a dict lookup — the form the vectorized
        noise-aware layout scorer consumes.
        """
        n = coupling_map.num_qubits
        matrix = np.zeros((n, n))
        for a, b in coupling_map.edges():
            matrix[a, b] = matrix[b, a] = self.fidelity(a, b)
        return matrix

    def average_fidelity(self) -> float:
        """Mean edge fidelity (default when the map is empty)."""
        if not self.edge_fidelity:
            return self.default_fidelity
        return float(np.mean(list(self.edge_fidelity.values())))

    def worst_edge(self) -> Optional[Edge]:
        """The lowest-fidelity edge, if any edge-specific value exists."""
        if not self.edge_fidelity:
            return None
        return min(self.edge_fidelity, key=self.edge_fidelity.get)

    # -- circuit-level estimate -------------------------------------------------------

    def circuit_success_probability(self, circuit: QuantumCircuit) -> float:
        """Estimated success probability of a transpiled (physical) circuit.

        The estimate multiplies the per-edge fidelity of every two-qubit
        instruction (single-qubit gates are treated as perfect, as in the
        paper) with an idle-decoherence factor per unit of the circuit's
        pulse-duration-weighted critical path.
        """
        gate_factor = 1.0
        for instruction in circuit:
            if instruction.is_two_qubit:
                gate_factor *= self.fidelity(*instruction.qubits)
        duration = circuit.weighted_duration()
        idle_factor = self.idle_fidelity_per_pulse ** duration
        return float(gate_factor * idle_factor)

    def gate_error_budget(self, circuit: QuantumCircuit) -> Dict[Edge, float]:
        """Total infidelity contributed by each edge (diagnostic helper)."""
        budget: Dict[Edge, float] = {}
        for instruction in circuit:
            if not instruction.is_two_qubit:
                continue
            edge = tuple(sorted(instruction.qubits))
            budget[edge] = budget.get(edge, 0.0) + (1.0 - self.fidelity(*edge))
        return budget
