"""Sweep runner: transpile workload grids over design points, collect metrics.

This is the programmatic equivalent of the paper's experimental flow
(Fig. 10) applied over a grid of circuit sizes, workloads and design
points; the experiment modules in :mod:`repro.experiments` are thin
wrappers that pick the grids matching each figure.  Design points are
:class:`~repro.transpiler.target.Target` objects (legacy ``Backend``
bundles are adapted transparently), and the transpiler configuration —
layout / routing pass names and the staged ``optimization_level`` — is
threaded through every point and into the result-cache key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.transpiler.compile import transpile
from repro.transpiler.metrics import TranspileMetrics
from repro.transpiler.target import Target
from repro.workloads.registry import build_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runner import ExperimentRunner


@dataclass
class SweepResult:
    """A flat collection of per-point metrics with grouping helpers.

    ``failed_points`` names the points that were quarantined/skipped by
    the runner's failure policy instead of producing a record (each entry
    at least carries a ``label``); a fault-free sweep leaves it empty.
    """

    records: List[TranspileMetrics] = field(default_factory=list)
    failed_points: List[Dict[str, object]] = field(default_factory=list)

    def add(self, metrics: TranspileMetrics) -> None:
        """Append one measurement."""
        self.records.append(metrics)

    def filter(self, **criteria) -> "SweepResult":
        """Records whose fields match all keyword criteria.

        Matching goes through ``record.as_dict()`` — exactly like
        :meth:`series` and :meth:`average` — so flattened ``extra`` fields
        (``workload``, ``backend``, ``duration_ns``, ...) are filterable
        too, not only dataclass attributes.
        """
        selected = []
        for record in self.records:
            data = record.as_dict()
            if all(data.get(key) == value for key, value in criteria.items()):
                selected.append(record)
        return SweepResult(selected)

    def series(self, group_by: str, x_field: str, y_field: str) -> Dict[str, List[tuple]]:
        """Build plot-ready series: ``{group: [(x, y), ...]}`` sorted by x."""
        series: Dict[str, List[tuple]] = {}
        for record in self.records:
            data = record.as_dict()
            series.setdefault(str(data[group_by]), []).append(
                (data[x_field], data[y_field])
            )
        return {key: sorted(values) for key, values in series.items()}

    def average(self, y_field: str, **criteria) -> float:
        """Mean of a metric over the matching records."""
        matching = self.filter(**criteria).records
        if not matching:
            raise ValueError(f"no records match {criteria!r}")
        values = [record.as_dict()[y_field] for record in matching]
        return float(sum(values) / len(values))

    def as_dicts(self) -> List[Dict[str, object]]:
        """All records as flat dictionaries."""
        return [record.as_dict() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def run_point(
    workload: str,
    num_qubits: int,
    target,
    seed: int = 0,
    layout_method: Optional[str] = None,
    routing_method: Optional[str] = None,
    optimization_level: int = 1,
) -> TranspileMetrics:
    """Transpile one workload instance onto one design point, return metrics.

    ``target`` is a :class:`Target`; legacy ``Backend`` objects are
    adapted.  ``layout_method`` / ``routing_method`` default to the level
    preset (dense + SABRE at the paper's level 1).
    """
    target = Target.from_backend(target)
    circuit = build_workload(workload, num_qubits, seed=seed)
    result = transpile(
        circuit,
        target,
        layout_method=layout_method,
        routing_method=routing_method,
        seed=seed,
        optimization_level=optimization_level,
    )
    metrics = result.metrics
    metrics.extra["workload"] = workload
    metrics.extra["backend"] = target.name
    return metrics


def sweep_grid(
    workloads: Sequence[str], sizes: Sequence[int], targets: Sequence
) -> List[tuple]:
    """The (workload, size, target) points of a sweep, in canonical order.

    Widths larger than a design point are skipped, exactly as the serial
    loop always did; the order is the iteration order of the nested loops
    so parallel and serial execution collect records identically.
    """
    return [
        (workload, size, target)
        for workload in workloads
        for size in sizes
        for target in targets
        if size <= target.num_qubits
    ]


def run_sweep(
    workloads: Sequence[str],
    sizes: Sequence[int],
    targets: Iterable,
    seed: int = 0,
    layout_method: Optional[str] = None,
    routing_method: Optional[str] = None,
    optimization_level: int = 1,
    progress: Optional[callable] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Run the full (workload x size x design point) grid.

    Args:
        workloads: workload names from :mod:`repro.workloads.registry`.
        sizes: circuit widths; widths larger than a design point are
            skipped.
        targets: design points to evaluate (:class:`Target` or legacy
            ``Backend`` objects).
        seed: base RNG seed (shared across the grid so that identical
            circuits are compared across design points).
        layout_method / routing_method: registry pass names (``None``
            defers to the level preset).
        optimization_level: staged-pipeline preset (0..3); level 1 is the
            paper's flow.
        progress: optional callable invoked with a status string per point.
        runner: optional :class:`repro.runtime.ExperimentRunner`; when
            given, points are executed through it (process-pool fan-out
            and/or result caching) with ordered collection, so the returned
            records are identical to the serial loop's.
    """
    targets = [Target.from_backend(target) for target in targets]
    points = sweep_grid(list(workloads), list(sizes), targets)
    labels = [f"{w}-{s} on {t.name}" for w, s, t in points]
    if runner is None:
        # Imported lazily so the core layer has no import-time dependency
        # on the runtime package (which itself builds on core).
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    tasks = [
        (workload, size, target, seed, layout_method, routing_method, optimization_level)
        for workload, size, target in points
    ]
    keys = None
    if runner.result_cache is not None:
        from repro.runtime.cache import point_cache_key

        keys = [
            point_cache_key(
                w, s, t, seed, layout_method, routing_method, optimization_level
            )
            for w, s, t in points
        ]
    result = SweepResult()
    records = runner.map(run_point, tasks, keys=keys, labels=labels, progress=progress)
    for label, record in zip(labels, records):
        if record is None:
            # Quarantined under the runner's failure policy: the sweep
            # completes without the point instead of dying with it.
            result.failed_points.append({"label": label})
        else:
            result.add(record)
    return result


def sweep_spec_digest(
    workloads: Sequence[str],
    sizes: Sequence[int],
    targets: Sequence,
    seed: int,
    layout_method: Optional[str],
    routing_method: Optional[str],
    optimization_level: int,
) -> str:
    """Content digest of a full sweep specification.

    Two invocations describing the same sweep — same workloads, sizes,
    design points (by their cache identity, which includes topology and
    noise model), seed and transpiler configuration — digest identically
    across processes, so a checkpoint written by one run is recognized by
    its resume.
    """
    from repro.runtime import backend_cache_key, key_digest

    targets = [Target.from_backend(target) for target in targets]
    return key_digest(
        (
            tuple(workloads),
            tuple(int(size) for size in sizes),
            tuple(backend_cache_key(target) for target in targets),
            int(seed),
            layout_method,
            routing_method,
            int(optimization_level),
        )
    )


def run_sweep_sharded(
    workloads: Sequence[str],
    sizes: Sequence[int],
    targets: Iterable,
    checkpoint_dir,
    seed: int = 0,
    layout_method: Optional[str] = None,
    routing_method: Optional[str] = None,
    optimization_level: int = 1,
    shard_points: int = 256,
    resume: bool = True,
    progress: Optional[callable] = None,
    shard_progress: Optional[callable] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Run a sweep as deterministic shards with checkpoint/resume.

    The grid is split into contiguous shards of ``shard_points`` points
    (canonical :func:`sweep_grid` order), each persisted to
    ``checkpoint_dir`` the moment it completes.  A rerun over the same
    specification recomputes only the missing shards — a crashed or
    killed sweep resumes where it stopped, and a finished sweep replays
    entirely from the checkpoint.  The returned :class:`SweepResult` is
    record-for-record identical to :func:`run_sweep` over the same
    arguments.

    Args:
        checkpoint_dir: directory for the shard manifest and shard files
            (created if missing).
        shard_points: points per shard — the granularity of loss on a
            crash and of progress reporting.
        resume: continue an existing checkpoint.  When False, an existing
            manifest raises instead of silently recomputing or mixing —
            pass ``resume=True`` or point at a fresh directory.
        shard_progress: optional callable invoked as
            ``shard_progress(index, num_shards, status, points)`` after
            each shard, with ``status`` one of ``"restored"`` /
            ``"computed"`` / ``"retried"`` (a restored shard whose
            recorded failed points were recomputed).
        (The remaining arguments match :func:`run_sweep`.)

    Raises:
        repro.runtime.checkpoint.CheckpointMismatch: the directory
            checkpoints a different sweep, or ``resume=False`` found an
            existing checkpoint.
    """
    from repro.runtime.checkpoint import CheckpointMismatch, SweepCheckpoint

    targets = [Target.from_backend(target) for target in targets]
    workloads = list(workloads)
    sizes = list(sizes)
    points = sweep_grid(workloads, sizes, targets)
    digest = sweep_spec_digest(
        workloads,
        sizes,
        targets,
        seed,
        layout_method,
        routing_method,
        optimization_level,
    )
    checkpoint = SweepCheckpoint(checkpoint_dir)
    if not resume and checkpoint.exists():
        raise CheckpointMismatch(
            f"checkpoint at {checkpoint.directory} already exists; resume it "
            "or choose a fresh directory"
        )
    checkpoint.initialize(digest, len(points), shard_points)
    shard_points = checkpoint.manifest["shard_points"]

    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    def _map_points(chunk_points):
        labels = [f"{w}-{s} on {t.name}" for w, s, t in chunk_points]
        tasks = [
            (w, s, t, seed, layout_method, routing_method, optimization_level)
            for w, s, t in chunk_points
        ]
        keys = None
        if runner.result_cache is not None:
            from repro.runtime.cache import point_cache_key

            keys = [
                point_cache_key(
                    w, s, t, seed, layout_method, routing_method, optimization_level
                )
                for w, s, t in chunk_points
            ]
        return runner.map(
            run_point, tasks, keys=keys, labels=labels, progress=progress
        )

    completed = checkpoint.completed_shards() if resume else set()
    result = SweepResult()
    for index in range(checkpoint.num_shards):
        base = index * shard_points
        chunk = points[base : base + shard_points]
        records = None
        if index in completed:
            records = checkpoint.load_shard(index)
            if records is not None and len(records) != len(chunk):
                records = None  # stale/corrupt shard: recompute it
        status = "restored"
        if records is None:
            status = "computed"
            records = _map_points(chunk)
            checkpoint.store_shard(index, records)
        elif any(record is None for record in records):
            # A restored shard with quarantined holes: the successful
            # points survive untouched, only the recorded failed points
            # are retried.
            status = "retried"
            holes = [pos for pos, record in enumerate(records) if record is None]
            retried = _map_points([chunk[pos] for pos in holes])
            for pos, record in zip(holes, retried):
                records[pos] = record
            checkpoint.store_shard(index, records)
        if status != "restored":
            failures = {
                base + pos: {
                    "shard": index,
                    "label": f"{chunk[pos][0]}-{chunk[pos][1]} on {chunk[pos][2].name}",
                    "reason": "quarantined by the failure policy",
                }
                for pos, record in enumerate(records)
                if record is None
            }
            checkpoint.update_failures(base, base + len(chunk), failures)
        for pos, record in enumerate(records):
            if record is None:
                result.failed_points.append(
                    {
                        "point": base + pos,
                        "shard": index,
                        "label": f"{chunk[pos][0]}-{chunk[pos][1]} on {chunk[pos][2].name}",
                    }
                )
            else:
                result.add(record)
        if shard_progress is not None:
            shard_progress(index, checkpoint.num_shards, status, len(chunk))
    return result
