"""Sweep runner: transpile workload grids over backends and collect metrics.

This is the programmatic equivalent of the paper's experimental flow
(Fig. 10) applied over a grid of circuit sizes, workloads and design
points; the experiment modules in :mod:`repro.experiments` are thin
wrappers that pick the grids matching each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.core.backend import Backend
from repro.transpiler.metrics import TranspileMetrics
from repro.workloads.registry import build_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runner import ExperimentRunner


@dataclass
class SweepResult:
    """A flat collection of per-point metrics with grouping helpers."""

    records: List[TranspileMetrics] = field(default_factory=list)

    def add(self, metrics: TranspileMetrics) -> None:
        """Append one measurement."""
        self.records.append(metrics)

    def filter(self, **criteria) -> "SweepResult":
        """Records whose attributes match all keyword criteria."""
        selected = [
            record
            for record in self.records
            if all(getattr(record, key) == value for key, value in criteria.items())
        ]
        return SweepResult(selected)

    def series(self, group_by: str, x_field: str, y_field: str) -> Dict[str, List[tuple]]:
        """Build plot-ready series: ``{group: [(x, y), ...]}`` sorted by x."""
        series: Dict[str, List[tuple]] = {}
        for record in self.records:
            data = record.as_dict()
            series.setdefault(str(data[group_by]), []).append(
                (data[x_field], data[y_field])
            )
        return {key: sorted(values) for key, values in series.items()}

    def average(self, y_field: str, **criteria) -> float:
        """Mean of a metric over the matching records."""
        matching = self.filter(**criteria).records
        if not matching:
            raise ValueError(f"no records match {criteria!r}")
        values = [record.as_dict()[y_field] for record in matching]
        return float(sum(values) / len(values))

    def as_dicts(self) -> List[Dict[str, object]]:
        """All records as flat dictionaries."""
        return [record.as_dict() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def run_point(
    workload: str,
    num_qubits: int,
    backend: Backend,
    seed: int = 0,
    layout_method: str = "dense",
    routing_method: str = "sabre",
) -> TranspileMetrics:
    """Transpile one workload instance onto one backend and return metrics."""
    circuit = build_workload(workload, num_qubits, seed=seed)
    result = backend.transpile(
        circuit,
        layout_method=layout_method,
        routing_method=routing_method,
        seed=seed,
    )
    metrics = result.metrics
    metrics.extra["workload"] = workload
    metrics.extra["backend"] = backend.name
    return metrics


def sweep_grid(
    workloads: Sequence[str], sizes: Sequence[int], backends: Sequence[Backend]
) -> List[tuple]:
    """The (workload, size, backend) points of a sweep, in canonical order.

    Widths larger than a backend are skipped, exactly as the serial loop
    always did; the order is the iteration order of the nested loops so
    parallel and serial execution collect records identically.
    """
    return [
        (workload, size, backend)
        for workload in workloads
        for size in sizes
        for backend in backends
        if size <= backend.num_qubits
    ]


def run_sweep(
    workloads: Sequence[str],
    sizes: Sequence[int],
    backends: Iterable[Backend],
    seed: int = 0,
    layout_method: str = "dense",
    routing_method: str = "sabre",
    progress: Optional[callable] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Run the full (workload x size x backend) grid.

    Args:
        workloads: workload names from :mod:`repro.workloads.registry`.
        sizes: circuit widths; widths larger than a backend are skipped.
        backends: design points to evaluate.
        seed: base RNG seed (shared across the grid so that identical
            circuits are compared across backends).
        layout_method / routing_method: transpiler configuration.
        progress: optional callable invoked with a status string per point.
        runner: optional :class:`repro.runtime.ExperimentRunner`; when
            given, points are executed through it (process-pool fan-out
            and/or result caching) with ordered collection, so the returned
            records are identical to the serial loop's.
    """
    points = sweep_grid(list(workloads), list(sizes), list(backends))
    labels = [f"{w}-{s} on {b.name}" for w, s, b in points]
    if runner is None:
        # Imported lazily so the core layer has no import-time dependency
        # on the runtime package (which itself builds on core).
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    tasks = [
        (workload, size, backend, seed, layout_method, routing_method)
        for workload, size, backend in points
    ]
    keys = None
    if runner.result_cache is not None:
        from repro.runtime.cache import point_cache_key

        keys = [
            point_cache_key(w, s, b, seed, layout_method, routing_method)
            for w, s, b in points
        ]
    result = SweepResult()
    for record in runner.map(
        run_point, tasks, keys=keys, labels=labels, progress=progress
    ):
        result.add(record)
    return result
