"""Wall-clock reliability estimation for co-design points.

The paper compares design points with two normalised surrogates: total 2Q
gate count (control-error-dominated machines) and critical-path pulse count
(decoherence-dominated machines).  This module closes the loop to physical
units: it transpiles a workload onto a backend, schedules the result with
the modulator's gate-duration preset, and combines gate errors with
T1/T2 decoherence over the schedule's idle time into an estimated
probability of success (EPS).

The EPS model is deliberately simple (products of per-gate fidelities and
per-qubit exponential decay over idle time) — the same first-order model
the paper's Eq. 12 uses — but because it consumes *scheduled* durations it
lets the experiments ask a question the paper leaves open: does the
co-design advantage survive when the modulators' very different pulse
lengths are taken into account?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.compile import transpile
from repro.transpiler.scheduling import GateDurations, Schedule, schedule_asap
from repro.transpiler.target import Target
from repro.workloads.registry import build_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner

@dataclass(frozen=True)
class ReliabilityEstimate:
    """Reliability record for one (backend, workload instance) pair."""

    backend: str
    workload: str
    circuit_qubits: int
    total_2q: int
    critical_2q: int
    duration_ns: float
    total_idle_ns: float
    gate_success: float
    decoherence_success: float

    @property
    def success_probability(self) -> float:
        """Estimated probability of success (gate errors x decoherence)."""
        return self.gate_success * self.decoherence_success


@dataclass
class ReliabilityModel:
    """Physical parameters of the reliability estimate.

    Attributes:
        two_qubit_fidelity: average fidelity of one native two-qubit pulse.
        one_qubit_fidelity: average fidelity of one single-qubit pulse.
        t1_us: relaxation time in microseconds.
        t2_us: dephasing time in microseconds.
    """

    two_qubit_fidelity: float = 0.995
    one_qubit_fidelity: float = 0.9999
    t1_us: float = 100.0
    t2_us: float = 100.0

    def __post_init__(self) -> None:
        for fidelity in (self.two_qubit_fidelity, self.one_qubit_fidelity):
            if not 0.0 < fidelity <= 1.0:
                raise ValueError("gate fidelities must lie in (0, 1]")
        if self.t1_us <= 0.0 or self.t2_us <= 0.0:
            raise ValueError("T1 and T2 must be positive")
        if self.t2_us > 2.0 * self.t1_us + 1e-12:
            raise ValueError("physical relaxation requires T2 <= 2 * T1")

    # -- pieces -------------------------------------------------------------------

    def gate_success(self, circuit: QuantumCircuit) -> float:
        """Product of per-gate fidelities over a (physical) circuit."""
        success = 1.0
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            if instruction.num_qubits == 1:
                success *= self.one_qubit_fidelity
            else:
                success *= self.two_qubit_fidelity
        return float(success)

    def decoherence_success(self, schedule: Schedule) -> float:
        """Exponential idle-time decay accumulated over every qubit."""
        rate_per_ns = 0.5 * (1.0 / (self.t1_us * 1e3) + 1.0 / (self.t2_us * 1e3))
        return float(np.exp(-rate_per_ns * schedule.total_idle_time()))

    def to_noise_model(self, pulse_duration_ns: float = 100.0):
        """Channel-level noise model with the same physical parameters.

        Bridges the closed-form EPS surrogate to full density-matrix
        simulation: the gate fidelities become depolarising error rates and
        T1/T2 are rescaled from microseconds into pulse-duration units (one
        native 2Q pulse = ``pulse_duration_ns``), so a design point scored
        by :meth:`estimate` can be cross-checked against the vectorized
        :class:`~repro.noise.density_matrix.DensityMatrixSimulator` at
        widths up to its 14-qubit ceiling.
        """
        from repro.noise.circuit_noise import CircuitNoiseModel

        if pulse_duration_ns <= 0.0:
            raise ValueError("pulse_duration_ns must be positive")
        pulses_per_us = 1e3 / pulse_duration_ns
        return CircuitNoiseModel.from_gate_fidelity(
            self.two_qubit_fidelity,
            t1=self.t1_us * pulses_per_us,
            t2=self.t2_us * pulses_per_us,
            one_qubit_fidelity=self.one_qubit_fidelity,
        )

    # -- full estimate --------------------------------------------------------------

    def estimate(
        self,
        backend,
        circuit: QuantumCircuit,
        durations: Optional[GateDurations] = None,
        layout_method: str = "dense",
        routing_method: str = "sabre",
        seed: int = 0,
    ) -> ReliabilityEstimate:
        """Transpile, schedule and score one circuit on one design point.

        ``backend`` is a :class:`Target` (legacy ``Backend`` objects are
        adapted).
        """
        backend = Target.from_backend(backend)
        durations = durations or backend.gate_durations()
        result = transpile(
            circuit,
            backend,
            layout_method=layout_method,
            routing_method=routing_method,
            translation_mode="count",
            seed=seed,
        )
        return self.score_transpiled(backend, circuit, result, durations)

    def score_transpiled(
        self,
        backend,
        circuit: QuantumCircuit,
        result,
        durations: Optional[GateDurations] = None,
    ) -> ReliabilityEstimate:
        """Score an already-transpiled circuit (no recompilation).

        ``result`` is the :func:`~repro.transpiler.compile.transpile`
        output for ``circuit`` on ``backend``; callers that need both the
        compiled circuit and its estimate (e.g.
        :func:`simulated_reliability_check`) transpile once and score here.
        """
        backend = Target.from_backend(backend)
        durations = durations or backend.gate_durations()
        # Schedule the routed circuit with per-gate 2Q counts expanded: the
        # translated circuit in "count" mode keeps original gate identities,
        # so schedule the translated circuit directly.
        schedule = schedule_asap(result.circuit, durations)
        return ReliabilityEstimate(
            backend=backend.name,
            workload=circuit.metadata.get("workload", circuit.name),
            circuit_qubits=circuit.num_qubits,
            total_2q=result.metrics.total_2q,
            critical_2q=result.metrics.critical_2q,
            duration_ns=schedule.total_duration(),
            total_idle_ns=schedule.total_idle_time(),
            gate_success=self.gate_success(result.circuit),
            decoherence_success=self.decoherence_success(schedule),
        )


def durations_for_backend(backend) -> GateDurations:
    """The duration model of a design point (legacy spelling).

    Accepts a :class:`Target` or legacy ``Backend``;
    :meth:`Target.gate_durations` is the preferred spelling and the single
    home of the modulator-preset mapping.
    """
    return Target.from_backend(backend).gate_durations()


def simulated_reliability_check(
    model: ReliabilityModel,
    backend,
    circuit: QuantumCircuit,
    pulse_duration_ns: float = 100.0,
    seed: int = 0,
) -> dict:
    """Cross-check the closed-form EPS against a density-matrix simulation.

    Transpiles ``circuit`` onto the design point exactly as
    :meth:`ReliabilityModel.estimate` does, drops idle device qubits, and
    simulates the compiled circuit under the equivalent channel-level noise
    model (:meth:`ReliabilityModel.to_noise_model`).  Returns the
    closed-form estimate next to the simulated output fidelity so sweeps
    can assert the surrogate orders design points the same way the full
    noise simulation does.  Only usable when the compiled circuit fits the
    density-matrix ceiling (14 qubits after idle-qubit removal).
    """
    from repro.noise.circuit_noise import circuit_output_fidelity

    backend = Target.from_backend(backend)
    result = transpile(
        circuit,
        backend,
        layout_method="dense",
        routing_method="sabre",
        translation_mode="count",
        seed=seed,
    )
    estimate = model.score_transpiled(backend, circuit, result)
    compact = result.circuit.remove_idle_qubits()
    simulated = circuit_output_fidelity(
        compact, model.to_noise_model(pulse_duration_ns)
    )
    return {
        "backend": backend.name,
        "qubits": compact.num_qubits,
        "estimated_success": estimate.success_probability,
        "simulated_fidelity": simulated,
    }


def _estimate_backend(
    model: ReliabilityModel, backend: Target, circuit: QuantumCircuit, seed: int
) -> ReliabilityEstimate:
    """One backend's estimate (module-level so it pickles to workers)."""
    return model.estimate(backend, circuit, seed=seed)


def reliability_ranking(
    backends: Sequence,
    workload: str,
    num_qubits: int,
    model: Optional[ReliabilityModel] = None,
    seed: int = 0,
    runner: Optional["ExperimentRunner"] = None,
) -> List[ReliabilityEstimate]:
    """Score every backend on one workload instance, best first.

    Backends are scored independently, so ``runner`` fans them out over
    worker processes without changing the ranking.
    """
    model = model or ReliabilityModel()
    circuit = build_workload(workload, num_qubits, seed=seed)
    backends = [Target.from_backend(backend) for backend in backends]
    tasks = [(model, backend, circuit, int(seed)) for backend in backends]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    estimates = runner.map(
        _estimate_backend, tasks, labels=[backend.name for backend in backends]
    )
    return sorted(estimates, key=lambda e: -e.success_probability)


def format_reliability_report(estimates: Sequence[ReliabilityEstimate]) -> str:
    """Text table: one row per backend, best first."""
    header = (
        f"{'backend':<24}{'2Q':>7}{'crit2Q':>8}{'dur(ns)':>10}{'idle(ns)':>11}"
        f"{'gate':>8}{'decoh':>8}{'EPS':>8}"
    )
    lines = ["Reliability ranking", header, "-" * len(header)]
    for estimate in estimates:
        lines.append(
            f"{estimate.backend:<24}{estimate.total_2q:>7}{estimate.critical_2q:>8}"
            f"{estimate.duration_ns:>10.0f}{estimate.total_idle_ns:>11.0f}"
            f"{estimate.gate_success:>8.3f}{estimate.decoherence_success:>8.3f}"
            f"{estimate.success_probability:>8.3f}"
        )
    return "\n".join(lines)
