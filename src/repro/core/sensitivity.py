"""Pulse-duration sensitivity study for the n-th-root iSWAP family.

Reproduces the three panels of paper Fig. 15 and the headline numbers of
Section 6.3: for Haar-random two-qubit targets, smaller iSWAP fractions
need more template applications to reach a given decomposition fidelity,
but because each pulse is proportionally shorter the *total* pulse duration
drops and — under the linear-decoherence model of Eq. 12 — the combined
fidelity of Eq. 13 improves (the paper reports a 25 % infidelity reduction
for the 4th root at a 99 % iSWAP fidelity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.fidelity import best_total_fidelity, nth_root_pulse_fidelity
from repro.decomposition.approximate import TemplateDecomposer
from repro.gates import NthRootISwapGate
from repro.linalg.random import random_unitary

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


@dataclass(frozen=True)
class RootStudyResult:
    """Results for one iSWAP root ``n``.

    Attributes:
        root: the fraction index ``n``.
        infidelity_by_k: mean decomposition infidelity ``1 - F_d`` for each
            template size ``k`` (Fig. 15 top-left series).
        converged_k: smallest ``k`` whose mean infidelity is below the
            convergence threshold.
        pulse_duration: total pulse duration of the converged template in
            iSWAP units, i.e. ``converged_k / n`` (Fig. 15 top-right).
    """

    root: int
    infidelity_by_k: Dict[int, float]
    converged_k: int
    pulse_duration: float


@dataclass(frozen=True)
class SensitivityStudyResult:
    """Full Fig. 15 dataset."""

    roots: Tuple[int, ...]
    k_values: Tuple[int, ...]
    num_targets: int
    root_results: Dict[int, RootStudyResult]
    #: total fidelity (Eq. 13) per root, per base iSWAP fidelity.
    total_fidelity: Dict[int, Dict[float, float]]

    def infidelity_reduction_vs_sqiswap(self, iswap_fidelity: float) -> Dict[int, float]:
        """Relative infidelity reduction of each root vs. the square root.

        The paper reports, at ``Fb(iSWAP) = 0.99``, reductions of 14 %,
        25 % and 11 % for the 3rd, 4th and 5th roots respectively.
        """
        reference = 1.0 - self.total_fidelity[2][iswap_fidelity]
        reductions: Dict[int, float] = {}
        for root in self.roots:
            if root == 2:
                continue
            infidelity = 1.0 - self.total_fidelity[root][iswap_fidelity]
            reductions[root] = (reference - infidelity) / reference
        return reductions


def _mean_infidelity(
    decomposer: TemplateDecomposer,
    targets: Sequence[np.ndarray],
    applications: int,
) -> float:
    values = [
        decomposer.decompose(target, applications).infidelity for target in targets
    ]
    return float(np.mean(values))


def _study_one_root(
    root: int,
    targets: Sequence[np.ndarray],
    k_values: Sequence[int],
    iswap_fidelities: Sequence[float],
    convergence_threshold: float,
    seed: int,
    restarts: int,
) -> Tuple[RootStudyResult, Dict[float, float]]:
    """Full study of one iSWAP root (module-level so it pickles to workers).

    The decomposer is seeded per root exactly as the serial loop always
    was, so parallel fan-out over roots reproduces the serial numbers.
    """
    decomposer = TemplateDecomposer(
        NthRootISwapGate(root), restarts=restarts, seed=seed + root
    )
    infidelity_by_k: Dict[int, float] = {}
    for applications in k_values:
        infidelity_by_k[int(applications)] = _mean_infidelity(
            decomposer, targets, int(applications)
        )
    converged = [
        k for k, infidelity in infidelity_by_k.items() if infidelity <= convergence_threshold
    ]
    # Fall back to the *largest* template size tried when no k converges,
    # so a non-convergent root is never reported with the cheapest pulse.
    converged_k = min(converged) if converged else max(infidelity_by_k)
    result = RootStudyResult(
        root=root,
        infidelity_by_k=infidelity_by_k,
        converged_k=int(converged_k),
        pulse_duration=float(converged_k) / root,
    )
    # Eq. 13: best total fidelity over k for each base pulse fidelity.
    per_base: Dict[float, float] = {}
    for iswap_fidelity in iswap_fidelities:
        pulse_fidelity = nth_root_pulse_fidelity(iswap_fidelity, root)
        candidates = [
            (k, 1.0 - infidelity) for k, infidelity in infidelity_by_k.items()
        ]
        _, best = best_total_fidelity(candidates, pulse_fidelity)
        per_base[float(iswap_fidelity)] = best
    return result, per_base


def pulse_duration_sensitivity_study(
    roots: Sequence[int] = (2, 3, 4, 5, 6, 7),
    k_values: Optional[Sequence[int]] = None,
    num_targets: int = 50,
    iswap_fidelities: Sequence[float] = (0.90, 0.925, 0.95, 0.975, 0.99, 1.0),
    convergence_threshold: float = 1e-4,
    seed: int = 2022,
    restarts: int = 2,
    runner: Optional["ExperimentRunner"] = None,
) -> SensitivityStudyResult:
    """Run the Fig.-15 study.

    Args:
        roots: iSWAP fraction indices ``n`` to study.
        k_values: template sizes to evaluate (defaults to ``2 .. max(roots)+2``).
        num_targets: number of Haar-random two-qubit targets (paper: 50).
        iswap_fidelities: base iSWAP pulse fidelities ``Fb`` for the Eq.-13
            panel.
        convergence_threshold: mean infidelity below which a template size
            counts as converged.
        seed: RNG seed for the Haar targets.
        restarts: optimiser restarts per decomposition (2 keeps the default
            run fast; increase for publication-grade curves).
        runner: optional :class:`repro.runtime.ExperimentRunner`; roots are
            independent, so they fan out with identical results.
    """
    if not roots:
        raise ValueError("at least one root index is required")
    max_root = max(roots)
    if k_values is None:
        k_values = tuple(range(2, max_root + 3))
    rng = np.random.default_rng(seed)
    targets = [random_unitary(4, rng) for _ in range(num_targets)]

    tasks = [
        (
            int(root),
            targets,
            tuple(int(k) for k in k_values),
            tuple(float(f) for f in iswap_fidelities),
            float(convergence_threshold),
            int(seed),
            int(restarts),
        )
        for root in roots
    ]
    labels = [f"iswap-root {root}" for root in roots]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    per_root = runner.map(_study_one_root, tasks, labels=labels)

    root_results: Dict[int, RootStudyResult] = {}
    total_fidelity: Dict[int, Dict[float, float]] = {}
    for root, (result, per_base) in zip(roots, per_root):
        root_results[int(root)] = result
        total_fidelity[int(root)] = per_base

    return SensitivityStudyResult(
        roots=tuple(int(r) for r in roots),
        k_values=tuple(int(k) for k in k_values),
        num_targets=num_targets,
        root_results=root_results,
        total_fidelity=total_fidelity,
    )


def format_sensitivity_report(result: SensitivityStudyResult) -> str:
    """Human-readable summary of the Fig.-15 dataset."""
    lines = ["n-root iSWAP pulse-duration sensitivity study"]
    lines.append(f"targets: {result.num_targets} Haar-random 2Q unitaries")
    lines.append("")
    lines.append("mean decomposition infidelity (1 - Fd) by template size k:")
    header = "  root " + "".join(f"k={k:<10d}" for k in result.k_values)
    lines.append(header)
    for root in result.roots:
        row = result.root_results[root]
        cells = "".join(
            f"{row.infidelity_by_k.get(k, float('nan')):<12.2e}" for k in result.k_values
        )
        lines.append(f"  n={root:<3d} {cells}")
    lines.append("")
    lines.append("converged template size and total pulse duration (iSWAP units):")
    for root in result.roots:
        row = result.root_results[root]
        lines.append(
            f"  n={root}: k={row.converged_k}, duration={row.pulse_duration:.3f}"
        )
    lines.append("")
    lines.append("best total fidelity (Eq. 13) by base iSWAP fidelity:")
    bases = sorted(next(iter(result.total_fidelity.values())).keys())
    lines.append("  root " + "".join(f"Fb={b:<9.3f}" for b in bases))
    for root in result.roots:
        cells = "".join(f"{result.total_fidelity[root][b]:<12.5f}" for b in bases)
        lines.append(f"  n={root:<3d} {cells}")
    if 2 in result.roots and 0.99 in bases:
        lines.append("")
        reductions = result.infidelity_reduction_vs_sqiswap(0.99)
        for root, reduction in sorted(reductions.items()):
            lines.append(
                f"  infidelity reduction of n={root} vs n=2 at Fb=0.99: {100 * reduction:.1f}%"
            )
    return "\n".join(lines)
