"""Seed-sweep statistics for the transpilation heuristics.

The paper notes (Section 6.2) that placement and routing heuristics are
noisy: gate counts are not always monotone in problem size and a single
seed can flatter one topology.  This module provides the machinery to make
any comparison seed-robust:

* :func:`seed_sweep` — run the same (workload, size, backend) point over
  many seeds and collect each metric's distribution,
* :class:`MetricSummary` — mean / standard deviation / extremes of one
  metric,
* :func:`compare_backends` — per-backend summaries for a fixed workload,
* :func:`ordering_stability` — how often one backend beats another across
  seeds, which is the statistic the ablation benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.backend import Backend
from repro.core.pipeline import run_point

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


@dataclass(frozen=True)
class MetricSummary:
    """Distribution summary of one metric over a seed sweep."""

    metric: str
    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int

    @classmethod
    def from_values(cls, metric: str, values: Sequence[float]) -> "MetricSummary":
        """Summarise a non-empty sequence of measurements."""
        if not values:
            raise ValueError("cannot summarise an empty sample")
        array = np.asarray(values, dtype=float)
        return cls(
            metric=metric,
            mean=float(array.mean()),
            std=float(array.std(ddof=1)) if len(array) > 1 else 0.0,
            minimum=float(array.min()),
            maximum=float(array.max()),
            samples=len(array),
        )

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.mean:.1f} +/- {self.std:.1f} "
            f"(min {self.minimum:.0f}, max {self.maximum:.0f}, n={self.samples})"
        )


def seed_sweep(
    workload: str,
    num_qubits: int,
    backend: Backend,
    seeds: Sequence[int],
    metrics: Sequence[str] = ("total_swaps", "critical_swaps", "total_2q", "critical_2q"),
    layout_method: str = "dense",
    routing_method: str = "sabre",
    runner: Optional["ExperimentRunner"] = None,
) -> Dict[str, MetricSummary]:
    """Run one design point over many seeds and summarise each metric.

    Seeds are independent trials, so ``runner`` fans them out over worker
    processes with identical summaries.
    """
    if not seeds:
        raise ValueError("seed_sweep needs at least one seed")
    tasks = [
        (workload, num_qubits, backend, int(seed), layout_method, routing_method)
        for seed in seeds
    ]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    records = runner.map(run_point, tasks, labels=[f"seed {seed}" for seed in seeds])
    values: Dict[str, List[float]] = {metric: [] for metric in metrics}
    for record in records:
        data = record.as_dict()
        for metric in metrics:
            values[metric].append(float(data[metric]))
    return {
        metric: MetricSummary.from_values(metric, samples)
        for metric, samples in values.items()
    }


def compare_backends(
    backends: Sequence[Backend],
    workload: str,
    num_qubits: int,
    seeds: Sequence[int],
    metric: str = "total_2q",
    **sweep_options,
) -> Dict[str, MetricSummary]:
    """Seed-sweep summary of one metric for every backend."""
    return {
        backend.name: seed_sweep(
            workload, num_qubits, backend, seeds, metrics=(metric,), **sweep_options
        )[metric]
        for backend in backends
    }


def ordering_stability(
    better: Backend,
    worse: Backend,
    workload: str,
    num_qubits: int,
    seeds: Sequence[int],
    metric: str = "total_2q",
    **sweep_options,
) -> float:
    """Fraction of seeds for which ``better`` really beats ``worse`` on ``metric``.

    1.0 means the comparison is seed-independent; 0.5 means it is a coin
    flip (pure heuristic noise).
    """
    if not seeds:
        raise ValueError("ordering_stability needs at least one seed")
    wins = 0
    for seed in seeds:
        better_value = run_point(workload, num_qubits, better, seed=int(seed), **sweep_options)
        worse_value = run_point(workload, num_qubits, worse, seed=int(seed), **sweep_options)
        if better_value.as_dict()[metric] < worse_value.as_dict()[metric]:
            wins += 1
    return wins / len(seeds)


def format_comparison(summaries: Dict[str, MetricSummary]) -> str:
    """Text table of per-backend metric summaries, best mean first."""
    lines = ["Seed-sweep comparison"]
    width = max(len(name) for name in summaries) if summaries else 10
    for name, summary in sorted(summaries.items(), key=lambda item: item[1].mean):
        lines.append(f"  {name:<{width}}  {summary}")
    return "\n".join(lines)
