"""Two-qubit decomposition machinery: coverage rules, bases, templates."""

from repro.decomposition import coverage
from repro.decomposition.coverage import (
    basis_count,
    cnot_count,
    expected_haar_average,
    nth_root_iswap_count,
    sqiswap_count,
    syc_count,
)
from repro.decomposition.basis import (
    BasisGateSpec,
    cx_basis,
    get_basis,
    iswap_basis,
    nth_root_iswap_basis,
    sqiswap_basis,
    syc_basis,
)
from repro.decomposition.exact import (
    ccx_to_cx,
    cphase_to_cx,
    cz_to_cx,
    expand_named_gate,
    iswap_to_cx,
    rxx_to_cx,
    rzz_to_cx,
    swap_to_cx,
)
from repro.decomposition.approximate import (
    ApproximateDecomposition,
    TemplateDecomposer,
    decomposition_fidelity_curve,
)
from repro.decomposition.cache import (
    GLOBAL_DECOMPOSITION_CACHE,
    DecompositionCache,
    clear_decomposition_cache,
    decomposition_cache_stats,
    weyl_key,
)

__all__ = [
    "coverage",
    "basis_count",
    "cnot_count",
    "expected_haar_average",
    "nth_root_iswap_count",
    "sqiswap_count",
    "syc_count",
    "BasisGateSpec",
    "cx_basis",
    "get_basis",
    "iswap_basis",
    "nth_root_iswap_basis",
    "sqiswap_basis",
    "syc_basis",
    "ccx_to_cx",
    "cphase_to_cx",
    "cz_to_cx",
    "expand_named_gate",
    "iswap_to_cx",
    "rxx_to_cx",
    "rzz_to_cx",
    "swap_to_cx",
    "ApproximateDecomposition",
    "TemplateDecomposer",
    "decomposition_fidelity_curve",
    "GLOBAL_DECOMPOSITION_CACHE",
    "DecompositionCache",
    "clear_decomposition_cache",
    "decomposition_cache_stats",
    "weyl_key",
]
