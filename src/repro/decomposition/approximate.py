"""NuOp-style approximate decomposition into repeated basis-gate templates.

The paper (Section 6.3) reproduces NuOp [Lao et al., ISCA 2021] to study
``n``-th-root iSWAP bases for which no analytic decomposition is known: the
target two-qubit unitary is approximated by a template that interleaves
``k`` applications of the basis gate with parameterised single-qubit gates
(paper Eq. 10), and a numerical optimiser maximises the normalised
Hilbert–Schmidt fidelity (paper Eq. 11).  Increasing ``k`` until the
fidelity converges gives both the achievable decomposition fidelity and the
required gate count.

The same engine doubles as the general-purpose synthesis backend of the
transpiler: with enough applications the optimiser reaches machine
precision for any basis that is a perfect entangler, so "approximate"
decompositions of sufficient depth are exact for all practical purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.gates import U3Gate
from repro.linalg.fidelity import hilbert_schmidt_fidelity


@dataclass(frozen=True)
class ApproximateDecomposition:
    """Result of a template optimisation.

    Attributes:
        basis_name: name of the repeated basis gate.
        applications: number of basis-gate applications ``k``.
        fidelity: achieved Hilbert–Schmidt fidelity (paper Eq. 11).
        parameters: flat array of the optimised 1Q Euler angles.
        circuit: the realised two-qubit circuit.
    """

    basis_name: str
    applications: int
    fidelity: float
    parameters: np.ndarray
    circuit: QuantumCircuit

    @property
    def infidelity(self) -> float:
        """1 - fidelity; the quantity plotted in paper Fig. 15 (top left)."""
        return 1.0 - self.fidelity


def _u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    cos = np.cos(theta / 2.0)
    sin = np.sin(theta / 2.0)
    return np.array(
        [
            [cos, -np.exp(1j * lam) * sin],
            [np.exp(1j * phi) * sin, np.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


class TemplateDecomposer:
    """Optimises interleaved-1Q templates of a fixed two-qubit basis gate."""

    def __init__(
        self,
        basis_gate: Gate,
        convergence_threshold: float = 1.0 - 1e-6,
        restarts: int = 3,
        rescue_restarts: int = 4,
        max_iterations: int = 600,
        seed: int = 1234,
    ):
        if basis_gate.num_qubits != 2:
            raise ValueError("the template basis gate must be a two-qubit gate")
        self._basis_gate = basis_gate
        self._basis_matrix = basis_gate.matrix()
        self._threshold = float(convergence_threshold)
        self._restarts = int(restarts)
        self._rescue_restarts = int(rescue_restarts)
        self._max_iterations = int(max_iterations)
        self._seed = int(seed)

    # -- template evaluation ----------------------------------------------

    def template_unitary(self, parameters: np.ndarray, applications: int) -> np.ndarray:
        """Unitary realised by the template for the given 1Q parameters."""
        parameters = np.asarray(parameters, dtype=float)
        expected = 6 * (applications + 1)
        if parameters.size != expected:
            raise ValueError(
                f"expected {expected} parameters for k={applications}, got {parameters.size}"
            )
        layers = parameters.reshape(applications + 1, 6)
        unitary = np.kron(
            _u3_matrix(*layers[0, :3]), _u3_matrix(*layers[0, 3:])
        )
        for layer in range(1, applications + 1):
            unitary = self._basis_matrix @ unitary
            unitary = (
                np.kron(_u3_matrix(*layers[layer, :3]), _u3_matrix(*layers[layer, 3:]))
                @ unitary
            )
        return unitary

    def fidelity(self, parameters: np.ndarray, applications: int, target: np.ndarray) -> float:
        """Hilbert–Schmidt fidelity of the template against ``target``."""
        return hilbert_schmidt_fidelity(
            self.template_unitary(parameters, applications), target
        )

    # -- optimisation -------------------------------------------------------

    def decompose(
        self, target: np.ndarray, applications: int
    ) -> ApproximateDecomposition:
        """Best template with exactly ``applications`` basis gates."""
        target = np.asarray(target, dtype=complex)
        if target.shape != (4, 4):
            raise ValueError("the target must be a two-qubit (4x4) unitary")
        rng = np.random.default_rng(self._seed + 7919 * applications)
        num_parameters = 6 * (applications + 1)

        def objective(parameters: np.ndarray) -> float:
            return 1.0 - self.fidelity(parameters, applications, target)

        best_params: Optional[np.ndarray] = None
        best_value = np.inf
        # The planned restarts run unconditionally; if none of them reaches
        # the convergence threshold a bounded number of rescue restarts is
        # attempted, which makes the mean-infidelity curves of Fig. 15
        # robust against the occasional local minimum of over-parameterised
        # templates.
        total_restarts = self._restarts + self._rescue_restarts
        for restart in range(total_restarts):
            initial = rng.uniform(-np.pi, np.pi, size=num_parameters)
            result = optimize.minimize(
                objective,
                initial,
                method="L-BFGS-B",
                options={"maxiter": self._max_iterations, "ftol": 1e-14, "gtol": 1e-10},
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_params = result.x
            if best_value < 1.0 - self._threshold:
                break
            if restart >= self._restarts - 1 and best_value < 1e-6:
                break
        assert best_params is not None
        fidelity = 1.0 - best_value
        return ApproximateDecomposition(
            basis_name=self._basis_gate.name,
            applications=applications,
            fidelity=float(fidelity),
            parameters=best_params,
            circuit=self.build_circuit(best_params, applications),
        )

    def decompose_adaptive(
        self,
        target: np.ndarray,
        max_applications: int = 8,
        start_applications: int = 1,
    ) -> ApproximateDecomposition:
        """Increase ``k`` until the fidelity converges (NuOp's strategy)."""
        best: Optional[ApproximateDecomposition] = None
        start_applications = min(start_applications, max_applications)
        for applications in range(start_applications, max_applications + 1):
            candidate = self.decompose(target, applications)
            if best is None or candidate.fidelity > best.fidelity:
                best = candidate
            if candidate.fidelity >= self._threshold:
                return candidate
        assert best is not None
        return best

    def build_circuit(self, parameters: np.ndarray, applications: int) -> QuantumCircuit:
        """Materialise the optimised template as a two-qubit circuit."""
        layers = np.asarray(parameters, dtype=float).reshape(applications + 1, 6)
        circuit = QuantumCircuit(2, name=f"{self._basis_gate.name}_template_{applications}")
        circuit.append(U3Gate(*layers[0, :3]), (0,))
        circuit.append(U3Gate(*layers[0, 3:]), (1,))
        for layer in range(1, applications + 1):
            circuit.append(self._basis_gate, (0, 1))
            circuit.append(U3Gate(*layers[layer, :3]), (0,))
            circuit.append(U3Gate(*layers[layer, 3:]), (1,))
        return circuit


def decomposition_fidelity_curve(
    basis_gate: Gate,
    targets: Sequence[np.ndarray],
    applications_range: Sequence[int],
    **decomposer_kwargs,
) -> List[Tuple[int, float]]:
    """Average decomposition infidelity vs. template size ``k``.

    This is the data behind paper Fig. 15 (top left): for each ``k``, the
    mean ``1 - F_d`` over the supplied targets.
    """
    decomposer = TemplateDecomposer(basis_gate, **decomposer_kwargs)
    curve: List[Tuple[int, float]] = []
    for applications in applications_range:
        infidelities = [
            decomposer.decompose(target, applications).infidelity
            for target in targets
        ]
        curve.append((int(applications), float(np.mean(infidelities))))
    return curve
