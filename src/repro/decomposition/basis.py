"""Basis-gate specifications for the co-design study.

A :class:`BasisGateSpec` bundles everything the transpiler and the fidelity
models need to know about a hardware-native two-qubit gate:

* the concrete :class:`~repro.circuits.gate.Gate` it instantiates,
* the coverage rule (how many applications an arbitrary two-qubit unitary
  requires),
* its relative pulse duration (an ``n``-th-root iSWAP lasts ``1/n`` of a
  full iSWAP — paper Eq. 9 and Section 6.3),
* the modulator that produces it (CR -> CNOT, fSim coupler -> SYC,
  SNAIL -> n-root iSWAP), for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict

import numpy as np

from repro.circuits.gate import Gate
from repro.decomposition import coverage
from repro.gates import CXGate, ISwapGate, NthRootISwapGate, SqrtISwapGate, SycamoreGate
from repro.linalg.weyl import WeylCoordinates


@dataclass(frozen=True)
class BasisGateSpec:
    """Description of a hardware-native two-qubit basis gate."""

    name: str
    modulator: str
    gate_factory: Callable[[], Gate]
    count_fn: Callable[[WeylCoordinates], int]
    pulse_duration: float

    def gate(self) -> Gate:
        """A fresh instance of the basis gate."""
        return self.gate_factory()

    def matrix(self) -> np.ndarray:
        """Unitary of the basis gate."""
        return self.gate_factory().matrix()

    def count(self, target) -> int:
        """Applications needed for ``target`` (coords or 4x4 unitary)."""
        return self.count_fn(target)

    def duration_for(self, target) -> float:
        """Total pulse duration (in iSWAP units) to realise ``target``."""
        return self.count(target) * self.pulse_duration

    def __str__(self) -> str:
        return self.name


def cx_basis() -> BasisGateSpec:
    """CNOT basis produced by the CR modulator (IBM machines)."""
    return BasisGateSpec(
        name="cx",
        modulator="CR",
        gate_factory=CXGate,
        count_fn=coverage.cnot_count,
        pulse_duration=1.0,
    )


def sqiswap_basis() -> BasisGateSpec:
    """sqrt(iSWAP) basis produced by the SNAIL modulator."""
    return BasisGateSpec(
        name="siswap",
        modulator="SNAIL",
        gate_factory=SqrtISwapGate,
        count_fn=coverage.sqiswap_count,
        pulse_duration=0.5,
    )


def syc_basis() -> BasisGateSpec:
    """SYC (fSim(pi/2, pi/6)) basis produced by Google's tunable coupler."""
    return BasisGateSpec(
        name="syc",
        modulator="FSIM",
        gate_factory=SycamoreGate,
        count_fn=coverage.syc_count,
        pulse_duration=1.0,
    )


def _nth_root_iswap_count(target, n: int) -> int:
    """Module-level coverage rule so the resulting spec stays picklable."""
    return coverage.nth_root_iswap_count(target, n)


def iswap_basis() -> BasisGateSpec:
    """Full iSWAP basis (n = 1), mostly used by the sensitivity study."""
    return BasisGateSpec(
        name="iswap",
        modulator="SNAIL",
        gate_factory=ISwapGate,
        count_fn=partial(_nth_root_iswap_count, n=1),
        pulse_duration=1.0,
    )


def nth_root_iswap_basis(n: int) -> BasisGateSpec:
    """``n``-th-root iSWAP basis (SNAIL), pulse duration ``1/n``.

    The factory and coverage rule are built with :func:`functools.partial`
    on module-level callables (not closures) so that backends using these
    bases can be shipped to the worker processes of the experiment runner.
    """
    if n < 1:
        raise ValueError("root index must be positive")
    if n == 2:
        return sqiswap_basis()
    if n == 1:
        return iswap_basis()
    return BasisGateSpec(
        name=f"iswap_root{n}",
        modulator="SNAIL",
        gate_factory=partial(NthRootISwapGate, n),
        count_fn=partial(_nth_root_iswap_count, n=n),
        pulse_duration=1.0 / n,
    )


def get_basis(name: str) -> BasisGateSpec:
    """Look up a basis spec by name."""
    registry: Dict[str, Callable[[], BasisGateSpec]] = {
        "cx": cx_basis,
        "cnot": cx_basis,
        "siswap": sqiswap_basis,
        "sqiswap": sqiswap_basis,
        "sqrt_iswap": sqiswap_basis,
        "syc": syc_basis,
        "sycamore": syc_basis,
        "iswap": iswap_basis,
    }
    if name in registry:
        return registry[name]()
    if name.startswith("iswap_root"):
        return nth_root_iswap_basis(int(name[len("iswap_root"):]))
    raise ValueError(f"unknown basis gate {name!r}")
