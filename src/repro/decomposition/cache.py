"""Process-global decomposition cache keyed on canonical Weyl coordinates.

Every transpile call used to rebuild its passes — and with them, every
per-pass memo — from scratch, so a sweep over hundreds of (workload, size,
backend) points recomputed the same Weyl coordinates, coverage counts and
synthesized templates over and over.  This module hoists those memos into
bounded process-global caches shared by all
:class:`~repro.transpiler.passes.basis_translation.BasisTranslation`
instances:

* **coordinates** — matrix fingerprint -> :class:`WeylCoordinates`, so a
  repeated two-qubit target hits the KAK/Weyl eigenvalue path exactly once
  per process;
* **counts** — (basis name, canonical Weyl key) -> analytic coverage
  count.  Counts depend only on the local-equivalence class, so CX, CZ and
  CPhase(pi) all share one entry;
* **synthesis** — (basis name, Weyl key, matrix fingerprint) -> optimised
  template circuit.  Synthesised circuits are *not* class-invariant (two
  locally equivalent targets differ by single-qubit dressings), hence the
  extra fingerprint in the key.  Entries are keyed on the *exact* target
  and synthesis configuration, and the optimiser is deterministically
  seeded, so a cache hit returns exactly what a fresh computation would —
  results never depend on process history.

Worker processes of :class:`repro.runtime.ExperimentRunner` each build
their own copy, which keeps the hot path lock-free.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Tuple

import numpy as np

from repro.linalg.cache import LRUCache, matrix_fingerprint
from repro.linalg.weyl import WeylCoordinates, weyl_coordinates

#: Rounding applied to Weyl coordinates before they are used as cache keys;
#: coarse enough to absorb numerical jitter of the eigenvalue path, fine
#: enough that genuinely different interaction classes never collide.
WEYL_KEY_DIGITS = 9

WeylKey = Tuple[float, float, float]


def weyl_key(coordinates: WeylCoordinates, digits: int = WEYL_KEY_DIGITS) -> WeylKey:
    """Hashable canonical-chamber key of a two-qubit interaction class."""
    return (
        round(float(coordinates.x), digits),
        round(float(coordinates.y), digits),
        round(float(coordinates.z), digits),
    )


class DecompositionCache:
    """Bounded caches for the two-qubit decomposition pipeline."""

    def __init__(
        self,
        coordinate_entries: int = 4096,
        count_entries: int = 4096,
        synthesis_entries: int = 512,
    ):
        self._coordinates = LRUCache(maxsize=coordinate_entries)
        self._counts = LRUCache(maxsize=count_entries)
        self._synthesis = LRUCache(maxsize=synthesis_entries)

    # -- Weyl coordinates ---------------------------------------------------

    def coordinates(self, matrix: np.ndarray, fingerprint: Optional[Hashable] = None):
        """Canonical Weyl coordinates of a 4x4 unitary, cached by fingerprint."""
        key = fingerprint if fingerprint is not None else matrix_fingerprint(matrix)
        return self._coordinates.get_or_create(
            key, lambda: weyl_coordinates(np.asarray(matrix, dtype=complex))
        )

    # -- coverage counts ----------------------------------------------------

    def count(
        self,
        basis_name: str,
        coordinates: WeylCoordinates,
        count_fn: Callable[[WeylCoordinates], int],
    ) -> int:
        """Coverage count for one (basis, interaction class) pair."""
        key = (basis_name, weyl_key(coordinates))
        return self._counts.get_or_create(key, lambda: int(count_fn(coordinates)))

    # -- synthesised templates ---------------------------------------------

    @staticmethod
    def _synthesis_key(
        basis_name: str, coordinates: WeylCoordinates, fingerprint: Hashable
    ) -> Tuple[str, WeylKey, Hashable]:
        return (basis_name, weyl_key(coordinates), fingerprint)

    def synthesis(
        self, basis_name: str, coordinates: WeylCoordinates, fingerprint: Hashable
    ):
        """Cached template circuit for an exact target, or ``None``."""
        return self._synthesis.get(
            self._synthesis_key(basis_name, coordinates, fingerprint)
        )

    def store_synthesis(
        self,
        basis_name: str,
        coordinates: WeylCoordinates,
        fingerprint: Hashable,
        circuit,
    ) -> None:
        """Record a synthesised template for an exact target."""
        self._synthesis.put(
            self._synthesis_key(basis_name, coordinates, fingerprint), circuit
        )

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached entry."""
        self._coordinates.clear()
        self._counts.clear()
        self._synthesis.clear()

    def stats(self) -> dict:
        """Per-store hit/miss counters."""
        return {
            "coordinates": self._coordinates.stats(),
            "counts": self._counts.stats(),
            "synthesis": self._synthesis.stats(),
        }


#: The cache shared by every BasisTranslation pass in this process.
GLOBAL_DECOMPOSITION_CACHE = DecompositionCache()


def clear_decomposition_cache() -> None:
    """Reset the process-global decomposition cache (tests, benchmarks)."""
    GLOBAL_DECOMPOSITION_CACHE.clear()


def decomposition_cache_stats() -> dict:
    """Counters of the process-global decomposition cache."""
    return GLOBAL_DECOMPOSITION_CACHE.stats()
