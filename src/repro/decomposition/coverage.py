"""Basis-gate coverage rules: how many basis applications a 2Q unitary needs.

The paper's evaluation counts, for every two-qubit unitary left after
routing, the number of native basis-gate pulses required to implement it
(Section 3.1, Observation 1).  Those counts are functions of the target's
canonical (Weyl) coordinates only:

* **CNOT / CX** (CR modulator): 3 applications always suffice; 2 suffice
  exactly when the third coordinate vanishes; 1 when the target is in the
  CNOT class; 0 when it is local [Vidal & Dawson; Shende et al.].
* **sqrt(iSWAP)** (SNAIL modulator): 3 always suffice; 2 suffice exactly on
  the coverage set ``x >= y + |z|`` [Huang et al., "Towards ultra-high
  fidelity quantum operations: SQiSW gate as a native two-qubit gate"],
  which contains the CNOT class but not SWAP — the source of the paper's
  "slight information theoretic advantage" of sqrt(iSWAP) over CNOT.
* **SYC** (Google fSim(pi/2, pi/6)): the best known analytic decomposition
  of an arbitrary two-qubit gate uses exactly 4 applications (paper
  Observation 1, citing Crooks).  For targets cheaper than fully generic we
  model the cost as one application more than the CNOT cost, capped at 4,
  which matches the paper's qualitative statement that SYC behaves like
  CNOT "plus a scaling factor".  The named special cases are checked
  numerically in the test-suite.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.linalg.weyl import (
    CNOT_CLASS,
    SQRT_ISWAP_CLASS,
    WeylCoordinates,
    nth_root_iswap_class,
    weyl_coordinates,
)

_DEFAULT_ATOL = 1e-6

CoordinatesLike = Union[WeylCoordinates, np.ndarray]


def _as_coordinates(target: CoordinatesLike) -> WeylCoordinates:
    """Accept either canonical coordinates or a 4x4 unitary."""
    if isinstance(target, WeylCoordinates):
        return target
    return weyl_coordinates(np.asarray(target, dtype=complex))


def cnot_count(target: CoordinatesLike, atol: float = _DEFAULT_ATOL) -> int:
    """Number of CNOT applications required for ``target``."""
    coords = _as_coordinates(target)
    if coords.is_local(atol):
        return 0
    if coords.equals(CNOT_CLASS, atol):
        return 1
    if abs(coords.z) <= atol:
        return 2
    return 3


def sqiswap_count(target: CoordinatesLike, atol: float = _DEFAULT_ATOL) -> int:
    """Number of sqrt(iSWAP) applications required for ``target``."""
    coords = _as_coordinates(target)
    if coords.is_local(atol):
        return 0
    if coords.equals(SQRT_ISWAP_CLASS, atol):
        return 1
    if coords.x + atol >= coords.y + abs(coords.z):
        return 2
    return 3


def syc_count(target: CoordinatesLike, atol: float = _DEFAULT_ATOL) -> int:
    """Number of SYC applications required for ``target`` (modelled).

    See the module docstring: 4 for the generic case, CNOT-count + 1 for
    cheaper targets, 1 for the SYC class itself, 0 for local targets.
    """
    coords = _as_coordinates(target)
    if coords.is_local(atol):
        return 0
    if coords.equals(syc_class(), atol):
        return 1
    return min(cnot_count(coords, atol) + 1, 4)


def nth_root_iswap_count(
    target: CoordinatesLike, n: int, atol: float = _DEFAULT_ATOL
) -> int:
    """Lower-bound style count for the ``n``-th root of iSWAP (n >= 2).

    For ``n == 2`` this is the exact sqrt(iSWAP) rule.  For ``n > 2`` no
    analytic decomposition is known (paper Section 6.3); we return the
    interaction-strength lower bound ``ceil(n * required_iswap_fraction)``
    where the required fraction comes from the coordinate sum — the
    approximate template engine in
    :mod:`repro.decomposition.approximate` then determines the achievable
    count numerically (typically the bound plus one).
    """
    if n < 1:
        raise ValueError("root index must be a positive integer")
    coords = _as_coordinates(target)
    if coords.is_local(atol):
        return 0
    if coords.equals(nth_root_iswap_class(n), atol):
        return 1
    if n == 2:
        return sqiswap_count(coords, atol)
    # Each application contributes at most pi/(4n) to x + y (and nothing to
    # the reachable |z| beyond what x, y allow), so the total interaction
    # needed bounds the count from below.
    per_application = np.pi / (4.0 * n)
    required = (coords.x + coords.y + abs(coords.z)) / (2.0 * per_application)
    return max(2, int(np.ceil(required - atol)))


_SYC_CLASS_CACHE: WeylCoordinates = None


def syc_class() -> WeylCoordinates:
    """Canonical Weyl class of the SYC gate (computed once from its matrix)."""
    global _SYC_CLASS_CACHE
    if _SYC_CLASS_CACHE is None:
        from repro.gates import SycamoreGate

        _SYC_CLASS_CACHE = weyl_coordinates(SycamoreGate().matrix())
    return _SYC_CLASS_CACHE


def basis_count(target: CoordinatesLike, basis_name: str, atol: float = _DEFAULT_ATOL) -> int:
    """Dispatch by basis name ('cx', 'siswap', 'syc', 'iswap_root<n>')."""
    if basis_name in ("cx", "cnot", "cz"):
        return cnot_count(target, atol)
    if basis_name in ("siswap", "sqiswap", "sqrt_iswap"):
        return sqiswap_count(target, atol)
    if basis_name in ("syc", "sycamore", "fsim"):
        return syc_count(target, atol)
    if basis_name.startswith("iswap_root"):
        return nth_root_iswap_count(target, int(basis_name[len("iswap_root"):]), atol)
    if basis_name == "iswap":
        return nth_root_iswap_count(target, 1, atol)
    raise ValueError(f"unknown basis gate {basis_name!r}")


def expected_haar_average(basis_name: str, samples: int = 200, seed: int = 7) -> float:
    """Average basis count over Haar-random two-qubit unitaries.

    Reproduces the information-theoretic comparison of Observation 1:
    sqrt(iSWAP) needs 2 applications far more often than CNOT does.
    """
    from repro.linalg.random import random_unitary

    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(samples):
        unitary = random_unitary(4, rng)
        total += basis_count(unitary, basis_name)
    return total / samples
