"""Exact translation rules for named gates.

These are the closed-form substitution rules the transpiler's synthesis
mode uses for the common named gates (the counterpart of the paper's
"closed-form substitution rules", Section 2.3).  Each rule returns a small
:class:`~repro.circuits.circuit.QuantumCircuit` on two (or three) qubits
that implements the source gate exactly — verified by the unitary
simulator in the test-suite.
"""

from __future__ import annotations


from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate


def swap_to_cx() -> QuantumCircuit:
    """SWAP = 3 alternating CNOTs."""
    circuit = QuantumCircuit(2, name="swap_to_cx")
    circuit.cx(0, 1)
    circuit.cx(1, 0)
    circuit.cx(0, 1)
    return circuit


def cz_to_cx() -> QuantumCircuit:
    """CZ = H(target) CX H(target)."""
    circuit = QuantumCircuit(2, name="cz_to_cx")
    circuit.h(1)
    circuit.cx(0, 1)
    circuit.h(1)
    return circuit


def cx_to_cz() -> QuantumCircuit:
    """CX = H(target) CZ H(target)."""
    circuit = QuantumCircuit(2, name="cx_to_cz")
    circuit.h(1)
    circuit.cz(0, 1)
    circuit.h(1)
    return circuit


def cphase_to_cx(lam: float) -> QuantumCircuit:
    """Controlled-phase via two CNOTs and three phase rotations."""
    circuit = QuantumCircuit(2, name="cp_to_cx")
    circuit.rz(lam / 2.0, 0)
    circuit.cx(0, 1)
    circuit.rz(-lam / 2.0, 1)
    circuit.cx(0, 1)
    circuit.rz(lam / 2.0, 1)
    return circuit


def rzz_to_cx(theta: float) -> QuantumCircuit:
    """exp(-i theta/2 ZZ) via CX - Rz - CX."""
    circuit = QuantumCircuit(2, name="rzz_to_cx")
    circuit.cx(0, 1)
    circuit.rz(theta, 1)
    circuit.cx(0, 1)
    return circuit


def rxx_to_cx(theta: float) -> QuantumCircuit:
    """exp(-i theta/2 XX) via Hadamard conjugation of the ZZ rule."""
    circuit = QuantumCircuit(2, name="rxx_to_cx")
    circuit.h(0)
    circuit.h(1)
    circuit.cx(0, 1)
    circuit.rz(theta, 1)
    circuit.cx(0, 1)
    circuit.h(0)
    circuit.h(1)
    return circuit


def iswap_to_cx() -> QuantumCircuit:
    """iSWAP via two CNOTs and Clifford single-qubit gates.

    iSWAP = (S (x) S) (H (x) I) CX(0,1) CX(1,0) (I (x) H).
    """
    circuit = QuantumCircuit(2, name="iswap_to_cx")
    circuit.s(0)
    circuit.s(1)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 0)
    circuit.h(1)
    return circuit


def ccx_to_cx() -> QuantumCircuit:
    """Standard 6-CNOT Toffoli decomposition (qubits: control0, control1, target)."""
    circuit = QuantumCircuit(3, name="ccx_to_cx")
    circuit.h(2)
    circuit.cx(1, 2)
    circuit.tdg(2)
    circuit.cx(0, 2)
    circuit.t(2)
    circuit.cx(1, 2)
    circuit.tdg(2)
    circuit.cx(0, 2)
    circuit.t(1)
    circuit.t(2)
    circuit.h(2)
    circuit.cx(0, 1)
    circuit.t(0)
    circuit.tdg(1)
    circuit.cx(0, 1)
    return circuit


def expand_named_gate(gate: Gate) -> QuantumCircuit:
    """Expand a named multi-qubit gate into 1Q + CX gates.

    Used by the pre-routing pass that removes gates on three or more
    qubits; raises for gates without a registered rule.
    """
    name = gate.name
    if name == "ccx":
        return ccx_to_cx()
    if name == "swap":
        return swap_to_cx()
    if name == "cz":
        return cz_to_cx()
    if name == "cp":
        return cphase_to_cx(gate.params[0])
    if name == "rzz":
        return rzz_to_cx(gate.params[0])
    if name == "rxx":
        return rxx_to_cx(gate.params[0])
    if name == "iswap":
        return iswap_to_cx()
    raise ValueError(f"no exact expansion rule registered for gate {name!r}")
