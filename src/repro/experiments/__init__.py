"""Experiment harness: one module per paper table / figure."""

from repro.experiments.tables import (
    TableComparison,
    format_table_comparison,
    table1,
    table2,
)
from repro.experiments.swap_study import (
    FIG4_TOPOLOGIES,
    FIG11_TOPOLOGIES,
    FIG12_TOPOLOGIES,
    figure4_study,
    figure11_study,
    figure12_study,
    format_swap_report,
    swap_series,
    swap_study,
)
from repro.experiments.gate_study import (
    codesign_study,
    figure13_study,
    figure14_study,
    format_gate_report,
    gate_series,
)
from repro.experiments.headline import (
    HeadlineRatios,
    format_headline_report,
    headline_study,
)
from repro.experiments.sensitivity_study import figure15_study, reduction_comparison
from repro.experiments.chevron_study import chevron_summary, figure6_study
from repro.experiments.corral_scaling import (
    CorralScalingRow,
    corral_scaling_study,
    format_corral_scaling,
)
from repro.experiments.frequency_study import (
    FrequencyStudyRow,
    feasible_modulators,
    format_frequency_report,
    frequency_crowding_study,
)
from repro.experiments.scheduling_study import (
    SchedulingStudyRow,
    duration_series,
    format_scheduling_report,
    scheduling_study,
)
from repro.experiments import paper_values

__all__ = [
    "TableComparison",
    "format_table_comparison",
    "table1",
    "table2",
    "FIG4_TOPOLOGIES",
    "FIG11_TOPOLOGIES",
    "FIG12_TOPOLOGIES",
    "figure4_study",
    "figure11_study",
    "figure12_study",
    "format_swap_report",
    "swap_series",
    "swap_study",
    "codesign_study",
    "figure13_study",
    "figure14_study",
    "format_gate_report",
    "gate_series",
    "HeadlineRatios",
    "format_headline_report",
    "headline_study",
    "figure15_study",
    "reduction_comparison",
    "chevron_summary",
    "figure6_study",
    "CorralScalingRow",
    "corral_scaling_study",
    "format_corral_scaling",
    "FrequencyStudyRow",
    "feasible_modulators",
    "format_frequency_report",
    "frequency_crowding_study",
    "SchedulingStudyRow",
    "duration_series",
    "format_scheduling_report",
    "scheduling_study",
    "paper_values",
]
