"""Experiment: Fig. 6 — parametrically driven qubit-qubit exchange chevron."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.snailsim.chevron import ChevronData, chevron_sweep
from repro.snailsim.device import SnailExchangeModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


def figure6_study(
    coupling_mhz: float = 0.5,
    t1_us: float = 30.0,
    max_pulse_ns: float = 2000.0,
    detuning_span_mhz: float = 1.5,
    pulse_points: int = 161,
    detuning_points: int = 41,
    runner: Optional["ExperimentRunner"] = None,
) -> ChevronData:
    """Regenerate a Fig.-6-style chevron dataset from the device model.

    The paper's figure sweeps pulse lengths up to ~2000 ns and pump
    detunings of +/-1.5 MHz; the defaults here match those axes.
    """
    model = SnailExchangeModel(coupling_mhz=coupling_mhz, t1_us=t1_us)
    return chevron_sweep(
        model,
        pulse_lengths_ns=np.linspace(0.0, max_pulse_ns, pulse_points),
        detunings_mhz=np.linspace(-detuning_span_mhz, detuning_span_mhz, detuning_points),
        runner=runner,
    )


def chevron_summary(data: ChevronData) -> str:
    """Scalar summary used by the benchmark output."""
    period = data.oscillation_period_ns()
    source, target = data.on_resonance_slice()
    max_transfer = float(np.max(1.0 - target))
    return (
        f"on-resonance exchange period ~ {period:.0f} ns; "
        f"peak transferred population {max_transfer:.3f}; "
        f"grid {data.source_population.shape[0]} detunings x "
        f"{data.source_population.shape[1]} pulse lengths"
    )
