"""Extension experiment: scaling the Corral beyond the paper's 16 qubits.

The paper's conclusion lists "exploring methods to scale Corral ... to
compete with aspirational hypercube topologies for larger qubit numbers"
as future work.  The Corral construction in this library already scales by
adding posts to the ring, so this experiment quantifies how the scaled
Corral compares, structurally and on Quantum Volume routing cost, against
a hypercube trimmed to the same number of qubits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import run_point
from repro.transpiler.target import make_target
from repro.topology.analysis import topology_properties
from repro.topology.lattices import trimmed_hypercube
from repro.topology.snail import corral_topology
from repro.workloads.registry import QUANTUM_VOLUME

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


@dataclass(frozen=True)
class CorralScalingRow:
    """One ring size of the scaling study."""

    num_posts: int
    num_qubits: int
    corral_diameter: float
    corral_avg_connectivity: float
    hypercube_diameter: float
    hypercube_avg_connectivity: float
    corral_qv_swaps: int
    hypercube_qv_swaps: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "posts": self.num_posts,
            "qubits": self.num_qubits,
            "corral_diameter": self.corral_diameter,
            "corral_avg_connectivity": self.corral_avg_connectivity,
            "hypercube_diameter": self.hypercube_diameter,
            "hypercube_avg_connectivity": self.hypercube_avg_connectivity,
            "corral_qv_swaps": self.corral_qv_swaps,
            "hypercube_qv_swaps": self.hypercube_qv_swaps,
        }


def _scaling_row(
    posts: int, strides: Tuple[int, int], qv_fraction: float, seed: int
) -> CorralScalingRow:
    """One ring size of the study (module-level so it pickles to workers)."""
    num_qubits = 2 * posts
    corral = corral_topology(posts, strides, name=f"Corral-{posts}posts")
    cube = trimmed_hypercube(num_qubits, name=f"Hypercube-{num_qubits}")
    corral_props = topology_properties(corral)
    cube_props = topology_properties(cube)
    qv_width = max(4, int(round(qv_fraction * num_qubits)))
    corral_metrics = run_point(
        QUANTUM_VOLUME, qv_width, make_target(corral, "siswap"), seed=seed
    )
    cube_metrics = run_point(
        QUANTUM_VOLUME, qv_width, make_target(cube, "siswap"), seed=seed
    )
    return CorralScalingRow(
        num_posts=posts,
        num_qubits=num_qubits,
        corral_diameter=corral_props.diameter,
        corral_avg_connectivity=corral_props.average_connectivity,
        hypercube_diameter=cube_props.diameter,
        hypercube_avg_connectivity=cube_props.average_connectivity,
        corral_qv_swaps=corral_metrics.total_swaps,
        hypercube_qv_swaps=cube_metrics.total_swaps,
    )


def corral_scaling_study(
    post_counts: Sequence[int] = (8, 12, 16, 20),
    strides: Tuple[int, int] = (1, 3),
    qv_fraction: float = 0.75,
    seed: int = 13,
    runner: Optional["ExperimentRunner"] = None,
) -> List[CorralScalingRow]:
    """Compare scaled Corrals against equally sized trimmed hypercubes.

    Args:
        post_counts: ring sizes to evaluate (``2 * posts`` qubits each).
        strides: corral rail strides (the registry's Corral(1,2) instance).
        qv_fraction: the QV circuit width as a fraction of the machine size.
        seed: transpilation seed.
        runner: optional runner fanning the ring sizes out over workers.
    """
    tasks = [
        (int(posts), tuple(strides), float(qv_fraction), int(seed))
        for posts in post_counts
    ]
    labels = [f"corral-{posts}posts" for posts in post_counts]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    return runner.map(_scaling_row, tasks, labels=labels)


def format_corral_scaling(rows: Sequence[CorralScalingRow]) -> str:
    """Fixed-width rendering of the scaling study."""
    header = (
        f"{'posts':>6}{'qubits':>8}{'corral dia':>12}{'cube dia':>10}"
        f"{'corral avgC':>13}{'cube avgC':>11}{'corral QV swaps':>17}{'cube QV swaps':>15}"
    )
    lines = ["Corral scaling study (future-work extension)", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.num_posts:>6}{row.num_qubits:>8}{row.corral_diameter:>12.1f}"
            f"{row.hypercube_diameter:>10.1f}{row.corral_avg_connectivity:>13.2f}"
            f"{row.hypercube_avg_connectivity:>11.2f}{row.corral_qv_swaps:>17}"
            f"{row.hypercube_qv_swaps:>15}"
        )
    return "\n".join(lines)
