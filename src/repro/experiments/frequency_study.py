"""Frequency-crowding study (extension of paper Sections 2.4 / 4.1).

The paper argues qualitatively that the SNAIL's wide pump band is what
makes rich topologies (Tree, Corral, hypercube-like connectivity) physically
allocatable, while the CR and fSim schemes crowd as connectivity grows —
the reason IBM retreated to Heavy-Hex.  This experiment quantifies that
argument: for every (topology, modulator) pair it runs the greedy tone
allocator and reports whether a collision-free frequency plan exists, how
many couplings collide, and how much of the band is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.frequency.allocation import allocate_frequencies
from repro.frequency.modulators import ModulatorSpec, get_modulator
from repro.topology.registry import large_topologies, small_topologies

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner

#: Modulators compared in the study, in paper order.
STUDY_MODULATORS = ("CR", "FSIM", "SNAIL")


@dataclass(frozen=True)
class FrequencyStudyRow:
    """One (topology, modulator) cell of the crowding table."""

    topology: str
    modulator: str
    num_qubits: int
    num_edges: int
    max_degree: int
    feasible: bool
    collisions: int
    collision_fraction: float
    bandwidth_used: float
    crowding_score: float


def _study_topology(
    scale: str, name: str, modulators: Sequence[str], grid_step: float
) -> List[FrequencyStudyRow]:
    """All modulator rows of one topology (module-level for pickling)."""
    registry = small_topologies() if scale == "small" else large_topologies()
    coupling_map = registry[name]
    max_degree = max(coupling_map.degree(q) for q in range(coupling_map.num_qubits))
    rows: List[FrequencyStudyRow] = []
    for modulator_name in modulators:
        spec: ModulatorSpec = get_modulator(modulator_name)
        plan = allocate_frequencies(coupling_map, spec, grid_step=grid_step)
        rows.append(
            FrequencyStudyRow(
                topology=name,
                modulator=spec.name,
                num_qubits=coupling_map.num_qubits,
                num_edges=coupling_map.num_edges(),
                max_degree=max_degree,
                feasible=plan.is_feasible,
                collisions=len(plan.collisions),
                collision_fraction=plan.collision_fraction(),
                bandwidth_used=plan.bandwidth_used(),
                crowding_score=plan.crowding_score(),
            )
        )
    return rows


def frequency_crowding_study(
    scale: str = "small",
    topologies: Optional[Sequence[str]] = None,
    modulators: Sequence[str] = STUDY_MODULATORS,
    grid_step: float = 0.01,
    runner: Optional["ExperimentRunner"] = None,
) -> List[FrequencyStudyRow]:
    """Allocate pump tones for every (topology, modulator) pair at one scale."""
    registry = small_topologies() if scale == "small" else large_topologies()
    names = list(topologies or sorted(registry))
    tasks = [(scale, name, tuple(modulators), float(grid_step)) for name in names]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    per_topology = runner.map(_study_topology, tasks, labels=list(names))
    return [row for rows in per_topology for row in rows]


def feasible_modulators(rows: Sequence[FrequencyStudyRow]) -> Dict[str, List[str]]:
    """Topology -> list of modulators that allocate it without collisions."""
    result: Dict[str, List[str]] = {}
    for row in rows:
        result.setdefault(row.topology, [])
        if row.feasible:
            result[row.topology].append(row.modulator)
    return result


def format_frequency_report(rows: Sequence[FrequencyStudyRow]) -> str:
    """Text table: one row per (topology, modulator)."""
    header = (
        f"{'topology':<22}{'modulator':<10}{'qubits':>7}{'edges':>7}{'maxdeg':>7}"
        f"{'feasible':>10}{'collisions':>12}{'bandwidth':>11}{'crowding':>10}"
    )
    lines = ["Frequency-crowding study", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.topology:<22}{row.modulator:<10}{row.num_qubits:>7}{row.num_edges:>7}"
            f"{row.max_degree:>7}{str(row.feasible):>10}{row.collisions:>12}"
            f"{row.bandwidth_used:>11.2f}{row.crowding_score:>10.2f}"
        )
    return "\n".join(lines)
