"""Experiments: co-design 2Q-gate-count studies (paper Figs. 13 and 14).

After routing, every two-qubit unitary (including the induced SWAPs) is
decomposed into the machine's native basis, and the paper reports total
2Q basis-gate counts ("total 2Q count") and critical-path 2Q counts
("pulse duration") as a function of circuit size for each co-designed
(topology, basis) pairing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.codesign import LARGE_DESIGN_POINTS, SMALL_DESIGN_POINTS, CodesignPoint
from repro.core.pipeline import SweepResult, run_sweep
from repro.experiments.swap_study import default_sizes
from repro.workloads.registry import PAPER_WORKLOADS

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


def codesign_study(
    scale: str,
    design_points: Optional[Sequence[CodesignPoint]] = None,
    workloads: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 11,
    routing_method: str = "sabre",
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Run the co-design grid at the requested scale."""
    if design_points is None:
        design_points = SMALL_DESIGN_POINTS if scale == "small" else LARGE_DESIGN_POINTS
    targets = [point.target(scale) for point in design_points]
    workloads = list(workloads or PAPER_WORKLOADS)
    sizes = list(sizes or default_sizes(scale))
    return run_sweep(
        workloads,
        sizes,
        targets,
        seed=seed,
        routing_method=routing_method,
        runner=runner,
    )


def figure13_study(**overrides) -> SweepResult:
    """Paper Fig. 13: 16-20 qubit co-design points."""
    return codesign_study("small", **overrides)


def figure14_study(**overrides) -> SweepResult:
    """Paper Fig. 14: 84-qubit co-design points."""
    return codesign_study("large", **overrides)


def gate_series(result: SweepResult, workload: str, metric: str) -> Dict[str, List[tuple]]:
    """Per-design-point series of ``metric`` vs. circuit size for a workload.

    ``metric`` is ``"total_2q"`` (figure top rows), ``"critical_2q"``
    (bottom rows / pulse duration) or ``"weighted_duration"`` (pulse-length
    weighted variant).
    """
    filtered = SweepResult(
        [record for record in result if record.extra.get("workload") == workload]
    )
    return filtered.series("backend", "circuit_qubits", metric)


def format_gate_report(result: SweepResult, metric: str = "total_2q") -> str:
    """Text rendering: one block per workload, one row per design point."""
    workloads = sorted({record.extra.get("workload") for record in result})
    lines = []
    for workload in workloads:
        lines.append(f"== {workload} ({metric}) ==")
        series = gate_series(result, workload, metric)
        sizes = sorted({x for values in series.values() for x, _ in values})
        header = f"{'design point':<26}" + "".join(f"{size:>9}" for size in sizes)
        lines.append(header)
        for label, values in sorted(series.items()):
            by_size = dict(values)
            cells = "".join(f"{by_size.get(size, ''):>9}" for size in sizes)
            lines.append(f"{label:<26}{cells}")
        lines.append("")
    return "\n".join(lines)
