"""Experiment: the paper's headline aggregate ratios.

The abstract and Section 6.1 summarise the evaluation with a handful of
ratios averaged over Quantum Volume circuits from 16 to 80 qubits:

* Hypercube needs 2.57x fewer total SWAPs and 5.63x fewer critical-path
  SWAPs than Heavy-Hex (topology-only comparison);
* Hypercube + sqrt(iSWAP) needs 3.16x fewer total 2Q gates and 6.11x fewer
  duration-dependent (critical-path) 2Q gates than Heavy-Hex + CNOT (the
  full co-design comparison).

This module recomputes those aggregates from the reproduction's own sweep
data so they can be placed next to the paper's numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner

from repro.core.pipeline import SweepResult, run_sweep
from repro.transpiler.target import make_target
from repro.experiments.paper_values import HEADLINE_RATIOS
from repro.experiments.swap_study import LARGE_SIZES_FULL, LARGE_SIZES_QUICK, full_runs_enabled
from repro.topology.registry import HEAVY_HEX, HYPERCUBE, large_topologies
from repro.workloads.registry import QUANTUM_VOLUME


@dataclass(frozen=True)
class HeadlineRatios:
    """Measured aggregate ratios with the paper's values alongside."""

    total_swaps_ratio: float
    critical_swaps_ratio: float
    total_2q_ratio: float
    critical_2q_ratio: float
    sizes: tuple

    def as_dict(self) -> Dict[str, float]:
        return {
            "hypercube_vs_heavyhex_total_swaps": self.total_swaps_ratio,
            "hypercube_vs_heavyhex_critical_swaps": self.critical_swaps_ratio,
            "hypercube_siswap_vs_heavyhex_cx_total_2q": self.total_2q_ratio,
            "hypercube_siswap_vs_heavyhex_cx_critical_2q": self.critical_2q_ratio,
        }

    def compared_to_paper(self) -> Dict[str, Dict[str, float]]:
        """Measured vs. paper values for every headline ratio."""
        measured = self.as_dict()
        return {
            key: {"measured": measured[key], "paper": HEADLINE_RATIOS[key]}
            for key in measured
        }


def _mean_ratio(
    result: SweepResult, metric: str, numerator_backend: str, denominator_backend: str
) -> float:
    """Geometric-mean-free average of per-size ratios numerator/denominator."""
    numerator = {
        record.circuit_qubits: record.as_dict()[metric]
        for record in result
        if record.extra.get("backend") == numerator_backend
    }
    denominator = {
        record.circuit_qubits: record.as_dict()[metric]
        for record in result
        if record.extra.get("backend") == denominator_backend
    }
    ratios = [
        numerator[size] / denominator[size]
        for size in numerator
        if size in denominator and denominator[size] > 0
    ]
    if not ratios:
        raise ValueError(f"no overlapping sizes for metric {metric}")
    return float(np.mean(ratios))


def headline_study(
    sizes: Optional[Sequence[int]] = None,
    seed: int = 11,
    runner: Optional["ExperimentRunner"] = None,
) -> HeadlineRatios:
    """Recompute the paper's headline QV ratios (Heavy-Hex vs Hypercube)."""
    if sizes is None:
        sizes = LARGE_SIZES_FULL if full_runs_enabled() else LARGE_SIZES_QUICK
    registry = large_topologies()
    targets = [
        make_target(registry[HEAVY_HEX], "cx", name="Heavy-Hex-CX"),
        make_target(registry[HYPERCUBE], "siswap", name="Hypercube-siswap"),
    ]
    result = run_sweep([QUANTUM_VOLUME], sizes, targets, seed=seed, runner=runner)
    return HeadlineRatios(
        total_swaps_ratio=_mean_ratio(
            result, "total_swaps", "Heavy-Hex-CX", "Hypercube-siswap"
        ),
        critical_swaps_ratio=_mean_ratio(
            result, "critical_swaps", "Heavy-Hex-CX", "Hypercube-siswap"
        ),
        total_2q_ratio=_mean_ratio(
            result, "total_2q", "Heavy-Hex-CX", "Hypercube-siswap"
        ),
        critical_2q_ratio=_mean_ratio(
            result, "critical_2q", "Heavy-Hex-CX", "Hypercube-siswap"
        ),
        sizes=tuple(sizes),
    )


def format_headline_report(ratios: HeadlineRatios) -> str:
    """Render the measured-vs-paper headline comparison."""
    lines = [
        "Headline ratios (Heavy-Hex+CX relative to Hypercube+sqrt(iSWAP)),",
        f"averaged over Quantum Volume circuits of sizes {list(ratios.sizes)}:",
        "",
        f"{'metric':<46}{'measured':>10}{'paper':>8}",
    ]
    for key, values in ratios.compared_to_paper().items():
        lines.append(f"{key:<46}{values['measured']:>10.2f}{values['paper']:>8.2f}")
    return "\n".join(lines)
