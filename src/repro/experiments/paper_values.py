"""Values reported in the paper, for side-by-side comparison.

These numbers are transcribed from the paper's Tables 1-2, abstract and
Sections 6.1-6.3.  They are *reference points only*: the reproduction's own
numbers come from running the experiment modules, and EXPERIMENTS.md
records both.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Paper Table 1 — (qubits, diameter, avg distance, avg connectivity).
TABLE1: Dict[str, Tuple[int, float, float, float]] = {
    "Heavy-Hex": (20, 8.0, 3.77, 2.1),
    "Hex-Lattice": (20, 7.0, 3.37, 2.45),
    "Square-Lattice": (16, 6.0, 2.5, 3.0),
    "Tree": (20, 3.0, 2.15, 4.6),
    "Tree-RR": (20, 3.0, 2.03, 4.6),
    "Corral1,1": (16, 4.0, 2.06, 5.0),
    "Corral1,2": (16, 2.0, 1.5, 6.0),
    "Hypercube": (16, 4.0, 2.0, 4.0),
}

#: Paper Table 2 — (qubits, diameter, avg distance, avg connectivity).
TABLE2: Dict[str, Tuple[int, float, float, float]] = {
    "Heavy-Hex": (84, 21.0, 8.47, 2.26),
    "Hex-Lattice": (84, 17.0, 6.95, 2.71),
    "Square-Lattice": (84, 17.0, 6.26, 3.55),
    "Lattice+AltDiagonals": (84, 11.0, 4.62, 5.12),
    "Tree": (84, 5.0, 3.91, 4.71),
    "Tree-RR": (84, 5.0, 3.65, 4.71),
    "Hypercube": (84, 7.0, 3.32, 6.0),
}

#: Headline ratios from the abstract / Section 6.1 / conclusion, averaged
#: over Quantum Volume circuits of 16-80 qubits.
HEADLINE_RATIOS: Dict[str, float] = {
    # Hypercube vs Heavy-Hex (topology only, SWAP counts).
    "hypercube_vs_heavyhex_total_swaps": 2.57,
    "hypercube_vs_heavyhex_critical_swaps": 5.63,
    # Hypercube + sqrt(iSWAP) vs Heavy-Hex + CNOT (full co-design, 2Q counts).
    "hypercube_siswap_vs_heavyhex_cx_total_2q": 3.16,
    "hypercube_siswap_vs_heavyhex_cx_critical_2q": 6.11,
    # Heavy-Hex vs other topologies, 80-qubit QAOA critical-path SWAPs.
    "heavyhex_vs_square_critical_swaps_qaoa80": 1.92,
    "heavyhex_vs_altdiag_critical_swaps_qaoa80": 1.53,
    "heavyhex_vs_hypercube_critical_swaps_qaoa80": 2.83,
    # Heavy-Hex -> Tree improvements for 80-qubit QV (Section 6.1).
    "tree_vs_heavyhex_total_swap_reduction_qv80": 0.543,
    "tree_vs_heavyhex_critical_swap_reduction_qv80": 0.798,
    "hypercube_vs_tree_total_swap_reduction_qv80": 0.425,
    "hypercube_vs_tree_critical_swap_reduction_qv80": 0.543,
}

#: Section 6.3: infidelity reduction of the k-th root iSWAP basis versus
#: sqrt(iSWAP) at a 99% iSWAP pulse fidelity.
NROOT_INFIDELITY_REDUCTION: Dict[int, float] = {3: 0.14, 4: 0.25, 5: 0.11}
