"""Duration-aware co-design study (extension of paper Figs. 13-14).

The paper normalises every modulator to "pulse counts" so that engineering
maturity does not bias the comparison (Section 4.2).  This study removes
that normalisation: each design point's transpiled circuits are scheduled
with representative physical gate durations for its modulator
(:class:`~repro.transpiler.scheduling.GateDurations` presets) and scored
with the wall-clock reliability model.  It answers two questions the
normalised figures cannot:

* how long (in nanoseconds) does each design point take to run a workload,
* does the SNAIL co-design advantage survive when Google's much shorter
  fSim pulses are taken at face value?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.codesign import CodesignPoint, design_points
from repro.core.reliability import ReliabilityModel
from repro.transpiler.compile import transpile
from repro.transpiler.scheduling import schedule_asap
from repro.workloads.registry import build_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


@dataclass(frozen=True)
class SchedulingStudyRow:
    """One (design point, workload, size) cell of the duration study."""

    design_point: str
    workload: str
    circuit_qubits: int
    total_2q: int
    critical_2q: int
    duration_ns: float
    average_parallelism: float
    success_probability: float


def _study_design_point(
    scale: str,
    point: CodesignPoint,
    workloads: Sequence[str],
    sizes: Sequence[int],
    model: ReliabilityModel,
    seed: int,
) -> List[SchedulingStudyRow]:
    """All rows of one design point (module-level so it pickles to workers)."""
    target = point.target(scale)
    durations = target.gate_durations()
    rows: List[SchedulingStudyRow] = []
    for workload in workloads:
        for size in sizes:
            if size > target.num_qubits:
                continue
            circuit = build_workload(workload, size, seed=seed)
            estimate = model.estimate(target, circuit, durations=durations, seed=seed)
            schedule = schedule_asap(
                transpile(circuit, target, seed=seed).circuit, durations
            )
            rows.append(
                SchedulingStudyRow(
                    design_point=point.label,
                    workload=workload,
                    circuit_qubits=size,
                    total_2q=estimate.total_2q,
                    critical_2q=estimate.critical_2q,
                    duration_ns=estimate.duration_ns,
                    average_parallelism=schedule.average_parallelism(),
                    success_probability=estimate.success_probability,
                )
            )
    return rows


def scheduling_study(
    scale: str = "small",
    workloads: Sequence[str] = ("QuantumVolume", "GHZ"),
    sizes: Sequence[int] = (8, 12, 16),
    model: Optional[ReliabilityModel] = None,
    seed: int = 5,
    runner: Optional["ExperimentRunner"] = None,
) -> List[SchedulingStudyRow]:
    """Schedule every design point on the workload grid with physical durations."""
    model = model or ReliabilityModel()
    points = design_points(scale)
    tasks = [
        (scale, point, tuple(workloads), tuple(sizes), model, int(seed))
        for point in points
    ]
    labels = [point.label for point in points]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    per_point = runner.map(_study_design_point, tasks, labels=labels)
    return [row for rows in per_point for row in rows]


def duration_series(rows: Sequence[SchedulingStudyRow], workload: str) -> Dict[str, List[tuple]]:
    """Per-design-point (size, duration_ns) series for one workload."""
    series: Dict[str, List[tuple]] = {}
    for row in rows:
        if row.workload != workload:
            continue
        series.setdefault(row.design_point, []).append((row.circuit_qubits, row.duration_ns))
    return {key: sorted(values) for key, values in series.items()}


def format_scheduling_report(rows: Sequence[SchedulingStudyRow]) -> str:
    """Text table: one row per (design point, workload, size)."""
    header = (
        f"{'design point':<22}{'workload':<16}{'qubits':>7}{'2Q':>7}{'crit2Q':>8}"
        f"{'dur(ns)':>10}{'par':>6}{'EPS':>8}"
    )
    lines = ["Duration-aware co-design study", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.design_point:<22}{row.workload:<16}{row.circuit_qubits:>7}"
            f"{row.total_2q:>7}{row.critical_2q:>8}{row.duration_ns:>10.0f}"
            f"{row.average_parallelism:>6.2f}{row.success_probability:>8.3f}"
        )
    return "\n".join(lines)
