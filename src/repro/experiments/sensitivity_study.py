"""Experiment: Fig. 15 — n-th-root iSWAP sensitivity study wrapper.

Thin wrapper over :func:`repro.core.sensitivity.pulse_duration_sensitivity_study`
with the quick/full parameter selection used by the benchmark harness, plus
the comparison against the paper's reported infidelity reductions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.sensitivity import (
    SensitivityStudyResult,
    pulse_duration_sensitivity_study,
)
from repro.experiments.paper_values import NROOT_INFIDELITY_REDUCTION
from repro.experiments.swap_study import full_runs_enabled

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


def figure15_study(
    roots: Optional[Sequence[int]] = None,
    num_targets: Optional[int] = None,
    k_values: Optional[Sequence[int]] = None,
    seed: int = 2022,
    runner: Optional["ExperimentRunner"] = None,
) -> SensitivityStudyResult:
    """Run the Fig.-15 study with quick defaults (full when REPRO_FULL=1).

    The paper uses 50 Haar-random targets and roots 2..7; the quick
    configuration uses 8 targets and roots 2..5, which is enough to see the
    same ordering and crossovers in a few minutes of laptop time.
    """
    if full_runs_enabled():
        roots = roots or (2, 3, 4, 5, 6, 7)
        num_targets = num_targets or 50
        k_values = k_values or tuple(range(2, 9))
    else:
        roots = roots or (2, 3, 4, 5)
        num_targets = num_targets or 8
        k_values = k_values or tuple(range(2, 7))
    return pulse_duration_sensitivity_study(
        roots=roots,
        k_values=k_values,
        num_targets=num_targets,
        seed=seed,
        runner=runner,
    )


def reduction_comparison(result: SensitivityStudyResult) -> Dict[int, Dict[str, float]]:
    """Measured vs. paper infidelity reductions at Fb(iSWAP) = 0.99."""
    measured = result.infidelity_reduction_vs_sqiswap(0.99)
    comparison: Dict[int, Dict[str, float]] = {}
    for root, paper_value in NROOT_INFIDELITY_REDUCTION.items():
        if root in measured:
            comparison[root] = {"measured": measured[root], "paper": paper_value}
    return comparison
