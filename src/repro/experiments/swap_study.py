"""Experiments: SWAP-count studies (paper Figs. 4, 11 and 12).

These studies are *gate-agnostic*: they transpile each workload onto each
topology with a fixed (CNOT) basis and report only the routing-induced
SWAP counts, total and critical-path, as a function of circuit size — the
paper's measure of how efficiently a topology supports data movement.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.pipeline import SweepResult, run_sweep
from repro.transpiler.target import make_target

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner
from repro.topology.registry import (
    CORRAL_1_1,
    CORRAL_1_2,
    HEAVY_HEX,
    HEX_LATTICE,
    HYPERCUBE,
    LATTICE_ALT_DIAG,
    SQUARE_LATTICE,
    TREE,
    TREE_RR,
    large_topologies,
    small_topologies,
)
from repro.workloads.registry import PAPER_WORKLOADS

#: Fig. 4 compares the "standard" topologies at the 84-qubit scale.
FIG4_TOPOLOGIES = [HEAVY_HEX, HEX_LATTICE, SQUARE_LATTICE, LATTICE_ALT_DIAG, HYPERCUBE]

#: Fig. 11 compares the SNAIL-enabled topologies at the 16-qubit scale.
FIG11_TOPOLOGIES = [SQUARE_LATTICE, HYPERCUBE, TREE, TREE_RR, CORRAL_1_1, CORRAL_1_2]

#: Fig. 12 compares SNAIL topologies against the baselines at 84 qubits.
FIG12_TOPOLOGIES = [HEAVY_HEX, SQUARE_LATTICE, TREE, TREE_RR, HYPERCUBE]

#: Circuit sizes of the paper's small-machine figures (x-axis 5..16).
SMALL_SIZES_FULL = tuple(range(5, 17))
SMALL_SIZES_QUICK = (6, 10, 14, 16)

#: Circuit sizes of the paper's scaled figures (x-axis 25..80).
LARGE_SIZES_FULL = (16, 25, 35, 45, 55, 65, 75, 80)
LARGE_SIZES_QUICK = (16, 32)


def full_runs_enabled() -> bool:
    """True when the REPRO_FULL environment variable requests full sweeps."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def default_sizes(scale: str) -> Sequence[int]:
    """Default circuit-size grid (full when REPRO_FULL=1, quick otherwise)."""
    if scale == "small":
        return SMALL_SIZES_FULL if full_runs_enabled() else SMALL_SIZES_QUICK
    return LARGE_SIZES_FULL if full_runs_enabled() else LARGE_SIZES_QUICK


def swap_study(
    scale: str,
    topologies: Sequence[str],
    workloads: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 11,
    routing_method: str = "sabre",
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Transpile the workload grid and collect SWAP metrics.

    The basis gate is irrelevant for SWAP counts (routing happens before
    translation); CX is used as a placeholder.  ``runner`` optionally fans
    the grid points out over a process pool (results are identical).
    """
    registry = small_topologies() if scale == "small" else large_topologies()
    targets = [make_target(registry[name], "cx", name=name) for name in topologies]
    workloads = list(workloads or PAPER_WORKLOADS)
    sizes = list(sizes or default_sizes(scale))
    return run_sweep(
        workloads,
        sizes,
        targets,
        seed=seed,
        routing_method=routing_method,
        runner=runner,
    )


def figure4_study(**overrides) -> SweepResult:
    """Paper Fig. 4: baseline topologies at the 84-qubit scale."""
    return swap_study("large", FIG4_TOPOLOGIES, **overrides)


def figure11_study(**overrides) -> SweepResult:
    """Paper Fig. 11: SNAIL topologies at the 16-qubit scale."""
    return swap_study("small", FIG11_TOPOLOGIES, **overrides)


def figure12_study(**overrides) -> SweepResult:
    """Paper Fig. 12: SNAIL vs. baseline topologies at the 84-qubit scale."""
    return swap_study("large", FIG12_TOPOLOGIES, **overrides)


def swap_series(result: SweepResult, workload: str, metric: str) -> Dict[str, List[tuple]]:
    """Per-topology series of ``metric`` vs. circuit size for one workload.

    ``metric`` is ``"total_swaps"`` (figure top rows) or
    ``"critical_swaps"`` (figure bottom rows).
    """
    filtered = SweepResult(
        [record for record in result if record.extra.get("workload") == workload]
    )
    return filtered.series("topology", "circuit_qubits", metric)


def format_swap_report(result: SweepResult, metric: str = "total_swaps") -> str:
    """Text rendering: one block per workload, one row per topology."""
    workloads = sorted({record.extra.get("workload") for record in result})
    lines = []
    for workload in workloads:
        lines.append(f"== {workload} ({metric}) ==")
        series = swap_series(result, workload, metric)
        sizes = sorted({x for values in series.values() for x, _ in values})
        header = f"{'topology':<22}" + "".join(f"{size:>8}" for size in sizes)
        lines.append(header)
        for topology, values in sorted(series.items()):
            by_size = dict(values)
            cells = "".join(f"{by_size.get(size, ''):>8}" for size in sizes)
            lines.append(f"{topology:<22}{cells}")
        lines.append("")
    return "\n".join(lines)
