"""Experiment: regenerate paper Tables 1 and 2 (topology properties)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.paper_values import TABLE1, TABLE2
from repro.topology.analysis import TopologyProperties, topology_properties
from repro.topology.registry import large_topologies, small_topologies


@dataclass(frozen=True)
class TableComparison:
    """One topology's measured properties next to the paper's values."""

    name: str
    measured: TopologyProperties
    paper: Tuple[int, float, float, float]

    def as_row(self) -> Dict[str, object]:
        paper_qubits, paper_diameter, paper_avgd, paper_avgc = self.paper
        return {
            "name": self.name,
            "qubits": self.measured.num_qubits,
            "diameter": self.measured.diameter,
            "avg_distance": round(self.measured.average_distance, 2),
            "avg_connectivity": round(self.measured.average_connectivity, 2),
            "paper_qubits": paper_qubits,
            "paper_diameter": paper_diameter,
            "paper_avg_distance": paper_avgd,
            "paper_avg_connectivity": paper_avgc,
        }


def table1() -> List[TableComparison]:
    """Measured vs. paper values for the 16-20 qubit machines (Table 1)."""
    registry = small_topologies()
    return [
        TableComparison(name, topology_properties(registry[name]), TABLE1[name])
        for name in TABLE1
        if name in registry
    ]


def table2() -> List[TableComparison]:
    """Measured vs. paper values for the 84-qubit machines (Table 2)."""
    registry = large_topologies()
    return [
        TableComparison(name, topology_properties(registry[name]), TABLE2[name])
        for name in TABLE2
        if name in registry
    ]


def format_table_comparison(rows: List[TableComparison], title: str) -> str:
    """Fixed-width rendering of measured-vs-paper topology properties."""
    header = (
        f"{'Topology':<22}{'Qubits':>7}{'Dia.':>7}{'AvgD':>7}{'AvgC':>7}"
        f"{'| paper:':>10}{'Dia.':>6}{'AvgD':>7}{'AvgC':>7}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        data = row.as_row()
        lines.append(
            f"{data['name']:<22}{data['qubits']:>7}{data['diameter']:>7.1f}"
            f"{data['avg_distance']:>7.2f}{data['avg_connectivity']:>7.2f}"
            f"{'|':>10}{data['paper_diameter']:>6.1f}"
            f"{data['paper_avg_distance']:>7.2f}{data['paper_avg_connectivity']:>7.2f}"
        )
    return "\n".join(lines)
