"""Experiment: regenerate paper Tables 1 and 2 (topology properties)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.experiments.paper_values import TABLE1, TABLE2
from repro.topology.analysis import TopologyProperties, topology_properties
from repro.topology.registry import large_topologies, small_topologies

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


@dataclass(frozen=True)
class TableComparison:
    """One topology's measured properties next to the paper's values."""

    name: str
    measured: TopologyProperties
    paper: Tuple[int, float, float, float]

    def as_row(self) -> Dict[str, object]:
        paper_qubits, paper_diameter, paper_avgd, paper_avgc = self.paper
        return {
            "name": self.name,
            "qubits": self.measured.num_qubits,
            "diameter": self.measured.diameter,
            "avg_distance": round(self.measured.average_distance, 2),
            "avg_connectivity": round(self.measured.average_connectivity, 2),
            "paper_qubits": paper_qubits,
            "paper_diameter": paper_diameter,
            "paper_avg_distance": paper_avgd,
            "paper_avg_connectivity": paper_avgc,
        }


def _measure_topology(scale: str, name: str) -> TopologyProperties:
    """Structural properties of one registry topology (picklable worker)."""
    registry = small_topologies() if scale == "small" else large_topologies()
    return topology_properties(registry[name])


def _table(
    scale: str,
    paper_table: Dict[str, Tuple[int, float, float, float]],
    runner: Optional["ExperimentRunner"],
) -> List[TableComparison]:
    registry = small_topologies() if scale == "small" else large_topologies()
    names = [name for name in paper_table if name in registry]
    tasks = [(scale, name) for name in names]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    measured = runner.map(_measure_topology, tasks, labels=list(names))
    return [
        TableComparison(name, properties, paper_table[name])
        for name, properties in zip(names, measured)
    ]


def table1(runner: Optional["ExperimentRunner"] = None) -> List[TableComparison]:
    """Measured vs. paper values for the 16-20 qubit machines (Table 1)."""
    return _table("small", TABLE1, runner)


def table2(runner: Optional["ExperimentRunner"] = None) -> List[TableComparison]:
    """Measured vs. paper values for the 84-qubit machines (Table 2)."""
    return _table("large", TABLE2, runner)


def format_table_comparison(rows: List[TableComparison], title: str) -> str:
    """Fixed-width rendering of measured-vs-paper topology properties."""
    header = (
        f"{'Topology':<22}{'Qubits':>7}{'Dia.':>7}{'AvgD':>7}{'AvgC':>7}"
        f"{'| paper:':>10}{'Dia.':>6}{'AvgD':>7}{'AvgC':>7}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        data = row.as_row()
        lines.append(
            f"{data['name']:<22}{data['qubits']:>7}{data['diameter']:>7.1f}"
            f"{data['avg_distance']:>7.2f}{data['avg_connectivity']:>7.2f}"
            f"{'|':>10}{data['paper_diameter']:>6.1f}"
            f"{data['paper_avg_distance']:>7.2f}{data['paper_avg_connectivity']:>7.2f}"
        )
    return "\n".join(lines)
