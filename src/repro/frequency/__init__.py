"""Drive-frequency allocation and frequency-crowding analysis.

The paper's central hardware argument (Sections 2.4 and 4.1) is that the
SNAIL modulator selects two-qubit gates purely by *frequency*: each
coupling in a neighbourhood must own a distinct pump tone, and the SNAIL's
strong third-order term lets those tones be spread over several GHz,
whereas the cross-resonance and tunable-coupler schemes confine usable
tones to a narrow band around the qubit frequencies and therefore crowd as
connectivity grows.

This package turns that argument into a measurable substrate:

* :mod:`repro.frequency.modulators` — per-modulator frequency budgets
  (usable pump band, minimum tone separation, maximum coupling degree).
* :mod:`repro.frequency.allocation` — a greedy tone allocator that assigns
  a pump frequency to every coupling edge subject to the separation
  constraint inside every qubit neighbourhood, and reports collisions,
  bandwidth usage and a crowding score per topology.

The frequency-crowding experiment (:mod:`repro.experiments.frequency_study`)
uses these to show which (topology, modulator) pairs are physically
allocatable — the quantitative version of the paper's claim that Corral
and Tree connectivities need the SNAIL.
"""

from repro.frequency.allocation import (
    FrequencyAllocator,
    FrequencyPlan,
    allocate_frequencies,
)
from repro.frequency.modulators import (
    ModulatorSpec,
    cr_modulator,
    fsim_modulator,
    get_modulator,
    snail_modulator,
)

__all__ = [
    "ModulatorSpec",
    "snail_modulator",
    "cr_modulator",
    "fsim_modulator",
    "get_modulator",
    "FrequencyAllocator",
    "FrequencyPlan",
    "allocate_frequencies",
]
