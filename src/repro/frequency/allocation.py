"""Greedy pump-tone allocation over a coupling graph.

Every coupling edge needs its own pump tone.  Two tones conflict when their
edges share a qubit (they land on the same modulator / the same drive
neighbourhood) and their frequencies are closer than the modulator's
minimum separation.  Allocation is therefore a colouring-style problem on
the *line graph* of the topology, with a continuous frequency band instead
of discrete colours.

The allocator is greedy: edges are processed in decreasing order of
conflict degree and each is assigned the lowest frequency on a discrete
grid that respects the separation against all already-assigned neighbours.
Edges that cannot be placed inside the band are recorded as *collisions* —
the paper's "frequency crowding".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.frequency.modulators import ModulatorSpec
from repro.topology.coupling import CouplingMap

Edge = Tuple[int, int]


@dataclass
class FrequencyPlan:
    """Result of allocating pump tones on one topology with one modulator.

    Attributes:
        topology: name of the coupling map.
        modulator: name of the modulator spec used.
        assignments: edge -> pump frequency (GHz) for successfully placed edges.
        collisions: edges that could not be placed inside the band.
        degree_violations: qubits whose degree exceeds the modulator's limit.
    """

    topology: str
    modulator: str
    assignments: Dict[Edge, float] = field(default_factory=dict)
    collisions: List[Edge] = field(default_factory=list)
    degree_violations: List[int] = field(default_factory=list)

    # -- summary metrics ---------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Total number of couplings considered."""
        return len(self.assignments) + len(self.collisions)

    @property
    def is_feasible(self) -> bool:
        """True when every edge got a tone and no qubit exceeds the degree limit."""
        return not self.collisions and not self.degree_violations

    def collision_fraction(self) -> float:
        """Fraction of couplings that could not be frequency-separated."""
        if self.num_edges == 0:
            return 0.0
        return len(self.collisions) / self.num_edges

    def bandwidth_used(self) -> float:
        """Spread (GHz) between the lowest and highest assigned tone."""
        if not self.assignments:
            return 0.0
        values = list(self.assignments.values())
        return max(values) - min(values)

    def crowding_score(self) -> float:
        """Largest neighbourhood tone count divided by the band's capacity.

        Values above 1.0 mean at least one qubit's couplings need more
        distinct tones than the modulator band can hold — crowding even
        before pairwise separations are considered.
        """
        if not self.assignments and not self.collisions:
            return 0.0
        per_qubit: Dict[int, int] = {}
        for a, b in list(self.assignments) + list(self.collisions):
            per_qubit[a] = per_qubit.get(a, 0) + 1
            per_qubit[b] = per_qubit.get(b, 0) + 1
        return max(per_qubit.values()) / self._capacity

    # crowding_score needs the modulator capacity; set by the allocator.
    _capacity: int = 1

    def minimum_neighborhood_separation(self) -> float:
        """Smallest spacing between any two assigned tones that share a qubit."""
        best = np.inf
        for edge_a, freq_a in self.assignments.items():
            for edge_b, freq_b in self.assignments.items():
                if edge_a >= edge_b:
                    continue
                if set(edge_a) & set(edge_b):
                    best = min(best, abs(freq_a - freq_b))
        return float(best) if np.isfinite(best) else 0.0


class FrequencyAllocator:
    """Assign pump tones to every coupling of a topology."""

    def __init__(self, modulator: ModulatorSpec, grid_step: float = 0.01):
        if grid_step <= 0.0:
            raise ValueError("grid_step must be positive")
        self._modulator = modulator
        self._grid_step = float(grid_step)

    @property
    def modulator(self) -> ModulatorSpec:
        """The modulator budget used for allocation."""
        return self._modulator

    def allocate(self, coupling_map: CouplingMap) -> FrequencyPlan:
        """Greedy allocation; see the module docstring for the algorithm."""
        spec = self._modulator
        edges = [tuple(sorted(edge)) for edge in coupling_map.edges()]
        plan = FrequencyPlan(topology=coupling_map.name, modulator=spec.name)
        plan._capacity = max(1, spec.tones_per_neighborhood)
        plan.degree_violations = [
            qubit
            for qubit in range(coupling_map.num_qubits)
            if coupling_map.degree(qubit) > spec.max_degree
        ]
        # Conflict degree of an edge = number of other edges sharing a qubit.
        conflict_degree = {
            edge: coupling_map.degree(edge[0]) + coupling_map.degree(edge[1]) - 2
            for edge in edges
        }
        grid = np.arange(spec.band[0], spec.band[1] + 1e-9, self._grid_step)
        for edge in sorted(edges, key=lambda e: (-conflict_degree[e], e)):
            frequency = self._lowest_feasible(edge, plan.assignments, grid)
            if frequency is None:
                plan.collisions.append(edge)
            else:
                plan.assignments[edge] = frequency
        return plan

    def _lowest_feasible(
        self,
        edge: Edge,
        assignments: Dict[Edge, float],
        grid: np.ndarray,
    ) -> Optional[float]:
        """Lowest grid frequency separated from every conflicting assignment."""
        spec = self._modulator
        conflicting = [
            frequency
            for other, frequency in assignments.items()
            if set(other) & set(edge)
        ]
        if not conflicting:
            return float(grid[0])
        conflicting = np.array(conflicting)
        for frequency in grid:
            if np.all(np.abs(conflicting - frequency) >= spec.min_separation - 1e-12):
                return float(frequency)
        return None


def allocate_frequencies(
    coupling_map: CouplingMap, modulator: ModulatorSpec, grid_step: float = 0.01
) -> FrequencyPlan:
    """Convenience wrapper around :class:`FrequencyAllocator`."""
    return FrequencyAllocator(modulator, grid_step=grid_step).allocate(coupling_map)
