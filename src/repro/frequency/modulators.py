"""Frequency budgets of the three modulator families the paper compares.

The numbers are representative of published devices rather than calibrated
to a specific chip (the paper normalises engineering maturity away, Section
4.2); what matters for the crowding study is the *structure*:

* the SNAIL pumps at qubit *difference* frequencies, far detuned from the
  qubits themselves, so its usable band is wide (several GHz) and tones
  only need moderate separation;
* the cross-resonance scheme drives one qubit at its neighbour's frequency,
  so every tone must live inside the narrow transmon band (~4.8-5.4 GHz)
  and neighbouring qubits must stay 50-300 MHz apart — the frequency
  collision problem that pushed IBM toward Heavy-Hex;
* the tunable-coupler (fSim) scheme needs near-resonant qubits plus one
  flux-tuned coupler per edge, which behaves like a narrow band with
  moderate separation and a hard limit of four couplers per qubit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ModulatorSpec:
    """Frequency-domain budget of one coupling technology.

    Attributes:
        name: modulator family name ("SNAIL", "CR", "FSIM").
        band: usable pump band in GHz (low, high).
        min_separation: minimum spacing in GHz between two pump tones that
            share a qubit neighbourhood before cross-talk is expected.
        max_degree: maximum number of couplings one qubit can participate
            in before the hardware itself gives out (independent of
            frequency crowding).
        native_basis: the basis-gate name this modulator produces.
    """

    name: str
    band: Tuple[float, float]
    min_separation: float
    max_degree: int
    native_basis: str

    def __post_init__(self) -> None:
        low, high = self.band
        if high <= low:
            raise ValueError("band must be a (low, high) pair with high > low")
        if self.min_separation <= 0.0:
            raise ValueError("min_separation must be positive")
        if self.max_degree < 1:
            raise ValueError("max_degree must be at least 1")

    @property
    def bandwidth(self) -> float:
        """Width of the usable band in GHz."""
        return self.band[1] - self.band[0]

    @property
    def tones_per_neighborhood(self) -> int:
        """How many mutually separated tones fit in the band."""
        return int(self.bandwidth // self.min_separation) + 1


def snail_modulator() -> ModulatorSpec:
    """SNAIL parametric modulator: wide difference-frequency band (paper Section 4.1).

    One SNAIL addresses up to six modes, but a qubit may participate in two
    modules (paper Section 4.3 — the Tree's waveguide qubits do exactly
    this), so the per-qubit wiring limit is two full modules' worth of
    couplings.
    """
    return ModulatorSpec(
        name="SNAIL",
        band=(0.5, 8.5),
        min_separation=0.25,
        max_degree=12,
        native_basis="siswap",
    )


def cr_modulator() -> ModulatorSpec:
    """IBM cross-resonance: tones confined to the transmon band, tight spacing."""
    return ModulatorSpec(
        name="CR",
        band=(4.8, 5.4),
        min_separation=0.12,
        max_degree=4,
        native_basis="cx",
    )


def fsim_modulator() -> ModulatorSpec:
    """Google tunable coupler: near-resonant qubits, one flux-tuned coupler per edge."""
    return ModulatorSpec(
        name="FSIM",
        band=(5.8, 7.0),
        min_separation=0.15,
        max_degree=4,
        native_basis="syc",
    )


def get_modulator(name: str) -> ModulatorSpec:
    """Look up a modulator spec by (case-insensitive) name."""
    registry: Dict[str, ModulatorSpec] = {
        "snail": snail_modulator(),
        "cr": cr_modulator(),
        "fsim": fsim_modulator(),
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown modulator {name!r}; options: {sorted(registry)}")
    return registry[key]
