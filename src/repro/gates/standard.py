"""Standard single-qubit gates."""

from __future__ import annotations

import numpy as np

from repro.circuits.gate import Gate
from repro.linalg.su2 import rx_matrix, ry_matrix, rz_matrix


class IGate(Gate):
    """Identity gate."""

    def __init__(self):
        super().__init__("id", 1)

    def matrix(self) -> np.ndarray:
        return np.eye(2, dtype=complex)

    def inverse(self) -> "IGate":
        return IGate()


class XGate(Gate):
    """Pauli X (bit flip)."""

    def __init__(self):
        super().__init__("x", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[0, 1], [1, 0]], dtype=complex)

    def inverse(self) -> "XGate":
        return XGate()


class YGate(Gate):
    """Pauli Y."""

    def __init__(self):
        super().__init__("y", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[0, -1j], [1j, 0]], dtype=complex)

    def inverse(self) -> "YGate":
        return YGate()


class ZGate(Gate):
    """Pauli Z (phase flip)."""

    def __init__(self):
        super().__init__("z", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1]], dtype=complex)

    def inverse(self) -> "ZGate":
        return ZGate()


class HGate(Gate):
    """Hadamard gate."""

    def __init__(self):
        super().__init__("h", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)

    def inverse(self) -> "HGate":
        return HGate()


class SGate(Gate):
    """Phase gate S = diag(1, i)."""

    def __init__(self):
        super().__init__("s", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, 1j]], dtype=complex)

    def inverse(self) -> "SdgGate":
        return SdgGate()


class SdgGate(Gate):
    """Adjoint phase gate S† = diag(1, -i)."""

    def __init__(self):
        super().__init__("sdg", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1j]], dtype=complex)

    def inverse(self) -> "SGate":
        return SGate()


class TGate(Gate):
    """T gate = diag(1, exp(i pi/4))."""

    def __init__(self):
        super().__init__("t", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)

    def inverse(self) -> "TdgGate":
        return TdgGate()


class TdgGate(Gate):
    """Adjoint T gate."""

    def __init__(self):
        super().__init__("tdg", 1)

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex)

    def inverse(self) -> "TGate":
        return TGate()


class SXGate(Gate):
    """Square root of X."""

    def __init__(self):
        super().__init__("sx", 1)

    def matrix(self) -> np.ndarray:
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )


class RXGate(Gate):
    """Rotation about the X axis by ``theta``."""

    def __init__(self, theta: float):
        super().__init__("rx", 1, (theta,))

    def matrix(self) -> np.ndarray:
        return rx_matrix(self.params[0])

    def inverse(self) -> "RXGate":
        return RXGate(-self.params[0])


class RYGate(Gate):
    """Rotation about the Y axis by ``theta``."""

    def __init__(self, theta: float):
        super().__init__("ry", 1, (theta,))

    def matrix(self) -> np.ndarray:
        return ry_matrix(self.params[0])

    def inverse(self) -> "RYGate":
        return RYGate(-self.params[0])


class RZGate(Gate):
    """Rotation about the Z axis by ``theta``."""

    def __init__(self, theta: float):
        super().__init__("rz", 1, (theta,))

    def matrix(self) -> np.ndarray:
        return rz_matrix(self.params[0])

    def inverse(self) -> "RZGate":
        return RZGate(-self.params[0])


class PhaseGate(Gate):
    """Diagonal phase gate diag(1, exp(i lambda))."""

    def __init__(self, lam: float):
        super().__init__("p", 1, (lam,))

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, np.exp(1j * self.params[0])]], dtype=complex)

    def inverse(self) -> "PhaseGate":
        return PhaseGate(-self.params[0])


class U3Gate(Gate):
    """Generic single-qubit gate with three Euler angles (theta, phi, lam).

    ``U3(theta, phi, lam) = Rz(phi) Ry(theta) Rz(lam)`` up to global phase,
    using the standard OpenQASM convention:

        [[cos(t/2),              -exp(i lam) sin(t/2)],
         [exp(i phi) sin(t/2),    exp(i (phi+lam)) cos(t/2)]]
    """

    def __init__(self, theta: float, phi: float, lam: float):
        super().__init__("u3", 1, (theta, phi, lam))

    def matrix(self) -> np.ndarray:
        theta, phi, lam = self.params
        cos = np.cos(theta / 2.0)
        sin = np.sin(theta / 2.0)
        return np.array(
            [
                [cos, -np.exp(1j * lam) * sin],
                [np.exp(1j * phi) * sin, np.exp(1j * (phi + lam)) * cos],
            ],
            dtype=complex,
        )

    def inverse(self) -> "U3Gate":
        theta, phi, lam = self.params
        return U3Gate(-theta, -lam, -phi)
