"""Standard two-qubit gates, including the paper's basis-gate families.

All matrices are given over the basis ``|q_first q_second>`` (see
:mod:`repro.circuits.gate`).  The two-qubit families relevant to the paper
are:

* :class:`CXGate` — the CR-modulator basis used by IBM (paper Eq. 1, 5);
* :class:`FSimGate` / :class:`SycamoreGate` — the tunable-coupler basis used
  by Google (paper Eq. 6);
* :class:`NthRootISwapGate` — the ``n``-th root iSWAP family natively
  produced by the SNAIL modulator (paper Eq. 2, 9), of which
  :class:`SqrtISwapGate` (n = 2) is the headline basis gate;
* :class:`ZXGate` — the raw cross-resonance interaction (paper Eq. 4).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gate import Gate


class CXGate(Gate):
    """Controlled-NOT; the first qubit argument is the control."""

    def __init__(self):
        super().__init__("cx", 2)

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )

    def inverse(self) -> "CXGate":
        return CXGate()


class CZGate(Gate):
    """Controlled-Z (symmetric)."""

    def __init__(self):
        super().__init__("cz", 2)

    def matrix(self) -> np.ndarray:
        return np.diag([1, 1, 1, -1]).astype(complex)

    def inverse(self) -> "CZGate":
        return CZGate()


class CPhaseGate(Gate):
    """Controlled phase gate diag(1, 1, 1, exp(i lambda)) (symmetric)."""

    def __init__(self, lam: float):
        super().__init__("cp", 2, (lam,))

    def matrix(self) -> np.ndarray:
        return np.diag([1, 1, 1, np.exp(1j * self.params[0])]).astype(complex)

    def inverse(self) -> "CPhaseGate":
        return CPhaseGate(-self.params[0])


class RZZGate(Gate):
    """Two-qubit ZZ rotation exp(-i theta/2 Z(x)Z) (symmetric)."""

    def __init__(self, theta: float):
        super().__init__("rzz", 2, (theta,))

    def matrix(self) -> np.ndarray:
        half = self.params[0] / 2.0
        return np.diag(
            [
                np.exp(-1j * half),
                np.exp(1j * half),
                np.exp(1j * half),
                np.exp(-1j * half),
            ]
        ).astype(complex)

    def inverse(self) -> "RZZGate":
        return RZZGate(-self.params[0])


class RXXGate(Gate):
    """Two-qubit XX rotation exp(-i theta/2 X(x)X) (symmetric)."""

    def __init__(self, theta: float):
        super().__init__("rxx", 2, (theta,))

    def matrix(self) -> np.ndarray:
        half = self.params[0] / 2.0
        cos = np.cos(half)
        sin = -1j * np.sin(half)
        return np.array(
            [
                [cos, 0, 0, sin],
                [0, cos, sin, 0],
                [0, sin, cos, 0],
                [sin, 0, 0, cos],
            ],
            dtype=complex,
        )

    def inverse(self) -> "RXXGate":
        return RXXGate(-self.params[0])


class SwapGate(Gate):
    """SWAP gate; the data-movement primitive counted by the paper."""

    def __init__(self):
        super().__init__("swap", 2)

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )

    def inverse(self) -> "SwapGate":
        return SwapGate()


class ISwapGate(Gate):
    """iSWAP gate (full photon exchange with an i phase)."""

    def __init__(self):
        super().__init__("iswap", 2)

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )


class NthRootISwapGate(Gate):
    """The ``n``-th root of iSWAP, natively produced by the SNAIL (Eq. 2).

    The matrix is

        [[1, 0, 0, 0],
         [0, cos(pi/2n), i sin(pi/2n), 0],
         [0, i sin(pi/2n), cos(pi/2n), 0],
         [0, 0, 0, 1]]

    and the relative pulse duration is ``1/n`` of a full iSWAP, reflecting
    the linear relationship between SNAIL drive time and swap angle
    (paper Eq. 9).
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("the iSWAP root index n must be >= 1")
        super().__init__(f"iswap_root{n}" if n > 1 else "iswap", 2, ())
        self._root = int(n)

    @property
    def root(self) -> int:
        """The root index ``n``."""
        return self._root

    def matrix(self) -> np.ndarray:
        angle = np.pi / (2.0 * self._root)
        cos = np.cos(angle)
        sin = 1j * np.sin(angle)
        return np.array(
            [[1, 0, 0, 0], [0, cos, sin, 0], [0, sin, cos, 0], [0, 0, 0, 1]],
            dtype=complex,
        )

    def duration(self) -> float:
        return 1.0 / self._root

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NthRootISwapGate):
            return NotImplemented
        return self._root == other._root

    def __hash__(self) -> int:
        return hash(("iswap_root", self._root))


class SqrtISwapGate(NthRootISwapGate):
    """Square root of iSWAP — the SNAIL co-design basis gate of the paper."""

    def __init__(self):
        super().__init__(2)
        self._name = "siswap"


class FSimGate(Gate):
    """fSim(theta, phi): photon-exchange angle theta plus |11> phase phi."""

    def __init__(self, theta: float, phi: float):
        super().__init__("fsim", 2, (theta, phi))

    def matrix(self) -> np.ndarray:
        theta, phi = self.params
        cos = np.cos(theta)
        sin = -1j * np.sin(theta)
        return np.array(
            [
                [1, 0, 0, 0],
                [0, cos, sin, 0],
                [0, sin, cos, 0],
                [0, 0, 0, np.exp(-1j * phi)],
            ],
            dtype=complex,
        )

    def inverse(self) -> "Gate":
        theta, phi = self.params
        return FSimGate(-theta, -phi)


class SycamoreGate(FSimGate):
    """Google's SYC gate: fSim(pi/2, pi/6) (paper Section 2.4.2)."""

    def __init__(self):
        super().__init__(np.pi / 2.0, np.pi / 6.0)
        self._name = "syc"


class ZXGate(Gate):
    """Cross-resonance ZX(theta) interaction (paper Eq. 4)."""

    def __init__(self, theta: float):
        super().__init__("zx", 2, (theta,))

    def matrix(self) -> np.ndarray:
        half = self.params[0] / 2.0
        cos = np.cos(half)
        sin = np.sin(half)
        return np.array(
            [
                [cos, -1j * sin, 0, 0],
                [-1j * sin, cos, 0, 0],
                [0, 0, cos, 1j * sin],
                [0, 0, 1j * sin, cos],
            ],
            dtype=complex,
        )

    def inverse(self) -> "ZXGate":
        return ZXGate(-self.params[0])


class CCXGate(Gate):
    """Toffoli gate (used by the ripple-carry adder workload)."""

    def __init__(self):
        super().__init__("ccx", 3)

    def matrix(self) -> np.ndarray:
        matrix = np.eye(8, dtype=complex)
        matrix[[6, 7], [6, 7]] = 0.0
        matrix[6, 7] = 1.0
        matrix[7, 6] = 1.0
        return matrix

    def inverse(self) -> "CCXGate":
        return CCXGate()
