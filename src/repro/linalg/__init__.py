"""Linear-algebra substrate for two-qubit gate analysis.

This package provides the numerical machinery the rest of the library is
built on:

* :mod:`repro.linalg.cache` — bounded LRU caches (the process-global gate
  unitary cache lives here).
* :mod:`repro.linalg.matrices` — standard gate matrices, unitary predicates
  and small helpers (dagger, global-phase removal, Kronecker factoring).
* :mod:`repro.linalg.random` — Haar-random unitary sampling.
* :mod:`repro.linalg.su2` — single-qubit (ZYZ) decomposition.
* :mod:`repro.linalg.weyl` — magic-basis transform, Weyl-chamber
  coordinates and canonicalization.
* :mod:`repro.linalg.kak` — full Cartan KAK decomposition of two-qubit
  unitaries.
* :mod:`repro.linalg.fidelity` — unitary fidelity measures (Hilbert–Schmidt
  inner product, average gate fidelity).
"""

from repro.linalg.cache import (
    CacheStats,
    LRUCache,
    UNITARY_CACHE,
    cached_unitary,
    clear_unitary_cache,
    matrix_fingerprint,
    unitary_cache_stats,
)
from repro.linalg.matrices import (
    I2,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    closest_unitary,
    dagger,
    decompose_kron,
    is_hermitian,
    is_unitary,
    kron,
    matrices_equal,
    remove_global_phase,
)
from repro.linalg.random import (
    random_hermitian,
    random_statevector,
    random_su2,
    random_unitary,
)
from repro.linalg.su2 import OneQubitEulerDecomposition, zyz_decomposition
from repro.linalg.weyl import (
    MAGIC_BASIS,
    WeylCoordinates,
    canonical_gate,
    canonicalize_coordinates,
    in_weyl_chamber,
    magic_transform,
    weyl_coordinates,
)
from repro.linalg.kak import KAKDecomposition, kak_decomposition
from repro.linalg.fidelity import (
    average_gate_fidelity,
    hilbert_schmidt_fidelity,
    process_fidelity,
    unitary_infidelity,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "UNITARY_CACHE",
    "cached_unitary",
    "clear_unitary_cache",
    "matrix_fingerprint",
    "unitary_cache_stats",
    "I2",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "closest_unitary",
    "dagger",
    "decompose_kron",
    "is_hermitian",
    "is_unitary",
    "kron",
    "matrices_equal",
    "remove_global_phase",
    "random_hermitian",
    "random_statevector",
    "random_su2",
    "random_unitary",
    "OneQubitEulerDecomposition",
    "zyz_decomposition",
    "MAGIC_BASIS",
    "WeylCoordinates",
    "canonical_gate",
    "canonicalize_coordinates",
    "in_weyl_chamber",
    "magic_transform",
    "weyl_coordinates",
    "KAKDecomposition",
    "kak_decomposition",
    "average_gate_fidelity",
    "hilbert_schmidt_fidelity",
    "process_fidelity",
    "unitary_infidelity",
]
