"""Bounded LRU caches for the numerical hot paths.

Gate matrices, Weyl coordinates and synthesized templates are recomputed
millions of times during a sweep; each computation is individually cheap
but collectively dominates wall-clock (the cached-operator idiom of
density-matrix simulators such as quantumsim).  This module provides the
generic bounded cache plus the process-global *unitary cache* used by
:meth:`repro.circuits.gate.Gate.cached_matrix`.

All caches are process-local: worker processes of the experiment runner
build their own caches, which is exactly what is wanted (no cross-process
synchronisation on the hot path).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one cache.

    ``disk_hits`` / ``disk_misses`` stay 0 for purely in-memory caches;
    a disk-backed cache (``repro.runtime.disk_cache``) fills them in for
    lookups that fell through the memory tier.  A disk hit therefore
    also counts as a memory *miss*: ``misses - disk_hits`` is the number
    of lookups that had to be recomputed.
    """

    hits: int
    misses: int
    currsize: int
    maxsize: int
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when unused)."""
        total = self.hits + self.misses
        return (self.hits + self.disk_hits) / total if total else 0.0

    @property
    def computed(self) -> int:
        """Lookups served by neither tier (i.e. actually recomputed)."""
        return self.misses - self.disk_hits


class LRUCache:
    """A small bounded mapping with least-recently-used eviction.

    Unlike :func:`functools.lru_cache` this caches *values by explicit
    key*, so callers can key on canonical forms (rounded parameters, Weyl
    coordinates, matrix fingerprints) rather than on raw call arguments.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self._maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it recently used) or ``default``."""
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return default
        self._data.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a value, evicting the least recently used entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = factory()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self._hits = 0
        self._misses = 0

    def stats(self) -> CacheStats:
        """Current counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            currsize=len(self._data),
            maxsize=self._maxsize,
        )

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


#: Process-global cache of gate unitaries keyed on (name, num_qubits, params).
UNITARY_CACHE = LRUCache(maxsize=2048)


def matrix_fingerprint(matrix: np.ndarray, digits: int = 10) -> bytes:
    """Stable hashable fingerprint of a small complex matrix."""
    return np.round(np.asarray(matrix, dtype=complex), digits).tobytes()


def cached_unitary(
    key: Hashable, builder: Callable[[], np.ndarray]
) -> np.ndarray:
    """Fetch a gate unitary from the global cache, building it on a miss.

    The cached array is frozen (non-writeable) so that every consumer can
    share the same buffer without defensive copies; callers that need a
    mutable matrix should use :meth:`~repro.circuits.gate.Gate.matrix`.
    """

    def frozen_builder() -> np.ndarray:
        matrix = np.asarray(builder(), dtype=complex)
        matrix.setflags(write=False)
        return matrix

    return UNITARY_CACHE.get_or_create(key, frozen_builder)


def clear_unitary_cache() -> None:
    """Reset the global unitary cache (mostly useful in tests)."""
    UNITARY_CACHE.clear()


def unitary_cache_stats() -> CacheStats:
    """Counters of the global unitary cache."""
    return UNITARY_CACHE.stats()
