"""Unitary fidelity measures.

The paper's approximate-decomposition study (Section 6.3) measures the
closeness of a decomposition template to a target unitary with the
normalised Hilbert–Schmidt inner product (paper Eq. 11):

    F_d(U_d, U_t) = |Tr(U_d^dagger U_t)| / dim

and combines it with a linear decoherence model (paper Eq. 12–13).  This
module provides the distance measures; the decoherence model lives in
:mod:`repro.core.fidelity`.
"""

from __future__ import annotations

import numpy as np


def hilbert_schmidt_fidelity(u_decomp: np.ndarray, u_target: np.ndarray) -> float:
    """Normalised Hilbert–Schmidt fidelity |Tr(Ud† Ut)| / dim (paper Eq. 11).

    The absolute value makes the measure insensitive to global phase, which
    is irrelevant for circuit equivalence.
    """
    u_decomp = np.asarray(u_decomp, dtype=complex)
    u_target = np.asarray(u_target, dtype=complex)
    if u_decomp.shape != u_target.shape:
        raise ValueError("operands must have identical shapes")
    dim = u_decomp.shape[0]
    overlap = np.trace(u_decomp.conj().T @ u_target)
    return float(abs(overlap) / dim)


def process_fidelity(u_decomp: np.ndarray, u_target: np.ndarray) -> float:
    """Process fidelity |Tr(Ud† Ut)|^2 / dim^2 between two unitaries."""
    return hilbert_schmidt_fidelity(u_decomp, u_target) ** 2


def average_gate_fidelity(u_decomp: np.ndarray, u_target: np.ndarray) -> float:
    """Average gate fidelity (Horodecki / Nielsen formula) for unitaries.

    F_avg = (d * F_pro + 1) / (d + 1) where ``F_pro`` is the process
    fidelity and ``d`` the Hilbert-space dimension.
    """
    dim = np.asarray(u_target).shape[0]
    fpro = process_fidelity(u_decomp, u_target)
    return float((dim * fpro + 1.0) / (dim + 1.0))


def unitary_infidelity(u_decomp: np.ndarray, u_target: np.ndarray) -> float:
    """1 - Hilbert–Schmidt fidelity; the quantity plotted in paper Fig. 15."""
    return 1.0 - hilbert_schmidt_fidelity(u_decomp, u_target)


def trace_distance_bound(u_decomp: np.ndarray, u_target: np.ndarray) -> float:
    """Phase-insensitive operator-norm distance between two unitaries.

    Computes ``min_phi || Ud - e^{i phi} Ut ||_2`` which upper-bounds the
    worst-case output state distance.  Used by tests as an alternative,
    stricter closeness check.
    """
    u_decomp = np.asarray(u_decomp, dtype=complex)
    u_target = np.asarray(u_target, dtype=complex)
    overlap = np.trace(u_decomp.conj().T @ u_target)
    phase = 1.0 if abs(overlap) < 1e-12 else np.conj(overlap) / abs(overlap)
    diff = u_decomp - phase * u_target
    return float(np.linalg.norm(diff, ord=2))
