"""Cartan (KAK) decomposition of two-qubit unitaries.

Any ``U`` in U(4) can be written as

    U = exp(i * phase) * (K1l (x) K1r) * CAN(x, y, z) * (K2l (x) K2r)

with ``K1l, K1r, K2l, K2r`` single-qubit unitaries and ``CAN`` the canonical
two-body interaction (see :mod:`repro.linalg.weyl`).  This module computes
that decomposition with a self-verifying, retrying algorithm:

1. transform into the magic basis, where local gates become real
   orthogonal matrices;
2. simultaneously diagonalise the real and imaginary parts of the Gram
   matrix ``Up^T Up`` with a real orthogonal eigenbasis;
3. read off the interaction angles from the eigenvalue phases and the local
   factors from the eigenvectors;
4. verify the reconstruction; on numerical failure, retry after scrambling
   the input with random local gates (which leaves the canonical class
   invariant and generically removes eigenvalue degeneracies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.linalg.matrices import (
    dagger,
    decompose_kron,
    is_unitary,
    kron,
    su_normalize,
)
from repro.linalg.random import random_su2
from repro.linalg.weyl import (
    MAGIC_BASIS,
    WeylCoordinates,
    canonical_gate,
    canonicalize_coordinates,
)

_MAGIC_DAG = dagger(MAGIC_BASIS)


class KAKDecompositionError(RuntimeError):
    """Raised when the decomposition cannot be computed for an input."""


@dataclass(frozen=True)
class KAKDecomposition:
    """Result of a Cartan decomposition of a two-qubit unitary.

    Attributes:
        global_phase: scalar phase ``phi`` so that the product below equals
            the input exactly.
        k1l, k1r: the *left* (applied last) single-qubit factors on the
            first and second qubit respectively.
        k2l, k2r: the *right* (applied first) single-qubit factors.
        coordinates: the raw (not necessarily canonical) interaction
            coefficients produced by the algorithm.
        canonical: the coordinates mapped into the canonical Weyl chamber.
    """

    global_phase: float
    k1l: np.ndarray
    k1r: np.ndarray
    k2l: np.ndarray
    k2r: np.ndarray
    coordinates: Tuple[float, float, float]
    canonical: WeylCoordinates

    def unitary(self) -> np.ndarray:
        """Rebuild the two-qubit unitary from the decomposition."""
        interaction = canonical_gate(*self.coordinates)
        return (
            np.exp(1j * self.global_phase)
            * kron(self.k1l, self.k1r)
            @ interaction
            @ kron(self.k2l, self.k2r)
        )

    def local_factors(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(k1l, k1r, k2l, k2r)``."""
        return (self.k1l, self.k1r, self.k2l, self.k2r)


def _simultaneously_diagonalize(
    gram: np.ndarray, rng: np.random.Generator, atol: float = 1e-8
) -> Tuple[np.ndarray, np.ndarray]:
    """Diagonalise a complex-symmetric unitary with a real orthogonal basis.

    Returns ``(P, d)`` with ``P`` real orthogonal and ``d`` the complex
    diagonal of ``P.T @ gram @ P``.
    """
    real_part = gram.real
    imag_part = gram.imag
    weights = [1.0, 0.0, 0.5, -0.7, 1.3]
    weights.extend(rng.uniform(-2.0, 2.0, size=8).tolist())
    for weight in weights:
        _, vectors = np.linalg.eigh(real_part + weight * imag_part)
        diag_real = vectors.T @ real_part @ vectors
        diag_imag = vectors.T @ imag_part @ vectors
        off_real = diag_real - np.diag(np.diag(diag_real))
        off_imag = diag_imag - np.diag(np.diag(diag_imag))
        if np.max(np.abs(off_real)) < atol and np.max(np.abs(off_imag)) < atol:
            diag = np.diag(vectors.T @ gram @ vectors)
            return vectors, diag
    raise KAKDecompositionError("simultaneous diagonalization failed")


def _kak_core(unitary: np.ndarray, rng: np.random.Generator) -> KAKDecomposition:
    """One attempt at the Cartan decomposition (no retry, no verification)."""
    special, phase = su_normalize(unitary)
    up = _MAGIC_DAG @ special @ MAGIC_BASIS
    gram = up.T @ up
    vectors, diag = _simultaneously_diagonalize(gram, rng)
    if np.linalg.det(vectors) < 0:
        vectors = vectors.copy()
        vectors[:, 0] = -vectors[:, 0]
    angles = np.angle(diag) / 2.0
    # Choose branches so the diagonal has determinant +1 (sum of angles = 0
    # modulo 2 pi); flip one branch if required.
    left_orthogonal = up @ vectors @ np.diag(np.exp(-1j * angles))
    if np.max(np.abs(left_orthogonal.imag)) > 1e-6:
        raise KAKDecompositionError("left factor is not real")
    left_orthogonal = left_orthogonal.real
    if np.linalg.det(left_orthogonal) < 0:
        angles = angles.copy()
        angles[0] += np.pi
        left_orthogonal = up @ vectors @ np.diag(np.exp(-1j * angles))
        if np.max(np.abs(left_orthogonal.imag)) > 1e-6:
            raise KAKDecompositionError("left factor is not real after branch flip")
        left_orthogonal = left_orthogonal.real
    right_orthogonal = vectors.T
    x = (angles[0] + angles[1]) / 2.0
    y = (angles[1] + angles[3]) / 2.0
    z = (angles[0] + angles[3]) / 2.0
    k1_matrix = MAGIC_BASIS @ left_orthogonal @ _MAGIC_DAG
    k2_matrix = MAGIC_BASIS @ right_orthogonal @ _MAGIC_DAG
    k1l, k1r, residue1 = decompose_kron(k1_matrix, atol=1e-5)
    k2l, k2r, residue2 = decompose_kron(k2_matrix, atol=1e-5)
    global_phase = phase + float(np.angle(residue1 * residue2))
    canonical = canonicalize_coordinates(x, y, z)
    return KAKDecomposition(
        global_phase=global_phase,
        k1l=k1l,
        k1r=k1r,
        k2l=k2l,
        k2r=k2r,
        coordinates=(float(x), float(y), float(z)),
        canonical=canonical,
    )


def kak_decomposition(
    unitary: np.ndarray, atol: float = 1e-6, max_attempts: int = 12
) -> KAKDecomposition:
    """Compute a verified Cartan decomposition of a two-qubit unitary.

    Args:
        unitary: 4x4 unitary matrix.
        atol: elementwise tolerance used to verify the reconstruction.
        max_attempts: number of random-local-scramble retries before giving
            up (the first attempt uses no scrambling).

    Raises:
        KAKDecompositionError: if no attempt produces a verified
            decomposition (does not happen for unitary inputs in practice).
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise ValueError(f"expected a 4x4 matrix, got shape {unitary.shape}")
    if not is_unitary(unitary, atol=1e-6):
        raise ValueError("input matrix is not unitary")
    rng = np.random.default_rng(20230)
    for attempt in range(max_attempts):
        if attempt == 0:
            left_a = left_b = right_a = right_b = np.eye(2, dtype=complex)
        else:
            left_a = random_su2(rng)
            left_b = random_su2(rng)
            right_a = random_su2(rng)
            right_b = random_su2(rng)
        scrambled = kron(left_a, left_b) @ unitary @ kron(right_a, right_b)
        try:
            core = _kak_core(scrambled, rng)
        except KAKDecompositionError:
            continue
        candidate = KAKDecomposition(
            global_phase=core.global_phase,
            k1l=dagger(left_a) @ core.k1l,
            k1r=dagger(left_b) @ core.k1r,
            k2l=core.k2l @ dagger(right_a),
            k2r=core.k2r @ dagger(right_b),
            coordinates=core.coordinates,
            canonical=core.canonical,
        )
        if np.allclose(candidate.unitary(), unitary, atol=atol):
            return candidate
    raise KAKDecompositionError(
        "KAK decomposition failed to converge; input may be badly conditioned"
    )
