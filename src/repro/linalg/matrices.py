"""Standard matrices, unitary predicates and small matrix helpers.

All matrices in this library use the textbook (big-endian) two-qubit
convention: a two-qubit gate matrix is written over the ordered basis
``|q_first q_second>`` = ``|00>, |01>, |10>, |11>`` where ``q_first`` is the
first qubit argument of the gate (e.g. the control of a CNOT).  The
state-vector simulator translates between this convention and its internal
little-endian register layout.
"""

from __future__ import annotations

import numpy as np

# -- constants ---------------------------------------------------------------

#: 2x2 identity.
I2 = np.eye(2, dtype=complex)

#: Pauli X.
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)

#: Pauli Y.
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)

#: Pauli Z.
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

#: Default numerical tolerance used by the predicates in this module.
DEFAULT_ATOL = 1e-9


# -- predicates ---------------------------------------------------------------


def is_unitary(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` if ``matrix`` is (numerically) unitary."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    ident = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, ident, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` if ``matrix`` is (numerically) Hermitian."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def matrices_equal(
    a: np.ndarray,
    b: np.ndarray,
    up_to_global_phase: bool = False,
    atol: float = 1e-7,
) -> bool:
    """Compare two matrices, optionally ignoring a global phase.

    Args:
        a, b: matrices of identical shape.
        up_to_global_phase: if ``True``, ``a`` and ``e^{i phi} b`` are
            considered equal for any real ``phi``.
        atol: absolute elementwise tolerance.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    if up_to_global_phase:
        # Align phases using the largest-magnitude element of b.
        index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
        if abs(b[index]) < atol:
            return bool(np.allclose(a, b, atol=atol))
        phase = a[index] / b[index]
        if abs(abs(phase) - 1.0) > 1e-4:
            return False
        b = b * phase
    return bool(np.allclose(a, b, atol=atol))


# -- helpers ------------------------------------------------------------------


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Return the conjugate transpose of ``matrix``."""
    return np.asarray(matrix, dtype=complex).conj().T


def kron(*matrices: np.ndarray) -> np.ndarray:
    """Kronecker product of one or more matrices, left to right."""
    if not matrices:
        raise ValueError("kron() requires at least one matrix")
    result = np.asarray(matrices[0], dtype=complex)
    for matrix in matrices[1:]:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def remove_global_phase(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` rescaled so its largest element is real positive.

    The returned matrix equals the input up to a global phase, which makes
    it suitable for phase-insensitive comparisons and hashing.
    """
    matrix = np.asarray(matrix, dtype=complex)
    index = np.unravel_index(np.argmax(np.abs(matrix)), matrix.shape)
    pivot = matrix[index]
    if abs(pivot) < 1e-12:
        return matrix.copy()
    return matrix * (abs(pivot) / pivot)


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project a matrix onto the closest unitary (in Frobenius norm).

    Uses the polar decomposition via SVD: for ``M = U S V†`` the closest
    unitary is ``U V†``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    left, _, right = np.linalg.svd(matrix)
    return left @ right


def su_normalize(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Rescale a unitary to have determinant 1.

    Returns:
        A tuple ``(special, phase)`` where ``matrix = exp(i*phase)*special``
        and ``det(special) == 1``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    dim = matrix.shape[0]
    det = np.linalg.det(matrix)
    phase = np.angle(det) / dim
    special = matrix * np.exp(-1j * phase)
    return special, float(phase)


def decompose_kron(
    matrix: np.ndarray, atol: float = 1e-7
) -> tuple[np.ndarray, np.ndarray, complex]:
    """Factor a 4x4 matrix into a Kronecker product of two 2x2 matrices.

    Given ``M`` that is (close to) ``c * A (x) B``, return ``(A, B, c)`` where
    ``A`` and ``B`` are special unitaries (determinant one) and ``c`` is the
    residual scalar, so that ``M == c * kron(A, B)``.

    Raises:
        ValueError: if ``matrix`` is not a Kronecker product to within
            ``atol``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise ValueError(f"expected a 4x4 matrix, got shape {matrix.shape}")
    # Rearrange so that M = A (x) B  <=>  R = vec(A) vec(B)^T, then the best
    # rank-one approximation of R gives the factors.
    rearranged = (
        matrix.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    )
    left, singular_values, right = np.linalg.svd(rearranged)
    factor_a = left[:, 0].reshape(2, 2) * np.sqrt(singular_values[0])
    factor_b = right[0, :].reshape(2, 2) * np.sqrt(singular_values[0])
    reconstructed = np.kron(factor_a, factor_b)
    if not np.allclose(reconstructed, matrix, atol=atol):
        raise ValueError("matrix is not a Kronecker product of 2x2 factors")
    # Normalise both factors to determinant one and collect the residue.
    det_a = np.linalg.det(factor_a)
    det_b = np.linalg.det(factor_b)
    if abs(det_a) < atol or abs(det_b) < atol:
        raise ValueError("Kronecker factors are singular")
    scale_a = det_a ** 0.5
    scale_b = det_b ** 0.5
    factor_a = factor_a / scale_a
    factor_b = factor_b / scale_b
    residual = complex(scale_a * scale_b)
    return factor_a, factor_b, residual
