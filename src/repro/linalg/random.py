"""Haar-random sampling of unitaries, states and Hermitian matrices."""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def _as_generator(seed: RngLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_unitary(dim: int, seed: RngLike = None) -> np.ndarray:
    """Sample a Haar-random unitary of dimension ``dim``.

    Uses the QR decomposition of a complex Ginibre matrix with the phase
    correction of Mezzadri (2007) so the distribution is exactly Haar.
    """
    if dim < 1:
        raise ValueError("dimension must be a positive integer")
    rng = _as_generator(seed)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q_factor, r_factor = np.linalg.qr(ginibre)
    diag = np.diagonal(r_factor)
    phases = diag / np.abs(diag)
    return q_factor * phases


def random_su2(seed: RngLike = None) -> np.ndarray:
    """Sample a Haar-random single-qubit special unitary (det == 1)."""
    unitary = random_unitary(2, seed)
    det = np.linalg.det(unitary)
    return unitary * det ** (-0.5)


def random_statevector(dim: int, seed: RngLike = None) -> np.ndarray:
    """Sample a Haar-random pure state of dimension ``dim``."""
    if dim < 1:
        raise ValueError("dimension must be a positive integer")
    rng = _as_generator(seed)
    vector = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vector / np.linalg.norm(vector)


def random_hermitian(dim: int, seed: RngLike = None, scale: float = 1.0) -> np.ndarray:
    """Sample a random Hermitian matrix (GUE-distributed, scaled)."""
    if dim < 1:
        raise ValueError("dimension must be a positive integer")
    rng = _as_generator(seed)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    return scale * (ginibre + ginibre.conj().T) / 2.0


def random_two_qubit_unitary(seed: RngLike = None) -> np.ndarray:
    """Convenience wrapper: Haar-random element of U(4)."""
    return random_unitary(4, seed)
