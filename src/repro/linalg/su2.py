"""Single-qubit (ZYZ) Euler decomposition.

Any single-qubit unitary can be written as

    U = exp(i * alpha) * Rz(beta) * Ry(gamma) * Rz(delta)

with ``Rz(t) = diag(exp(-i t/2), exp(i t/2))`` and
``Ry(t) = [[cos t/2, -sin t/2], [sin t/2, cos t/2]]``.  The paper (and this
reproduction) treats single-qubit gates as free, but the explicit Euler
angles are needed to emit concrete circuits from KAK decompositions and the
approximate-decomposition templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about Z by ``theta``."""
    half = theta / 2.0
    return np.array(
        [[np.exp(-1j * half), 0.0], [0.0, np.exp(1j * half)]], dtype=complex
    )


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about Y by ``theta``."""
    half = theta / 2.0
    return np.array(
        [[np.cos(half), -np.sin(half)], [np.sin(half), np.cos(half)]],
        dtype=complex,
    )


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about X by ``theta``."""
    half = theta / 2.0
    return np.array(
        [[np.cos(half), -1j * np.sin(half)], [-1j * np.sin(half), np.cos(half)]],
        dtype=complex,
    )


@dataclass(frozen=True)
class OneQubitEulerDecomposition:
    """Result of a ZYZ Euler decomposition of a single-qubit unitary."""

    alpha: float
    beta: float
    gamma: float
    delta: float

    def matrix(self) -> np.ndarray:
        """Rebuild the unitary from the Euler angles."""
        return (
            np.exp(1j * self.alpha)
            * rz_matrix(self.beta)
            @ ry_matrix(self.gamma)
            @ rz_matrix(self.delta)
        )

    def angles(self) -> tuple[float, float, float]:
        """Return the ``(beta, gamma, delta)`` rotation angles."""
        return (self.beta, self.gamma, self.delta)


def zyz_decomposition(unitary: np.ndarray) -> OneQubitEulerDecomposition:
    """Decompose a 2x2 unitary into ZYZ Euler angles.

    Args:
        unitary: a 2x2 (numerically) unitary matrix.

    Returns:
        The :class:`OneQubitEulerDecomposition` whose :meth:`matrix`
        reproduces ``unitary`` to numerical precision.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise ValueError(f"expected a 2x2 matrix, got shape {unitary.shape}")
    det = np.linalg.det(unitary)
    if abs(abs(det) - 1.0) > 1e-6:
        raise ValueError("matrix is not unitary (|det| != 1)")
    # Remove global phase so the matrix is in SU(2).
    alpha = np.angle(det) / 2.0
    special = unitary * np.exp(-1j * alpha)
    # special = [[cos(g/2) e^{-i(b+d)/2}, -sin(g/2) e^{-i(b-d)/2}],
    #            [sin(g/2) e^{ i(b-d)/2},  cos(g/2) e^{ i(b+d)/2}]]
    cos_half = abs(special[0, 0])
    cos_half = min(1.0, max(0.0, cos_half))
    gamma = 2.0 * np.arccos(cos_half)
    if abs(special[0, 0]) > 1e-12 and abs(special[1, 0]) > 1e-12:
        beta_plus_delta = 2.0 * np.angle(special[1, 1])
        beta_minus_delta = 2.0 * np.angle(special[1, 0])
        beta = (beta_plus_delta + beta_minus_delta) / 2.0
        delta = (beta_plus_delta - beta_minus_delta) / 2.0
    elif abs(special[0, 0]) > 1e-12:
        # gamma ~ 0: only the sum beta + delta matters.
        beta = 2.0 * np.angle(special[1, 1])
        delta = 0.0
    else:
        # gamma ~ pi: only the difference beta - delta matters.
        beta = 2.0 * np.angle(special[1, 0])
        delta = 0.0
    result = OneQubitEulerDecomposition(alpha, float(beta), float(gamma), float(delta))
    if not np.allclose(result.matrix(), unitary, atol=1e-7):
        # Resolve the remaining branch ambiguity by a small search.
        for beta_shift in (0.0, 2 * np.pi):
            for alpha_shift in (0.0, np.pi):
                candidate = OneQubitEulerDecomposition(
                    alpha + alpha_shift, beta + beta_shift, gamma, delta
                )
                if np.allclose(candidate.matrix(), unitary, atol=1e-7):
                    return candidate
        raise RuntimeError("ZYZ decomposition failed to reproduce the input")
    return result
