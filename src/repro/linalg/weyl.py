"""Weyl-chamber (canonical) coordinates of two-qubit gates.

Every two-qubit unitary ``U`` is locally equivalent (i.e. equal up to
single-qubit gates before and after) to a *canonical gate*

    CAN(x, y, z) = exp(i * (x XX + y YY + z ZZ))

for some interaction coefficients ``(x, y, z)``.  The coefficients are
unique once restricted to a fundamental domain of the local-equivalence
symmetry group, the *Weyl chamber*.  The coverage rules used by the paper
(how many CNOT / sqrt(iSWAP) / SYC applications a unitary needs) are
functions of these coordinates only, which is why they are the backbone of
the basis-translation machinery in :mod:`repro.decomposition`.

Conventions used throughout this library:

* coordinates are expressed in radians, with
  CNOT = (pi/4, 0, 0), iSWAP = (pi/4, pi/4, 0), SWAP = (pi/4, pi/4, pi/4),
  sqrt(iSWAP) = (pi/8, pi/8, 0);
* the canonical chamber is ``pi/4 >= x >= y >= |z|`` (``y >= 0``), and when
  several orbit representatives satisfy those inequalities the
  lexicographically largest ``(x, y, z)`` is chosen, which makes the
  canonical form deterministic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.linalg.matrices import dagger, su_normalize

#: The "magic" (Bell-like) basis change.  Conjugating a local gate
#: ``A (x) B`` by this matrix yields a real orthogonal matrix, which is what
#: makes the Cartan decomposition tractable.
MAGIC_BASIS = (1.0 / np.sqrt(2.0)) * np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
)

_PI_2 = np.pi / 2.0
_PI_4 = np.pi / 4.0
_DEFAULT_ATOL = 1e-7


def magic_transform(unitary: np.ndarray) -> np.ndarray:
    """Conjugate a 4x4 matrix into the magic basis: ``M^dagger U M``."""
    unitary = np.asarray(unitary, dtype=complex)
    return dagger(MAGIC_BASIS) @ unitary @ MAGIC_BASIS


def canonical_gate(x: float, y: float, z: float) -> np.ndarray:
    """Return ``CAN(x, y, z) = exp(i (x XX + y YY + z ZZ))`` as a 4x4 matrix.

    The three two-body operators commute, so the exponential is evaluated
    directly in the magic basis where it is diagonal.
    """
    phases = np.array(
        [x - y + z, x + y - z, -x - y - z, -x + y + z], dtype=float
    )
    diag = np.diag(np.exp(1j * phases))
    return MAGIC_BASIS @ diag @ dagger(MAGIC_BASIS)


@dataclass(frozen=True)
class WeylCoordinates:
    """Canonical interaction coefficients ``(x, y, z)`` of a two-qubit gate."""

    x: float
    y: float
    z: float

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return the coordinates as a plain tuple."""
        return (self.x, self.y, self.z)

    def is_local(self, atol: float = _DEFAULT_ATOL) -> bool:
        """True if the gate is a product of single-qubit gates."""
        return max(abs(self.x), abs(self.y), abs(self.z)) <= atol

    def is_perfect_entangler(self, atol: float = _DEFAULT_ATOL) -> bool:
        """True if the gate can map a product state to a maximally entangled one.

        In the canonical chamber ``pi/4 >= x >= y >= |z|`` the perfect
        entanglers form the polytope ``x + y >= pi/4`` and
        ``y + |z| <= pi/4`` (Zhang et al., PRA 67, 042313).  This includes
        CNOT, iSWAP, sqrt(iSWAP) and sqrt(SWAP) but excludes SWAP and any
        iSWAP fraction smaller than the square root — the fact the paper
        uses when calling sqrt(iSWAP) the smallest perfectly entangling
        fraction (Section 6.3).
        """
        return (self.x + self.y >= _PI_4 - atol) and (
            self.y + abs(self.z) <= _PI_4 + atol
        )

    def equals(self, other: "WeylCoordinates", atol: float = 1e-6) -> bool:
        """Coordinate-wise comparison with tolerance."""
        return (
            abs(self.x - other.x) <= atol
            and abs(self.y - other.y) <= atol
            and abs(self.z - other.z) <= atol
        )

    def gate(self) -> np.ndarray:
        """The canonical 4x4 matrix with these coordinates."""
        return canonical_gate(self.x, self.y, self.z)

    def distance(self, other: "WeylCoordinates") -> float:
        """Euclidean distance between two coordinate triples."""
        return float(
            np.sqrt(
                (self.x - other.x) ** 2
                + (self.y - other.y) ** 2
                + (self.z - other.z) ** 2
            )
        )


# Named canonical classes used by the coverage rules and the tests.
LOCAL_CLASS = WeylCoordinates(0.0, 0.0, 0.0)
CNOT_CLASS = WeylCoordinates(_PI_4, 0.0, 0.0)
ISWAP_CLASS = WeylCoordinates(_PI_4, _PI_4, 0.0)
SWAP_CLASS = WeylCoordinates(_PI_4, _PI_4, _PI_4)
SQRT_ISWAP_CLASS = WeylCoordinates(np.pi / 8.0, np.pi / 8.0, 0.0)
SQRT_SWAP_CLASS = WeylCoordinates(np.pi / 8.0, np.pi / 8.0, np.pi / 8.0)


def nth_root_iswap_class(n: int) -> WeylCoordinates:
    """Canonical class of the ``n``-th root of iSWAP (``n >= 1``)."""
    if n < 1:
        raise ValueError("n must be a positive integer")
    angle = _PI_4 / n
    return WeylCoordinates(angle, angle, 0.0)


def in_weyl_chamber(
    coords: Tuple[float, float, float], atol: float = _DEFAULT_ATOL
) -> bool:
    """Check whether ``(x, y, z)`` satisfies ``pi/4 >= x >= y >= |z|``."""
    x, y, z = coords
    return (
        x <= _PI_4 + atol
        and x >= y - atol
        and y >= abs(z) - atol
        and y >= -atol
    )


def _orbit_candidates(
    coords: Tuple[float, float, float]
) -> Iterable[Tuple[float, float, float]]:
    """Enumerate representatives of the local-symmetry orbit of ``coords``.

    The symmetry group is generated by (i) permutations of the coordinates,
    (ii) simultaneous sign flips of any two coordinates, and (iii) shifts of
    any single coordinate by ``pi/2``.  Reducing each coordinate modulo
    ``pi/2`` first makes the remaining enumeration finite.
    """
    reduced = [float(np.mod(c, _PI_2)) for c in coords]
    per_coordinate = []
    for value in reduced:
        options = {value, value - _PI_2}
        # Values extremely close to 0 or pi/2 generate near-duplicate
        # representatives; keep both and let the chamber filter decide.
        per_coordinate.append(sorted(options))
    sign_patterns = [
        (1, 1, 1),
        (-1, -1, 1),
        (-1, 1, -1),
        (1, -1, -1),
    ]
    for choice in itertools.product(*per_coordinate):
        for perm in itertools.permutations(range(3)):
            permuted = (choice[perm[0]], choice[perm[1]], choice[perm[2]])
            for signs in sign_patterns:
                yield (
                    permuted[0] * signs[0],
                    permuted[1] * signs[1],
                    permuted[2] * signs[2],
                )


def canonicalize_coordinates(
    x: float, y: float, z: float, atol: float = _DEFAULT_ATOL
) -> WeylCoordinates:
    """Map arbitrary interaction coefficients into the canonical chamber.

    The canonical representative is the lexicographically largest orbit
    element satisfying ``pi/4 >= x >= y >= |z|``.  Values within ``atol`` of
    zero are snapped to exactly zero so that named classes compare cleanly.
    """
    best: Tuple[float, float, float] | None = None
    best_key: Tuple[float, float, float] | None = None
    for candidate in _orbit_candidates((x, y, z)):
        if not in_weyl_chamber(candidate, atol=atol):
            continue
        key = tuple(round(c, 9) for c in candidate)
        if best_key is None or key > best_key:
            best_key = key
            best = candidate
    if best is None:  # pragma: no cover - the orbit always meets the chamber
        raise RuntimeError(f"failed to canonicalize coordinates {(x, y, z)}")
    snapped = tuple(0.0 if abs(c) <= atol else float(c) for c in best)
    clipped_x = min(snapped[0], _PI_4)
    return WeylCoordinates(clipped_x, min(snapped[1], clipped_x), snapped[2])


def _coordinate_candidates_from_angles(
    half_angles: np.ndarray, atol: float = 1e-6
) -> Iterable[Tuple[float, float, float]]:
    """Yield coordinate triples consistent with magic-spectrum half-angles.

    ``half_angles`` are the values ``angle(eigenvalue)/2`` of
    ``M2 = (M^dag U M)^T (M^dag U M)``, each only defined modulo ``pi``.
    The true angles ``d_j`` satisfy ``sum(d) = 0 (mod 2 pi)`` and, for some
    ordering, ``d = (x-y+z, x+y-z, -x-y-z, -x+y+z)``.
    """
    for shifts in itertools.product((0.0, -np.pi), repeat=4):
        candidate = half_angles + np.array(shifts)
        total = float(np.sum(candidate))
        if abs(((total + np.pi) % (2 * np.pi)) - np.pi) > atol:
            continue
        for perm in itertools.permutations(range(4)):
            d0, d1, _d2, d3 = (candidate[i] for i in perm)
            x = (d0 + d1) / 2.0
            y = (d1 + d3) / 2.0
            z = (d0 + d3) / 2.0
            yield (float(x), float(y), float(z))


def weyl_coordinates(
    unitary: np.ndarray, atol: float = _DEFAULT_ATOL
) -> WeylCoordinates:
    """Compute the canonical Weyl coordinates of a two-qubit unitary.

    The computation only needs the eigenvalue spectrum of the magic-basis
    Gram matrix ``M2 = Up^T Up`` (no eigenvectors), which makes it fast and
    numerically robust; the full Cartan decomposition (with the local
    factors) is available from :func:`repro.linalg.kak.kak_decomposition`.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise ValueError(f"expected a 4x4 matrix, got shape {unitary.shape}")
    special, _phase = su_normalize(unitary)
    up = magic_transform(special)
    gram = up.T @ up
    eigenvalues = np.linalg.eigvals(gram)
    half_angles = np.angle(eigenvalues) / 2.0
    # Any branch/permutation assignment that satisfies the determinant
    # constraint (sum of angles = 0 mod 2 pi) reproduces the Gram spectrum
    # exactly, and the Gram spectrum is a complete local invariant, so the
    # first consistent candidate already lies in the correct equivalence
    # class; canonicalization then produces the unique chamber representative.
    for candidate in _coordinate_candidates_from_angles(half_angles, atol=1e-5):
        return canonicalize_coordinates(*candidate, atol=atol)
    # Fall back to the full decomposition (handles rare branch pathologies).
    from repro.linalg.kak import kak_decomposition

    return kak_decomposition(unitary).canonical


def weyl_distance(u_a: np.ndarray, u_b: np.ndarray) -> float:
    """Distance between the canonical classes of two unitaries."""
    return weyl_coordinates(u_a).distance(weyl_coordinates(u_b))
