"""Quantum-channel noise substrate.

The paper's evaluation deliberately keeps noise abstract: it assumes
uniform gate fidelity and uses gate counts / critical-path pulse duration
as reliability surrogates (Section 3.1 and 5).  This package provides the
machinery needed to *check* that abstraction end to end:

* :mod:`repro.noise.channels` — completely-positive trace-preserving
  (CPTP) channels in Kraus form: depolarising, amplitude damping, phase
  damping, thermal relaxation, Pauli channels.
* :mod:`repro.noise.density_matrix` — a vectorized density-matrix engine
  that applies gates as local tensor contractions and channels through
  cached superoperators (O(4^n * 4^k) per k-qubit operation, not the
  O(8^n) of full-register embedding).
* :mod:`repro.noise.circuit_noise` — a circuit-level noise model that
  attaches channels to gates (by error rate) and idle decoherence (by
  duration), plus helpers that turn a transpiled circuit into a simulated
  output fidelity.

The density-matrix state costs ``O(4^n)`` memory, so these tools top out
at 14 qubits (:data:`repro.noise.density_matrix.HARD_QUBIT_LIMIT`) —
enough to confirm that the count-based surrogates of the main experiments
order design points the same way a physical noise model does, including
on compiled circuits that spill past the logical width during routing.
"""

from repro.noise.channels import (
    QuantumChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from repro.noise.circuit_noise import (
    CircuitNoiseModel,
    circuit_output_fidelity,
    heavy_output_probability,
)
from repro.noise.density_matrix import DensityMatrix, DensityMatrixSimulator

__all__ = [
    "QuantumChannel",
    "identity_channel",
    "depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "pauli_channel",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "CircuitNoiseModel",
    "circuit_output_fidelity",
    "heavy_output_probability",
]
