"""Quantum channels in Kraus form.

A channel ``E`` maps density matrices to density matrices through a set of
Kraus operators ``{K_i}``:

    E(rho) = sum_i  K_i rho K_i^dagger,     sum_i K_i^dagger K_i = I.

All constructors here return :class:`QuantumChannel` objects whose Kraus
operators satisfy the completeness relation (checked on construction), so
every channel is completely positive and trace preserving by design.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.linalg.cache import LRUCache, matrix_fingerprint

_ATOL = 1e-9

#: Process-global cache of channel superoperators keyed on the Kraus set.
#: Mirrors the gate-unitary cache: noise models rebuild equal channels
#: freely (one depolarising channel per instruction, say) and still share
#: one superoperator buffer per distinct channel.
SUPEROPERATOR_CACHE = LRUCache(maxsize=256)

_PAULI_I = np.eye(2, dtype=complex)
_PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
_PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)


class QuantumChannel:
    """A CPTP map described by its Kraus operators."""

    def __init__(self, kraus_operators: Iterable[np.ndarray], name: str = "channel"):
        operators = [np.asarray(op, dtype=complex) for op in kraus_operators]
        if not operators:
            raise ValueError("a channel needs at least one Kraus operator")
        dim = operators[0].shape[0]
        for op in operators:
            if op.ndim != 2 or op.shape != (dim, dim):
                raise ValueError("all Kraus operators must be square and equally sized")
        num_qubits = int(round(np.log2(dim)))
        if 2 ** num_qubits != dim:
            raise ValueError("Kraus operator dimension must be a power of two")
        completeness = sum(op.conj().T @ op for op in operators)
        if not np.allclose(completeness, np.eye(dim), atol=1e-7):
            raise ValueError("Kraus operators do not satisfy the completeness relation")
        self._kraus = operators
        self._dim = dim
        self._num_qubits = num_qubits
        self._name = name
        self._superoperator: Optional[np.ndarray] = None

    # -- basic properties --------------------------------------------------

    @property
    def name(self) -> str:
        """Channel name (used in reports)."""
        return self._name

    @property
    def num_qubits(self) -> int:
        """Number of qubits the channel acts on."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return self._dim

    @property
    def kraus_operators(self) -> List[np.ndarray]:
        """Copies of the Kraus operators."""
        return [op.copy() for op in self._kraus]

    def superoperator(self) -> np.ndarray:
        """The channel as a ``d^2 x d^2`` matrix on row-major ``vec(rho)``.

        With row-major (C-order) vectorisation, ``vec(K rho K^dagger) =
        (K (x) K.conj()) vec(rho)``, so the superoperator is
        ``sum_i K_i (x) K_i.conj()``.  Built on first use and memoized both
        on the instance and in the process-global
        :data:`SUPEROPERATOR_CACHE` (keyed on the Kraus set, so equal
        channels built independently share one buffer); the density-matrix
        engine applies channels through this matrix instead of looping
        over Kraus operators.  The returned array is frozen.
        """
        if self._superoperator is None:
            key = (self._dim, tuple(matrix_fingerprint(op) for op in self._kraus))
            self._superoperator = SUPEROPERATOR_CACHE.get_or_create(
                key, self._build_superoperator
            )
        return self._superoperator

    def _build_superoperator(self) -> np.ndarray:
        matrix = np.zeros((self._dim ** 2, self._dim ** 2), dtype=complex)
        for op in self._kraus:
            matrix += np.kron(op, op.conj())
        matrix.setflags(write=False)
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuantumChannel({self._name!r}, qubits={self._num_qubits}, kraus={len(self._kraus)})"

    # -- action -----------------------------------------------------------

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix of matching dimension."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (self._dim, self._dim):
            raise ValueError(
                f"density matrix has shape {rho.shape}, expected ({self._dim}, {self._dim})"
            )
        result = np.zeros_like(rho)
        for op in self._kraus:
            result += op @ rho @ op.conj().T
        return result

    # -- algebra ------------------------------------------------------------

    def compose(self, other: "QuantumChannel", name: Optional[str] = None) -> "QuantumChannel":
        """Channel applying ``self`` first, then ``other`` (same qubit count)."""
        if other.num_qubits != self._num_qubits:
            raise ValueError("composed channels must act on the same number of qubits")
        kraus = [b @ a for a in self._kraus for b in other._kraus]
        return QuantumChannel(kraus, name=name or f"{self._name}*{other._name}")

    def tensor(self, other: "QuantumChannel", name: Optional[str] = None) -> "QuantumChannel":
        """Channel acting as ``self (x) other`` on a joint register."""
        kraus = [np.kron(a, b) for a in self._kraus for b in other._kraus]
        return QuantumChannel(kraus, name=name or f"{self._name}(x){other._name}")

    # -- characterisation -----------------------------------------------------

    def is_unitary(self) -> bool:
        """True when the channel is a single unitary Kraus operator."""
        if len(self._kraus) != 1:
            return False
        op = self._kraus[0]
        return bool(np.allclose(op @ op.conj().T, np.eye(self._dim), atol=_ATOL))

    def choi_matrix(self) -> np.ndarray:
        """The (unnormalised) Choi matrix sum_ij |i><j| (x) E(|i><j|)."""
        dim = self._dim
        choi = np.zeros((dim * dim, dim * dim), dtype=complex)
        for i in range(dim):
            for j in range(dim):
                basis = np.zeros((dim, dim), dtype=complex)
                basis[i, j] = 1.0
                mapped = np.zeros((dim, dim), dtype=complex)
                for op in self._kraus:
                    mapped += op @ basis @ op.conj().T
                choi += np.kron(basis, mapped)
        return choi

    def process_fidelity(self, target_unitary: Optional[np.ndarray] = None) -> float:
        """Process fidelity with respect to a target unitary (identity default).

        Uses ``F_pro = sum_i |Tr(U^dagger K_i)|^2 / d^2``.
        """
        dim = self._dim
        target = np.eye(dim, dtype=complex) if target_unitary is None else np.asarray(target_unitary)
        total = 0.0
        for op in self._kraus:
            total += abs(np.trace(target.conj().T @ op)) ** 2
        return float(total / dim ** 2)

    def average_gate_fidelity(self, target_unitary: Optional[np.ndarray] = None) -> float:
        """Average gate fidelity ``(d F_pro + 1) / (d + 1)``."""
        dim = self._dim
        f_pro = self.process_fidelity(target_unitary)
        return float((dim * f_pro + 1.0) / (dim + 1.0))


# -- standard single-qubit channels ------------------------------------------


def identity_channel(num_qubits: int = 1) -> QuantumChannel:
    """The do-nothing channel on ``num_qubits`` qubits."""
    return QuantumChannel([np.eye(2 ** num_qubits, dtype=complex)], name="identity")


def depolarizing_channel(error_rate: float, num_qubits: int = 1) -> QuantumChannel:
    """Depolarising channel with total error probability ``error_rate``.

    With probability ``error_rate`` the state is replaced by one of the
    ``4^n - 1`` non-identity Pauli operators chosen uniformly; with
    probability ``1 - error_rate`` it is untouched.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must lie in [0, 1]")
    paulis_1q = [_PAULI_I, _PAULI_X, _PAULI_Y, _PAULI_Z]
    paulis: List[np.ndarray] = paulis_1q
    for _ in range(num_qubits - 1):
        paulis = [np.kron(a, b) for a in paulis for b in paulis_1q]
    num_paulis = len(paulis)
    kraus = [np.sqrt(1.0 - error_rate) * paulis[0]]
    weight = np.sqrt(error_rate / (num_paulis - 1)) if num_paulis > 1 else 0.0
    for pauli in paulis[1:]:
        kraus.append(weight * pauli)
    return QuantumChannel(kraus, name=f"depolarizing({error_rate:.3g})")


def bit_flip_channel(probability: float) -> QuantumChannel:
    """Applies X with the given probability."""
    return pauli_channel(p_x=probability, p_y=0.0, p_z=0.0, name=f"bit_flip({probability:.3g})")


def phase_flip_channel(probability: float) -> QuantumChannel:
    """Applies Z with the given probability."""
    return pauli_channel(p_x=0.0, p_y=0.0, p_z=probability, name=f"phase_flip({probability:.3g})")


def pauli_channel(
    p_x: float, p_y: float, p_z: float, name: Optional[str] = None
) -> QuantumChannel:
    """Single-qubit Pauli channel with explicit X / Y / Z probabilities."""
    for probability in (p_x, p_y, p_z):
        if probability < 0.0:
            raise ValueError("Pauli probabilities must be non-negative")
    total = p_x + p_y + p_z
    if total > 1.0 + _ATOL:
        raise ValueError("Pauli probabilities must sum to at most 1")
    kraus = [np.sqrt(max(1.0 - total, 0.0)) * _PAULI_I]
    for probability, pauli in ((p_x, _PAULI_X), (p_y, _PAULI_Y), (p_z, _PAULI_Z)):
        if probability > 0.0:
            kraus.append(np.sqrt(probability) * pauli)
    return QuantumChannel(kraus, name=name or "pauli")


def amplitude_damping_channel(gamma: float) -> QuantumChannel:
    """Energy relaxation (T1 decay) with decay probability ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must lie in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return QuantumChannel([k0, k1], name=f"amplitude_damping({gamma:.3g})")


def phase_damping_channel(lam: float) -> QuantumChannel:
    """Pure dephasing (T_phi) with dephasing probability ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must lie in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, np.sqrt(lam)]], dtype=complex)
    return QuantumChannel([k0, k1], name=f"phase_damping({lam:.3g})")


def thermal_relaxation_channel(
    duration: float, t1: float, t2: float
) -> QuantumChannel:
    """Combined T1 / T2 relaxation over ``duration`` (same units as T1, T2).

    Modelled as amplitude damping with ``gamma = 1 - exp(-t/T1)`` composed
    with pure dephasing chosen so that the total off-diagonal decay matches
    ``exp(-t/T2)``.  Requires ``T2 <= 2 T1`` (physical constraint).
    """
    if duration < 0.0:
        raise ValueError("duration must be non-negative")
    if t1 <= 0.0 or t2 <= 0.0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2.0 * t1 + _ATOL:
        raise ValueError("physical relaxation requires T2 <= 2 * T1")
    gamma = 1.0 - np.exp(-duration / t1)
    # Off-diagonal decay from amplitude damping alone is sqrt(1 - gamma)
    # = exp(-t / (2 T1)); the rest must come from pure dephasing.
    total_coherence = np.exp(-duration / t2)
    damping_coherence = np.exp(-duration / (2.0 * t1))
    residual = total_coherence / damping_coherence
    lam = float(np.clip(1.0 - residual ** 2, 0.0, 1.0))
    channel = amplitude_damping_channel(gamma).compose(
        phase_damping_channel(lam), name=f"thermal_relaxation(t={duration:.3g})"
    )
    return channel
