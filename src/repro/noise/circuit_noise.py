"""Circuit-level noise model built from quantum channels.

The model attaches a depolarising channel to every gate (with separate 1Q
and 2Q error rates) and a thermal-relaxation channel to every qubit for
the circuit's total pulse duration.  It follows the protocol expected by
:class:`repro.noise.density_matrix.DensityMatrixSimulator`:

* ``channel_for(instruction)`` — noise applied right after an instruction,
* ``idle_channel_for(circuit, qubit)`` — end-of-circuit decoherence.

It also provides two output-quality metrics used by the validation
experiments:

* :func:`circuit_output_fidelity` — fidelity of the noisy output state
  against the ideal output state,
* :func:`heavy_output_probability` — the Quantum-Volume-style heavy output
  probability of the noisy distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.noise.channels import (
    QuantumChannel,
    depolarizing_channel,
    thermal_relaxation_channel,
)
from repro.noise.density_matrix import DEFAULT_MAX_QUBITS, DensityMatrixSimulator
from repro.simulator.statevector import StatevectorSimulator


@dataclass
class CircuitNoiseModel:
    """Depolarising gate errors plus duration-scaled decoherence.

    Attributes:
        one_qubit_error: depolarising error probability after each 1Q gate.
        two_qubit_error: depolarising error probability after each 2Q gate.
        t1: relaxation time in pulse-duration units (one full iSWAP = 1.0).
        t2: dephasing time in the same units (must satisfy ``t2 <= 2 t1``).
        duration_scale: multiplies the circuit's pulse-duration-weighted
            critical path to get the idle time charged to every qubit.
    """

    one_qubit_error: float = 0.0
    two_qubit_error: float = 0.005
    t1: float = 100.0
    t2: float = 100.0
    duration_scale: float = 1.0
    # Channels are pure functions of the model parameters (plus arity or
    # duration), so each distinct channel is built exactly once and its
    # cached superoperator is reused across every instruction.  The model
    # parameters are part of each cache key because the dataclass is
    # mutable: a sweep that reassigns error rates on a shared model must
    # not be served channels built from the old values.
    _channel_cache: Dict[Tuple, Optional[QuantumChannel]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for rate in (self.one_qubit_error, self.two_qubit_error):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("error rates must lie in [0, 1]")
        if self.t1 <= 0.0 or self.t2 <= 0.0:
            raise ValueError("T1 and T2 must be positive")
        if self.t2 > 2.0 * self.t1 + 1e-12:
            raise ValueError("physical relaxation requires T2 <= 2 * T1")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def ideal(cls) -> "CircuitNoiseModel":
        """A noiseless model (useful as a baseline in sweeps)."""
        return cls(one_qubit_error=0.0, two_qubit_error=0.0, t1=1e9, t2=1e9)

    @classmethod
    def from_gate_fidelity(
        cls,
        two_qubit_fidelity: float,
        t1: float = 100.0,
        t2: float = 100.0,
        one_qubit_fidelity: float = 1.0,
    ) -> "CircuitNoiseModel":
        """Build from average gate fidelities (the paper's 99 %-iSWAP style spec).

        The depolarising probability reproducing an average gate fidelity
        ``F`` on ``d``-dimensional gates is ``p = (1 - F) (d + 1) / d``.
        """
        for fidelity in (two_qubit_fidelity, one_qubit_fidelity):
            if not 0.0 < fidelity <= 1.0:
                raise ValueError("fidelities must lie in (0, 1]")
        two_qubit_error = (1.0 - two_qubit_fidelity) * 5.0 / 4.0
        one_qubit_error = (1.0 - one_qubit_fidelity) * 3.0 / 2.0
        return cls(
            one_qubit_error=float(np.clip(one_qubit_error, 0.0, 1.0)),
            two_qubit_error=float(np.clip(two_qubit_error, 0.0, 1.0)),
            t1=t1,
            t2=t2,
        )

    # -- DensityMatrixSimulator protocol -------------------------------------------

    def channel_for(self, instruction: Instruction) -> Optional[QuantumChannel]:
        """Depolarising channel attached to one instruction (None when noiseless)."""
        if instruction.name == "barrier":
            return None
        key = (
            "gate",
            instruction.num_qubits,
            self.one_qubit_error,
            self.two_qubit_error,
        )
        if key not in self._channel_cache:
            self._channel_cache[key] = self._build_gate_channel(instruction.num_qubits)
        return self._channel_cache[key]

    def _build_gate_channel(self, num_qubits: int) -> Optional[QuantumChannel]:
        if num_qubits == 1:
            if self.one_qubit_error <= 0.0:
                return None
            return depolarizing_channel(self.one_qubit_error, num_qubits=1)
        if self.two_qubit_error <= 0.0:
            return None
        if num_qubits == 2:
            return depolarizing_channel(self.two_qubit_error, num_qubits=2)
        # Multi-qubit gates are charged as if decomposed into 2Q gates later;
        # attach a single 2Q-strength depolarising channel per extra qubit pair.
        return depolarizing_channel(
            min(1.0, self.two_qubit_error * (num_qubits - 1)),
            num_qubits=num_qubits,
        )

    def idle_channel_for(
        self, circuit: QuantumCircuit, qubit: int
    ) -> Optional[QuantumChannel]:
        """Thermal relaxation charged for the circuit's total pulse duration."""
        duration = circuit.weighted_duration() * self.duration_scale
        if duration <= 0.0:
            return None
        if self.t1 > 1e8 and self.t2 > 1e8:
            return None
        key = ("idle", round(float(duration), 12), self.t1, self.t2)
        if key not in self._channel_cache:
            self._channel_cache[key] = thermal_relaxation_channel(
                duration, self.t1, self.t2
            )
        return self._channel_cache[key]

    # -- closed-form estimate (no simulation) ----------------------------------------

    def estimated_success_probability(self, circuit: QuantumCircuit) -> float:
        """Cheap product-of-fidelities estimate mirroring the paper's surrogate.

        Multiplies per-gate depolarising fidelities with a per-qubit
        decoherence factor for the circuit's pulse-duration-weighted
        critical path; no density-matrix simulation involved, so it works
        at any width.
        """
        probability = 1.0
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            if instruction.num_qubits == 1:
                probability *= 1.0 - self.one_qubit_error * 1.0 / 2.0
            else:
                probability *= 1.0 - self.two_qubit_error * 4.0 / 5.0
        duration = circuit.weighted_duration() * self.duration_scale
        if duration > 0.0 and (self.t1 < 1e8 or self.t2 < 1e8):
            per_qubit = 0.5 * (np.exp(-duration / self.t1) + np.exp(-duration / self.t2))
            probability *= float(per_qubit) ** circuit.num_qubits
        return float(probability)


def circuit_output_fidelity(
    circuit: QuantumCircuit,
    noise_model: CircuitNoiseModel,
    max_qubits: int = DEFAULT_MAX_QUBITS,
) -> float:
    """Fidelity of the noisy output state against the ideal output state."""
    ideal_state = StatevectorSimulator(max_qubits=max_qubits).run(circuit)
    noisy = DensityMatrixSimulator(max_qubits=max_qubits).run(circuit, noise_model=noise_model)
    return noisy.state_fidelity_with_statevector(ideal_state)


def heavy_output_probability(
    circuit: QuantumCircuit,
    noise_model: Optional[CircuitNoiseModel] = None,
    max_qubits: int = DEFAULT_MAX_QUBITS,
) -> float:
    """Quantum-Volume heavy output probability of the (noisy) output distribution.

    Heavy outputs are the basis states whose *ideal* probability exceeds the
    median ideal probability; the returned value is the total (noisy)
    probability mass on those outcomes.  An ideal QV circuit scores about
    0.85, a fully depolarised one scores 0.5.
    """
    ideal_probabilities = StatevectorSimulator(max_qubits=max_qubits).probabilities(circuit)
    median = float(np.median(ideal_probabilities))
    heavy = ideal_probabilities > median
    if noise_model is None:
        measured = ideal_probabilities
    else:
        measured = DensityMatrixSimulator(max_qubits=max_qubits).probabilities(
            circuit, noise_model=noise_model
        )
    return float(np.sum(measured[heavy]))
