"""Dense density-matrix representation and simulator.

The density matrix is stored over the little-endian register convention
used by :mod:`repro.simulator.statevector` (qubit 0 is the least
significant bit of the computational-basis index).  Gate matrices follow
the argument-order convention of :mod:`repro.circuits.gate` (first gate
argument = most significant bit of the gate matrix); the index gymnastics
needed to reconcile the two live here so callers never see them.

Evolution is *vectorized*: the density matrix is treated as a rank-``2n``
tensor (``n`` row axes then ``n`` column axes) and a ``k``-qubit unitary
is contracted directly into the row axes (and its conjugate into the
column axes) — O(4^n * 2^k) per gate instead of the O(8^n) cost of
embedding every operator into the full ``2^n x 2^n`` register.  Channels
are applied through their cached ``4^k x 4^k`` superoperators
(:meth:`repro.noise.channels.QuantumChannel.superoperator`) in a single
contraction over the ``2k`` affected axes, so the cost is independent of
the number of Kraus operators.  The legacy full-expansion path is kept as
the ``engine="expand"`` reference implementation; the equivalence test
suite pins the two engines against each other to float tolerance.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.noise.channels import QuantumChannel
from repro.simulator.fusion import SingleQubitFusion, apply_matrix_to_axes
from repro.simulator.statevector import sample_probability_counts

#: Absolute ceiling on the density-matrix width: a 2^28-entry complex
#: matrix (14 qubits) is already 4 GiB; anything wider cannot realistically
#: be allocated, so a mistyped width fails with a clear error instead of a
#: multi-gigabyte numpy allocation attempt.
HARD_QUBIT_LIMIT = 14

#: Default simulator ceiling (the full hard limit: local contractions make
#: 12-14 qubit noisy runs practical where the old full-expansion engine
#: was capped at 10).  Mind the memory at the top of the range: each
#: contraction allocates fresh output/transpose buffers, so peak RSS is
#: roughly 3x the state (~12 GiB at 14 qubits, ~0.75 GiB at 12).
DEFAULT_MAX_QUBITS = 14


class DensityMatrix:
    """A mixed quantum state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray, num_qubits: Optional[int] = None):
        matrix = np.asarray(data, dtype=complex)
        if matrix.ndim == 1:
            matrix = np.outer(matrix, matrix.conj())
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("density matrix must be square")
        dim = matrix.shape[0]
        inferred = int(round(np.log2(dim)))
        if 2 ** inferred != dim:
            raise ValueError("density matrix dimension must be a power of two")
        if num_qubits is not None and num_qubits != inferred:
            raise ValueError("num_qubits does not match the matrix dimension")
        self._num_qubits = inferred
        self._matrix = matrix

    # -- constructors ---------------------------------------------------------

    @classmethod
    def ground_state(cls, num_qubits: int) -> "DensityMatrix":
        """|0...0><0...0|."""
        dim = 2 ** num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        matrix[0, 0] = 1.0
        return cls(matrix)

    @classmethod
    def from_statevector(cls, state: np.ndarray) -> "DensityMatrix":
        """Pure state |psi><psi| from an amplitude vector."""
        return cls(np.asarray(state, dtype=complex))

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """I / 2^n."""
        dim = 2 ** num_qubits
        return cls(np.eye(dim, dtype=complex) / dim)

    # -- basic properties --------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the underlying matrix."""
        return self._matrix.copy()

    def trace(self) -> float:
        """Trace (1 for a normalised state)."""
        return float(np.real(np.trace(self._matrix)))

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states, 1/2^n for the maximally mixed state."""
        return float(np.real(np.einsum("ij,ji->", self._matrix, self._matrix)))

    def is_valid(self, atol: float = 1e-7) -> bool:
        """Hermitian, unit-trace, positive semidefinite (within tolerance)."""
        if not np.allclose(self._matrix, self._matrix.conj().T, atol=atol):
            return False
        if abs(self.trace() - 1.0) > atol:
            return False
        eigenvalues = np.linalg.eigvalsh(self._matrix)
        return bool(np.all(eigenvalues > -atol))

    # -- measurement-level queries -------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Computational-basis measurement probabilities."""
        return np.clip(np.real(np.diag(self._matrix)), 0.0, None)

    def expectation(self, observable: np.ndarray) -> float:
        """Tr(rho O) for a Hermitian observable of full dimension."""
        observable = np.asarray(observable, dtype=complex)
        if observable.shape != self._matrix.shape:
            raise ValueError("observable dimension mismatch")
        # Tr(A @ B) without materialising the product.
        return float(np.real(np.einsum("ij,ji->", self._matrix, observable)))

    def fidelity(self, other: "DensityMatrix") -> float:
        """Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2."""
        if other.num_qubits != self._num_qubits:
            raise ValueError("states act on different numbers of qubits")
        rho = self._matrix
        sigma = other._matrix
        # Fast path: either state pure -> F = Tr(rho sigma), again without
        # materialising the product.
        if self.purity() > 1.0 - 1e-9 or other.purity() > 1.0 - 1e-9:
            return float(np.real(np.einsum("ij,ji->", rho, sigma)))
        eigenvalues, eigenvectors = np.linalg.eigh(rho)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        sqrt_rho = (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.conj().T
        inner = sqrt_rho @ sigma @ sqrt_rho
        inner_eigenvalues = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
        return float(np.sum(np.sqrt(inner_eigenvalues)) ** 2)

    def state_fidelity_with_statevector(self, state: np.ndarray) -> float:
        """<psi| rho |psi> for a pure reference state."""
        state = np.asarray(state, dtype=complex)
        if state.shape != (2 ** self._num_qubits,):
            raise ValueError("statevector dimension mismatch")
        return float(np.real(state.conj() @ self._matrix @ state))

    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not in ``keep`` (result reindexed to ``keep`` order)."""
        keep = list(keep)
        if len(set(keep)) != len(keep):
            raise ValueError("keep indices must be distinct")
        for qubit in keep:
            if qubit < 0 or qubit >= self._num_qubits:
                raise ValueError(f"qubit {qubit} out of range")
        n = self._num_qubits
        tensor = self._matrix.reshape([2] * (2 * n))
        # One einsum does both the trace and the reindexing: give every
        # traced qubit's column axis the same label as its row axis
        # (repeated label = summed), and order the kept axes so that
        # keep[i] becomes qubit i of the output (axis p of the k output
        # row axes carries output qubit k-1-p).
        labels = list(range(2 * n))
        keep_set = set(keep)
        for qubit in range(n):
            if qubit not in keep_set:
                labels[2 * n - 1 - qubit] = n - 1 - qubit
        out_rows = [n - 1 - q for q in reversed(keep)]
        out_cols = [2 * n - 1 - q for q in reversed(keep)]
        dim = 2 ** len(keep)
        result = np.einsum(tensor, labels, out_rows + out_cols).reshape(dim, dim)
        return DensityMatrix(result)

    # -- evolution -----------------------------------------------------------------

    def _validated_qubits(self, qubits: Sequence[int]) -> tuple:
        """Distinct, in-range qubit indices (negative axis wrap-around would
        otherwise silently land an operator on the wrong qubit)."""
        qubits = tuple(int(q) for q in qubits)
        if len(set(qubits)) != len(qubits):
            raise ValueError("qubit indices must be distinct")
        for qubit in qubits:
            if qubit < 0 or qubit >= self._num_qubits:
                raise ValueError(f"qubit {qubit} out of range")
        return qubits

    def evolve_unitary(self, unitary: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a unitary acting on the listed qubits (gate-argument order)."""
        unitary = np.asarray(unitary, dtype=complex)
        qubits = self._validated_qubits(qubits)
        if unitary.shape != (2 ** len(qubits), 2 ** len(qubits)):
            raise ValueError("operator dimension does not match the qubit list")
        n = self._num_qubits
        tensor = self._matrix.reshape([2] * (2 * n))
        tensor = _apply_unitary_tensor(tensor, unitary, qubits, n)
        return DensityMatrix(tensor.reshape(2 ** n, 2 ** n))

    def evolve_channel(self, channel: QuantumChannel, qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a channel acting on the listed qubits (gate-argument order)."""
        qubits = self._validated_qubits(qubits)
        if channel.num_qubits != len(qubits):
            raise ValueError("channel arity does not match the qubit list")
        n = self._num_qubits
        tensor = self._matrix.reshape([2] * (2 * n))
        tensor = _apply_channel_tensor(tensor, channel, qubits, n)
        return DensityMatrix(tensor.reshape(2 ** n, 2 ** n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DensityMatrix(qubits={self._num_qubits}, purity={self.purity():.4f})"


# -- local-contraction engine ----------------------------------------------------
#
# The density matrix as a rank-2n tensor: axes 0..n-1 are the row bits and
# axes n..2n-1 the column bits, most-significant first, so the row (column)
# axis carrying qubit ``q`` is ``n - 1 - q`` (``2n - 1 - q``).


def _row_axes(qubits: Sequence[int], num_qubits: int) -> list:
    return [num_qubits - 1 - q for q in qubits]


def _col_axes(qubits: Sequence[int], num_qubits: int) -> list:
    return [2 * num_qubits - 1 - q for q in qubits]


def _apply_unitary_tensor(
    tensor: np.ndarray, unitary: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """rho -> U rho U^dagger via two local contractions.

    ``U`` contracts into the row axes; ``U.conj()`` into the column axes
    (``(rho U^dagger)_{ij} = sum_m U*_{jm} rho_{im}``).
    """
    tensor = apply_matrix_to_axes(tensor, unitary, _row_axes(qubits, num_qubits))
    return apply_matrix_to_axes(tensor, unitary.conj(), _col_axes(qubits, num_qubits))


def _apply_channel_tensor(
    tensor: np.ndarray, channel: QuantumChannel, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit channel through its cached 4^k x 4^k superoperator.

    The superoperator acts on row-major ``vec(rho)`` of the affected
    subsystem, i.e. jointly on the k row axes followed by the k column
    axes — exactly the axis list ``row_axes + col_axes``.
    """
    axes = _row_axes(qubits, num_qubits) + _col_axes(qubits, num_qubits)
    return apply_matrix_to_axes(tensor, channel.superoperator(), axes)


# -- legacy full-expansion engine -------------------------------------------------


def _expand_operator(operator: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed an operator on ``qubits`` into the full register.

    ``operator`` follows the gate convention (first listed qubit = most
    significant bit); the returned matrix acts on the little-endian full
    register.  This is the legacy O(8^n)-per-gate path, kept as the
    reference implementation for the equivalence tests and benchmarks.
    """
    qubits = [int(q) for q in qubits]
    arity = len(qubits)
    if operator.shape != (2 ** arity, 2 ** arity):
        raise ValueError("operator dimension does not match the qubit list")
    dim = 2 ** num_qubits
    op_tensor = operator.reshape([2] * (2 * arity))
    full = np.eye(dim, dtype=complex).reshape([2] * (2 * num_qubits))
    # Row axis of full for qubit q is (num_qubits - 1 - q).
    row_axes = [num_qubits - 1 - q for q in qubits]
    # Contract the operator's input indices with the identity's row axes:
    # result(out_1..out_k, remaining row axes..., col axes...) then move the
    # new output axes back into place.
    contracted = np.tensordot(
        op_tensor, full, axes=(list(range(arity, 2 * arity)), row_axes)
    )
    moved = np.moveaxis(contracted, range(arity), row_axes)
    return moved.reshape(dim, dim)


def _evolve_unitary_expand(
    matrix: np.ndarray, unitary: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Legacy unitary evolution: embed into the full register, two matmuls."""
    expanded = _expand_operator(np.asarray(unitary, dtype=complex), qubits, num_qubits)
    return expanded @ matrix @ expanded.conj().T


def _evolve_channel_expand(
    matrix: np.ndarray, channel: QuantumChannel, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Legacy channel evolution: one full-register expansion per Kraus operator."""
    result = np.zeros_like(matrix)
    for op in channel.kraus_operators:
        expanded = _expand_operator(op, qubits, num_qubits)
        result += expanded @ matrix @ expanded.conj().T
    return result


class DensityMatrixSimulator:
    """Runs circuits on density matrices, optionally inserting noise channels.

    ``engine`` selects the evolution strategy:

    * ``"local"`` (default) — in-place rank-``2n`` tensor contractions with
      single-qubit fusion and cached channel superoperators,
    * ``"expand"`` — the legacy full-register embedding, kept as a slow
      reference implementation for equivalence testing.
    """

    def __init__(self, max_qubits: int = DEFAULT_MAX_QUBITS, engine: str = "local"):
        max_qubits = int(max_qubits)
        if max_qubits < 1:
            raise ValueError("max_qubits must be at least 1")
        if max_qubits > HARD_QUBIT_LIMIT:
            raise ValueError(
                f"max_qubits={max_qubits} exceeds the density-matrix limit of "
                f"{HARD_QUBIT_LIMIT} qubits (a 4**{max_qubits}-entry matrix "
                "cannot be allocated); use a smaller width"
            )
        if engine not in ("local", "expand"):
            raise ValueError("engine must be 'local' or 'expand'")
        self._max_qubits = max_qubits
        self._engine = engine

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[DensityMatrix] = None,
        noise_model: Optional["object"] = None,
    ) -> DensityMatrix:
        """Simulate ``circuit``; ``noise_model`` follows the CircuitNoiseModel protocol.

        The noise model, when given, is asked for a channel after every
        instruction (``channel_for(instruction)``) and for a per-qubit idle
        channel at the end (``idle_channel_for(circuit, qubit)``); either
        hook may return ``None``.
        """
        num_qubits = circuit.num_qubits
        if num_qubits > self._max_qubits:
            raise ValueError(
                f"circuit has {num_qubits} qubits which exceeds the "
                f"density-matrix limit of {self._max_qubits}"
            )
        state = initial_state or DensityMatrix.ground_state(num_qubits)
        if state.num_qubits != num_qubits:
            raise ValueError("initial state size does not match the circuit")
        if self._engine == "expand":
            matrix = self._run_expand(circuit, state.matrix, noise_model)
        else:
            matrix = self._run_local(circuit, state.matrix, noise_model)
        return DensityMatrix(matrix)

    def _run_local(
        self,
        circuit: QuantumCircuit,
        matrix: np.ndarray,
        noise_model: Optional["object"],
    ) -> np.ndarray:
        """Vectorized evolution: one rank-2n tensor updated in place.

        Runs of noiseless single-qubit gates are fused per qubit (the same
        optimisation as the state-vector simulator); a pending run is only
        contracted when a wider gate or a noise channel touches its qubit.
        """
        n = circuit.num_qubits
        tensor = matrix.reshape([2] * (2 * n))
        fusion = SingleQubitFusion()

        def flush(qubits: Optional[Sequence[int]] = None) -> None:
            nonlocal tensor
            for qubit, fused in fusion.drain(qubits):
                tensor = _apply_unitary_tensor(tensor, fused, (qubit,), n)

        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            channel = (
                noise_model.channel_for(instruction) if noise_model is not None else None
            )
            if instruction.num_qubits == 1 and channel is None:
                fusion.push(instruction.qubits[0], instruction.gate.cached_matrix())
                continue
            flush(instruction.qubits)
            tensor = _apply_unitary_tensor(
                tensor, instruction.gate.cached_matrix(), instruction.qubits, n
            )
            if channel is not None:
                tensor = _apply_channel_tensor(tensor, channel, instruction.qubits, n)
        flush()
        if noise_model is not None:
            for qubit in range(n):
                idle = noise_model.idle_channel_for(circuit, qubit)
                if idle is not None:
                    tensor = _apply_channel_tensor(tensor, idle, (qubit,), n)
        return tensor.reshape(2 ** n, 2 ** n)

    def _run_expand(
        self,
        circuit: QuantumCircuit,
        matrix: np.ndarray,
        noise_model: Optional["object"],
    ) -> np.ndarray:
        """Legacy evolution: embed every operator into the full register."""
        n = circuit.num_qubits
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            matrix = _evolve_unitary_expand(
                matrix, instruction.gate.matrix(), instruction.qubits, n
            )
            if noise_model is not None:
                channel = noise_model.channel_for(instruction)
                if channel is not None:
                    matrix = _evolve_channel_expand(
                        matrix, channel, instruction.qubits, n
                    )
        if noise_model is not None:
            for qubit in range(n):
                idle = noise_model.idle_channel_for(circuit, qubit)
                if idle is not None:
                    matrix = _evolve_channel_expand(matrix, idle, (qubit,), n)
        return matrix

    def probabilities(
        self, circuit: QuantumCircuit, noise_model: Optional["object"] = None
    ) -> np.ndarray:
        """Final measurement probabilities (little-endian basis ordering)."""
        return self.run(circuit, noise_model=noise_model).probabilities()

    def sample_counts(
        self,
        circuit: QuantumCircuit,
        shots: int,
        noise_model: Optional["object"] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, int]:
        """Sample measurement outcomes; keys are little-endian bitstrings.

        Raises :class:`ValueError` when the probability vector is all zero
        (a numerically collapsed state) instead of producing ``NaN``
        sampling weights.
        """
        return sample_probability_counts(
            self.probabilities(circuit, noise_model=noise_model),
            circuit.num_qubits,
            shots,
            seed=seed,
        )
