"""Dense density-matrix representation and simulator.

The density matrix is stored over the little-endian register convention
used by :mod:`repro.simulator.statevector` (qubit 0 is the least
significant bit of the computational-basis index).  Gate matrices follow
the argument-order convention of :mod:`repro.circuits.gate` (first gate
argument = most significant bit of the gate matrix); the index gymnastics
needed to reconcile the two live here so callers never see them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.noise.channels import QuantumChannel


class DensityMatrix:
    """A mixed quantum state on ``num_qubits`` qubits."""

    def __init__(self, data: np.ndarray, num_qubits: Optional[int] = None):
        matrix = np.asarray(data, dtype=complex)
        if matrix.ndim == 1:
            matrix = np.outer(matrix, matrix.conj())
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("density matrix must be square")
        dim = matrix.shape[0]
        inferred = int(round(np.log2(dim)))
        if 2 ** inferred != dim:
            raise ValueError("density matrix dimension must be a power of two")
        if num_qubits is not None and num_qubits != inferred:
            raise ValueError("num_qubits does not match the matrix dimension")
        self._num_qubits = inferred
        self._matrix = matrix

    # -- constructors ---------------------------------------------------------

    @classmethod
    def ground_state(cls, num_qubits: int) -> "DensityMatrix":
        """|0...0><0...0|."""
        dim = 2 ** num_qubits
        matrix = np.zeros((dim, dim), dtype=complex)
        matrix[0, 0] = 1.0
        return cls(matrix)

    @classmethod
    def from_statevector(cls, state: np.ndarray) -> "DensityMatrix":
        """Pure state |psi><psi| from an amplitude vector."""
        return cls(np.asarray(state, dtype=complex))

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """I / 2^n."""
        dim = 2 ** num_qubits
        return cls(np.eye(dim, dtype=complex) / dim)

    # -- basic properties --------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the underlying matrix."""
        return self._matrix.copy()

    def trace(self) -> float:
        """Trace (1 for a normalised state)."""
        return float(np.real(np.trace(self._matrix)))

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states, 1/2^n for the maximally mixed state."""
        return float(np.real(np.trace(self._matrix @ self._matrix)))

    def is_valid(self, atol: float = 1e-7) -> bool:
        """Hermitian, unit-trace, positive semidefinite (within tolerance)."""
        if not np.allclose(self._matrix, self._matrix.conj().T, atol=atol):
            return False
        if abs(self.trace() - 1.0) > atol:
            return False
        eigenvalues = np.linalg.eigvalsh(self._matrix)
        return bool(np.all(eigenvalues > -atol))

    # -- measurement-level queries -------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Computational-basis measurement probabilities."""
        return np.clip(np.real(np.diag(self._matrix)), 0.0, None)

    def expectation(self, observable: np.ndarray) -> float:
        """Tr(rho O) for a Hermitian observable of full dimension."""
        observable = np.asarray(observable, dtype=complex)
        if observable.shape != self._matrix.shape:
            raise ValueError("observable dimension mismatch")
        return float(np.real(np.trace(self._matrix @ observable)))

    def fidelity(self, other: "DensityMatrix") -> float:
        """Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2."""
        if other.num_qubits != self._num_qubits:
            raise ValueError("states act on different numbers of qubits")
        rho = self._matrix
        sigma = other._matrix
        # Fast path: either state pure -> F = <psi| sigma |psi>.
        if self.purity() > 1.0 - 1e-9:
            return float(np.real(np.trace(rho @ sigma)))
        if other.purity() > 1.0 - 1e-9:
            return float(np.real(np.trace(sigma @ rho)))
        eigenvalues, eigenvectors = np.linalg.eigh(rho)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        sqrt_rho = (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.conj().T
        inner = sqrt_rho @ sigma @ sqrt_rho
        inner_eigenvalues = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
        return float(np.sum(np.sqrt(inner_eigenvalues)) ** 2)

    def state_fidelity_with_statevector(self, state: np.ndarray) -> float:
        """<psi| rho |psi> for a pure reference state."""
        state = np.asarray(state, dtype=complex)
        if state.shape != (2 ** self._num_qubits,):
            raise ValueError("statevector dimension mismatch")
        return float(np.real(state.conj() @ self._matrix @ state))

    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not in ``keep`` (result reindexed to ``keep`` order)."""
        keep = list(keep)
        if len(set(keep)) != len(keep):
            raise ValueError("keep indices must be distinct")
        for qubit in keep:
            if qubit < 0 or qubit >= self._num_qubits:
                raise ValueError(f"qubit {qubit} out of range")
        n = self._num_qubits
        tensor = self._matrix.reshape([2] * (2 * n))
        # Axis q of the row (column) indices corresponds to qubit n-1-q.
        keep_axes_row = [n - 1 - q for q in keep]
        traced_axes = [axis for axis in range(n) if axis not in keep_axes_row]
        for offset, axis in enumerate(sorted(traced_axes)):
            tensor = np.trace(
                tensor, axis1=axis - offset, axis2=axis - offset + n - offset
            )
        dim = 2 ** len(keep)
        result = tensor.reshape(dim, dim)
        # Reorder the kept qubits so that keep[i] becomes qubit i of the output.
        current_order = sorted(keep, reverse=True)
        desired_order = list(reversed(keep))
        if current_order != desired_order:
            k = len(keep)
            tensor = result.reshape([2] * (2 * k))
            permutation = [current_order.index(q) for q in desired_order]
            tensor = np.transpose(
                tensor, permutation + [p + k for p in permutation]
            )
            result = tensor.reshape(dim, dim)
        return DensityMatrix(result)

    # -- evolution -----------------------------------------------------------------

    def evolve_unitary(self, unitary: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a unitary acting on the listed qubits (gate-argument order)."""
        expanded = _expand_operator(np.asarray(unitary, dtype=complex), qubits, self._num_qubits)
        return DensityMatrix(expanded @ self._matrix @ expanded.conj().T)

    def evolve_channel(self, channel: QuantumChannel, qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a channel acting on the listed qubits (gate-argument order)."""
        if channel.num_qubits != len(tuple(qubits)):
            raise ValueError("channel arity does not match the qubit list")
        result = np.zeros_like(self._matrix)
        for op in channel.kraus_operators:
            expanded = _expand_operator(op, qubits, self._num_qubits)
            result += expanded @ self._matrix @ expanded.conj().T
        return DensityMatrix(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DensityMatrix(qubits={self._num_qubits}, purity={self.purity():.4f})"


def _expand_operator(operator: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed an operator on ``qubits`` into the full register.

    ``operator`` follows the gate convention (first listed qubit = most
    significant bit); the returned matrix acts on the little-endian full
    register.
    """
    qubits = [int(q) for q in qubits]
    arity = len(qubits)
    if operator.shape != (2 ** arity, 2 ** arity):
        raise ValueError("operator dimension does not match the qubit list")
    dim = 2 ** num_qubits
    op_tensor = operator.reshape([2] * (2 * arity))
    full = np.eye(dim, dtype=complex).reshape([2] * (2 * num_qubits))
    # Row axis of full for qubit q is (num_qubits - 1 - q).
    row_axes = [num_qubits - 1 - q for q in qubits]
    # Contract the operator's input indices with the identity's row axes:
    # result(out_1..out_k, remaining row axes..., col axes...) then move the
    # new output axes back into place.
    contracted = np.tensordot(
        op_tensor, full, axes=(list(range(arity, 2 * arity)), row_axes)
    )
    moved = np.moveaxis(contracted, range(arity), row_axes)
    return moved.reshape(dim, dim)


class DensityMatrixSimulator:
    """Runs circuits on density matrices, optionally inserting noise channels."""

    def __init__(self, max_qubits: int = 10):
        self._max_qubits = int(max_qubits)

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[DensityMatrix] = None,
        noise_model: Optional["object"] = None,
    ) -> DensityMatrix:
        """Simulate ``circuit``; ``noise_model`` follows the CircuitNoiseModel protocol.

        The noise model, when given, is asked for a channel after every
        instruction (``channel_for(instruction)``) and for a per-qubit idle
        channel at the end (``idle_channel_for(circuit, qubit)``); either
        hook may return ``None``.
        """
        if circuit.num_qubits > self._max_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} qubits which exceeds the "
                f"density-matrix limit of {self._max_qubits}"
            )
        state = initial_state or DensityMatrix.ground_state(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise ValueError("initial state size does not match the circuit")
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            state = state.evolve_unitary(instruction.gate.matrix(), instruction.qubits)
            if noise_model is not None:
                channel = noise_model.channel_for(instruction)
                if channel is not None:
                    state = state.evolve_channel(channel, instruction.qubits)
        if noise_model is not None:
            for qubit in range(circuit.num_qubits):
                idle = noise_model.idle_channel_for(circuit, qubit)
                if idle is not None:
                    state = state.evolve_channel(idle, (qubit,))
        return state

    def probabilities(
        self, circuit: QuantumCircuit, noise_model: Optional["object"] = None
    ) -> np.ndarray:
        """Final measurement probabilities (little-endian basis ordering)."""
        return self.run(circuit, noise_model=noise_model).probabilities()

    def sample_counts(
        self,
        circuit: QuantumCircuit,
        shots: int,
        noise_model: Optional["object"] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, int]:
        """Sample measurement outcomes; keys are little-endian bitstrings."""
        probabilities = self.probabilities(circuit, noise_model=noise_model)
        probabilities = probabilities / probabilities.sum()
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        counts: Dict[str, int] = {}
        width = circuit.num_qubits
        for outcome in outcomes:
            key = format(int(outcome), f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return counts
