"""OpenQASM 2 serialisation for the circuit IR.

The exporter and parser speak a small, documented dialect of OpenQASM 2:
the standard ``qelib1``-style gates plus the two-qubit families this
library is built around (``iswap``, ``siswap``, ``niswap(n)``, ``fsim``,
``syc``, ``zx``), emitted as opaque declarations so that the text remains
valid OpenQASM even for tools that do not know them.

Typical use::

    from repro.qasm import circuit_to_qasm, circuit_from_qasm

    text = circuit_to_qasm(circuit)
    rebuilt = circuit_from_qasm(text)
"""

from repro.qasm.exporter import QasmExportError, circuit_to_qasm
from repro.qasm.parser import QasmParseError, circuit_from_qasm

__all__ = [
    "circuit_to_qasm",
    "circuit_from_qasm",
    "QasmExportError",
    "QasmParseError",
]
