"""Export :class:`~repro.circuits.circuit.QuantumCircuit` objects to OpenQASM 2."""

from __future__ import annotations

from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates import NthRootISwapGate

#: Gate names emitted verbatim (standard qelib1 vocabulary).
_STANDARD_NAMES = {
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "rx",
    "ry",
    "rz",
    "p",
    "u3",
    "cx",
    "cz",
    "cp",
    "rzz",
    "rxx",
    "swap",
    "ccx",
}

#: Extension gates declared as ``opaque`` so the output stays parseable.
_OPAQUE_DECLARATIONS = {
    "iswap": "opaque iswap a,b;",
    "siswap": "opaque siswap a,b;",
    "fsim": "opaque fsim(theta,phi) a,b;",
    "syc": "opaque syc a,b;",
    "zx": "opaque zx(theta) a,b;",
    "niswap": "opaque niswap(n) a,b;",
}


class QasmExportError(ValueError):
    """Raised when a circuit contains something OpenQASM 2 cannot express."""


def _format_parameter(value: float) -> str:
    return f"{value:.12g}"


def _instruction_line(instruction: Instruction) -> str:
    """One QASM statement for an instruction."""
    gate = instruction.gate
    qubits = ",".join(f"q[{index}]" for index in instruction.qubits)
    if gate.name == "barrier":
        return f"barrier {qubits};"
    if isinstance(gate, NthRootISwapGate) and gate.name not in ("iswap", "siswap"):
        return f"niswap({gate.root}) {qubits};"
    if gate.name == "unitary":
        raise QasmExportError(
            "raw unitary gates cannot be expressed in OpenQASM 2; decompose the "
            "circuit (e.g. transpile it to a basis) before exporting"
        )
    name = gate.name
    if name not in _STANDARD_NAMES and name not in _OPAQUE_DECLARATIONS and name != "niswap":
        raise QasmExportError(f"gate {name!r} has no OpenQASM 2 spelling")
    if gate.params:
        params = ",".join(_format_parameter(p) for p in gate.params)
        return f"{name}({params}) {qubits};"
    return f"{name} {qubits};"


def circuit_to_qasm(circuit: QuantumCircuit, include_header_comment: bool = True) -> str:
    """Serialise a circuit to OpenQASM 2 text.

    Extension gates (iSWAP family, fSim, SYC, ZX) are emitted behind
    ``opaque`` declarations; raw :class:`~repro.circuits.gate.UnitaryGate`
    instructions are rejected with :class:`QasmExportError` because QASM 2
    has no way to spell an arbitrary matrix.
    """
    lines: List[str] = []
    if include_header_comment:
        lines.append(f"// {circuit.name} ({circuit.num_qubits} qubits)")
    lines.append("OPENQASM 2.0;")
    lines.append('include "qelib1.inc";')
    used_opaque = sorted(
        {
            "niswap"
            if isinstance(inst.gate, NthRootISwapGate) and inst.gate.name not in ("iswap", "siswap")
            else inst.gate.name
            for inst in circuit
            if inst.gate.name in _OPAQUE_DECLARATIONS
            or (isinstance(inst.gate, NthRootISwapGate) and inst.gate.name not in _STANDARD_NAMES)
        }
    )
    for name in used_opaque:
        lines.append(_OPAQUE_DECLARATIONS[name])
    lines.append(f"qreg q[{circuit.num_qubits}];")
    for instruction in circuit:
        lines.append(_instruction_line(instruction))
    return "\n".join(lines) + "\n"
