"""Parse (a subset of) OpenQASM 2 into :class:`~repro.circuits.circuit.QuantumCircuit`.

The parser accepts the dialect produced by :mod:`repro.qasm.exporter`:

* one ``qreg`` declaration (classical registers are accepted and ignored),
* the standard qelib1 gates this library implements,
* the opaque extension gates ``iswap``, ``siswap``, ``niswap(n)``,
  ``fsim(theta, phi)``, ``syc`` and ``zx(theta)``,
* ``barrier`` statements,
* ``measure`` statements (accepted and ignored — the IR has no classical bits).

Parameter expressions may use ``pi``, the four arithmetic operators and
parentheses; they are evaluated with a restricted ``eval``.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.gates import (
    CCXGate,
    CPhaseGate,
    CXGate,
    CZGate,
    FSimGate,
    HGate,
    IGate,
    ISwapGate,
    NthRootISwapGate,
    PhaseGate,
    RXGate,
    RXXGate,
    RYGate,
    RZGate,
    RZZGate,
    SdgGate,
    SGate,
    SqrtISwapGate,
    SwapGate,
    SXGate,
    SycamoreGate,
    TdgGate,
    TGate,
    U3Gate,
    XGate,
    YGate,
    ZGate,
    ZXGate,
)


class QasmParseError(ValueError):
    """Raised on malformed or unsupported OpenQASM input."""


#: gate name -> (number of parameters, number of qubits, factory)
_GATE_TABLE: Dict[str, Tuple[int, int, Callable[..., Gate]]] = {
    "id": (0, 1, IGate),
    "x": (0, 1, XGate),
    "y": (0, 1, YGate),
    "z": (0, 1, ZGate),
    "h": (0, 1, HGate),
    "s": (0, 1, SGate),
    "sdg": (0, 1, SdgGate),
    "t": (0, 1, TGate),
    "tdg": (0, 1, TdgGate),
    "sx": (0, 1, SXGate),
    "rx": (1, 1, RXGate),
    "ry": (1, 1, RYGate),
    "rz": (1, 1, RZGate),
    "p": (1, 1, PhaseGate),
    "u1": (1, 1, PhaseGate),
    "u3": (3, 1, U3Gate),
    "u": (3, 1, U3Gate),
    "cx": (0, 2, CXGate),
    "CX": (0, 2, CXGate),
    "cz": (0, 2, CZGate),
    "cp": (1, 2, CPhaseGate),
    "cu1": (1, 2, CPhaseGate),
    "rzz": (1, 2, RZZGate),
    "rxx": (1, 2, RXXGate),
    "swap": (0, 2, SwapGate),
    "iswap": (0, 2, ISwapGate),
    "siswap": (0, 2, SqrtISwapGate),
    "niswap": (1, 2, lambda n: NthRootISwapGate(int(round(n)))),
    "fsim": (2, 2, FSimGate),
    "syc": (0, 2, SycamoreGate),
    "zx": (1, 2, ZXGate),
    "ccx": (0, 3, CCXGate),
}

_SAFE_EVAL_NAMES = {"pi": math.pi, "sin": math.sin, "cos": math.cos, "sqrt": math.sqrt}

_STATEMENT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*(?:\((?P<params>[^)]*)\))?\s*(?P<args>[^;]*)$"
)
_QREG_RE = re.compile(r"^qreg\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*\[\s*(?P<size>\d+)\s*\]$")
_QUBIT_RE = re.compile(r"^(?P<register>[A-Za-z_][A-Za-z_0-9]*)\s*\[\s*(?P<index>\d+)\s*\]$")


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        if "//" in line:
            line = line[: line.index("//")]
        lines.append(line)
    return "\n".join(lines)


def _evaluate_parameter(expression: str) -> float:
    expression = expression.strip()
    if not expression:
        raise QasmParseError("empty gate parameter")
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\)\s_A-Za-z]*", expression):
        raise QasmParseError(f"unsupported characters in parameter {expression!r}")
    try:
        value = eval(  # noqa: S307 - restricted namespace, validated characters
            expression, {"__builtins__": {}}, dict(_SAFE_EVAL_NAMES)
        )
    except Exception as exc:
        raise QasmParseError(f"cannot evaluate parameter {expression!r}") from exc
    return float(value)


def _parse_qubits(args: str, register: str, size: int, statement: str) -> List[int]:
    qubits: List[int] = []
    for token in (part.strip() for part in args.split(",") if part.strip()):
        match = _QUBIT_RE.match(token)
        if not match:
            raise QasmParseError(f"cannot parse qubit operand {token!r} in {statement!r}")
        if match.group("register") != register:
            raise QasmParseError(
                f"unknown register {match.group('register')!r} in {statement!r}"
            )
        index = int(match.group("index"))
        if index >= size:
            raise QasmParseError(f"qubit index {index} exceeds register size {size}")
        qubits.append(index)
    return qubits


def circuit_from_qasm(text: str, name: str = "from_qasm") -> QuantumCircuit:
    """Parse OpenQASM 2 text into a :class:`QuantumCircuit`."""
    stripped = _strip_comments(text)
    statements = [s.strip() for s in stripped.replace("\n", " ").split(";") if s.strip()]
    if not statements or not statements[0].startswith("OPENQASM"):
        raise QasmParseError("input does not start with an OPENQASM version statement")
    register_name = ""
    register_size = 0
    circuit: QuantumCircuit = QuantumCircuit(1, name=name)
    have_register = False
    for statement in statements[1:]:
        if statement.startswith("include") or statement.startswith("creg"):
            continue
        if statement.startswith("opaque") or statement.startswith("gate "):
            continue
        if statement.startswith("qreg"):
            if have_register:
                raise QasmParseError("only a single quantum register is supported")
            match = _QREG_RE.match(statement)
            if not match:
                raise QasmParseError(f"cannot parse register declaration {statement!r}")
            register_name = match.group("name")
            register_size = int(match.group("size"))
            if register_size < 1:
                raise QasmParseError("quantum register must have at least one qubit")
            circuit = QuantumCircuit(register_size, name=name)
            have_register = True
            continue
        if statement.startswith("measure") or statement.startswith("reset"):
            continue
        if not have_register:
            raise QasmParseError(f"gate statement {statement!r} before any qreg declaration")
        match = _STATEMENT_RE.match(statement)
        if not match:
            raise QasmParseError(f"cannot parse statement {statement!r}")
        gate_name = match.group("name")
        params_text = match.group("params")
        args_text = match.group("args")
        qubits = _parse_qubits(args_text, register_name, register_size, statement)
        if gate_name == "barrier":
            circuit.barrier(qubits if qubits else None)
            continue
        if gate_name not in _GATE_TABLE:
            raise QasmParseError(f"unsupported gate {gate_name!r}")
        num_params, num_qubits, factory = _GATE_TABLE[gate_name]
        params = (
            [_evaluate_parameter(p) for p in params_text.split(",")] if params_text else []
        )
        if len(params) != num_params:
            raise QasmParseError(
                f"gate {gate_name!r} expects {num_params} parameters, got {len(params)}"
            )
        if len(qubits) != num_qubits:
            raise QasmParseError(
                f"gate {gate_name!r} expects {num_qubits} qubits, got {len(qubits)}"
            )
        circuit.append(factory(*params), tuple(qubits))
    if not have_register:
        raise QasmParseError("no qreg declaration found")
    return circuit
