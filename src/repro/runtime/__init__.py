"""Experiment runtime: parallel fan-out and result caching.

This package is the execution seam between the experiment drivers in
:mod:`repro.experiments` and the transpilation pipeline in
:mod:`repro.core`:

* :class:`ExperimentRunner` — fans independent sweep points out over a
  process pool with ordered collection and a serial fallback, so
  ``parallel=True`` runs are bit-identical to serial ones;
* :class:`ResultCache` — memoizes per-point transpile metrics keyed on the
  full point specification, so repeated sweeps skip recomputation;
* :class:`PersistentResultCache` — the same cache backed by a directory of
  compressed records (``--cache-dir`` / ``REPRO_CACHE_DIR``), so repeated
  CLI *processes* skip transpilation too;
* :func:`point_seed` — deterministic derived seeding that is stable across
  worker processes (unlike the salted builtin ``hash``), for callers that
  want per-point seeds; the built-in drivers deliberately keep the paper's
  shared-seed convention;
* :class:`FailurePolicy` / :class:`FaultStats` — retry, per-task timeout
  and poison-task quarantine for the parallel path, with the absorbed
  failures tallied on :attr:`ExperimentRunner.fault_stats`;
* :class:`FaultPlan` / :class:`FaultInjector` — deterministic fault
  injection (``REPRO_FAULT_PLAN`` / ``repro sweep --inject-faults``) so
  every recovery path is exercised reproducibly;
* :func:`verify_cache` — full-directory CRC/index audit of a persistent
  cache (``repro cache verify``), with ``repair=True`` dropping the
  corrupt frames.

Usage::

    from repro.runtime import ExperimentRunner
    from repro.experiments import swap_study

    runner = ExperimentRunner(parallel=True, max_workers=4)
    result = swap_study("small", ["Corral1,1", "Hypercube"], runner=runner)

Every CLI experiment command accepts ``--parallel`` / ``--workers`` and
builds the runner the same way; ``REPRO_PARALLEL=1`` and ``REPRO_WORKERS``
select the defaults process-wide.
"""

from repro.runtime.cache import ResultCache, backend_cache_key, point_cache_key
from repro.runtime.disk_cache import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    DEFAULT_SEGMENT_MAX_BYTES,
    GCReport,
    PersistentResultCache,
    SegmentReport,
    cache_dir_from_env,
    collect_garbage,
    human_bytes,
    key_digest,
    max_bytes_from_env,
    resolve_result_cache,
    segment_stats,
    verify_cache,
)
from repro.runtime.disk_cache import VerifyReport
from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    write_corrupt_frame,
)
from repro.runtime.runner import (
    PARALLEL_ENV,
    WORKERS_ENV,
    ExperimentRunner,
    FailurePolicy,
    FaultStats,
    PoisonTaskError,
    default_worker_count,
    parallel_enabled_by_env,
    point_seed,
    serial_runner,
)

__all__ = [
    "ResultCache",
    "backend_cache_key",
    "point_cache_key",
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "GCReport",
    "PersistentResultCache",
    "SegmentReport",
    "cache_dir_from_env",
    "collect_garbage",
    "human_bytes",
    "key_digest",
    "max_bytes_from_env",
    "resolve_result_cache",
    "segment_stats",
    "verify_cache",
    "VerifyReport",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "write_corrupt_frame",
    "PARALLEL_ENV",
    "WORKERS_ENV",
    "ExperimentRunner",
    "FailurePolicy",
    "FaultStats",
    "PoisonTaskError",
    "default_worker_count",
    "parallel_enabled_by_env",
    "point_seed",
    "serial_runner",
]
