"""Result caching for experiment sweep points.

A sweep point is fully determined by its specification — workload, size,
backend identity, seed and transpiler configuration — and the transpiler
is deterministic given that specification, so its metrics can be memoized.
Repeated sweeps (a swap study followed by a headline study over the same
grid, a CLI rerun with one extra size, a benchmark warm pass) then skip
transpilation entirely for every point already seen in this process.

Two-tier protocol
-----------------

:class:`ResultCache` is the single-tier (memory-only) base of a two-tier
protocol shared with :class:`~repro.runtime.disk_cache.
PersistentResultCache`.  Besides plain ``get``/``put`` it exposes the
tier-selective hooks the experiment runner's worker-shared cache protocol
(see :mod:`repro.runtime.runner`) is built on:

* :meth:`ResultCache.peek_memory` — memory-tier-only lookup, used by the
  parent before dispatching tasks whose workers will probe the disk tier
  themselves;
* :meth:`ResultCache.put_local` — memory-tier-only store, used for
  values a worker already persisted (outcome ``"stored"``);
* ``probe_disk`` / ``note_worker_hit`` — disk-tier counterparts that only
  the persistent subclass implements meaningfully.

For this in-memory class the memory tier *is* the whole cache, so
``peek_memory`` behaves exactly like ``get`` and ``put_local`` exactly
like ``put``.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Hashable, Optional

from repro.linalg.cache import CacheStats, LRUCache
from repro.transpiler.compile import TranspileResult
from repro.transpiler.metrics import TranspileMetrics
from repro.transpiler.passmanager import PropertySet
from repro.transpiler.target import Target


def backend_cache_key(backend) -> Hashable:
    """Stable identity of a design point: name, basis and exact topology.

    Accepts a :class:`~repro.transpiler.target.Target` (delegating to its
    own ``cache_key``, which also digests the noise model) or a legacy
    :class:`Backend`.  The edge list participates through a digest so that
    two design points that merely share a name (e.g. differently sized
    registries) never collide.
    """
    if isinstance(backend, Target):
        return backend.cache_key()
    edges = ",".join(f"{a}-{b}" for a, b in backend.coupling_map.edges())
    edge_digest = hashlib.sha256(edges.encode("ascii")).hexdigest()[:16]
    return (
        backend.name,
        backend.basis.name,
        backend.coupling_map.num_qubits,
        edge_digest,
    )


def point_cache_key(
    workload: str,
    num_qubits: int,
    backend,
    seed: int,
    layout_method: str,
    routing_method: str,
    optimization_level: int = 1,
) -> Hashable:
    """Full cache key of one sweep point (``backend`` may be a Target)."""
    return (
        workload,
        int(num_qubits),
        backend_cache_key(backend),
        int(seed),
        layout_method,
        routing_method,
        int(optimization_level),
    )


class ResultCache:
    """Bounded memo of :class:`TranspileMetrics` keyed on point specs."""

    def __init__(self, maxsize: int = 8192):
        self._lru = LRUCache(maxsize=maxsize)

    @staticmethod
    def _copy(record):
        # TranspileMetrics carries a mutable ``extra`` dict; hand out private
        # copies so neither side can corrupt the other — also when the
        # metrics are nested inside a TranspileResult (the record type
        # ``transpile_batch`` caches), whose PropertySet and its nested
        # bookkeeping dicts are copied one level deep (circuits, layouts and
        # schedules are treated as immutable by convention).  Other result
        # types are stored as-is (callers own their immutability contract).
        if isinstance(record, TranspileMetrics):
            return replace(record, extra=dict(record.extra))
        if isinstance(record, TranspileResult):
            properties = PropertySet(
                {
                    key: dict(value) if isinstance(value, dict) else value
                    for key, value in record.properties.items()
                }
            )
            return replace(
                record,
                metrics=ResultCache._copy(record.metrics),
                properties=properties,
            )
        return record

    def get(self, key: Hashable) -> Optional[object]:
        """Cached record for ``key`` (mutable parts copied), or ``None``."""
        record = self._lru.get(key)
        if record is None:
            return None
        return self._copy(record)

    def put(self, key: Hashable, record) -> None:
        """Store a result (metrics are copied before storage)."""
        self._lru.put(key, self._copy(record))

    def peek_memory(self, key: Hashable) -> Optional[object]:
        """Memory-tier-only lookup.

        For the plain in-process cache this *is* :meth:`get`; a disk-backed
        subclass overrides :meth:`get` to fall through to disk but keeps
        this memory-only probe, which the experiment runner uses when pool
        workers will consult the disk tier themselves (the parent then
        skips the serial decompress-per-record walk).
        """
        return ResultCache.get(self, key)

    def put_local(self, key: Hashable, record) -> None:
        """Memory-tier-only store (no persistence side effects).

        Used for results a worker process already persisted: the parent
        only needs its LRU warmed, not a second disk write.
        """
        ResultCache.put(self, key, record)

    def clear(self) -> None:
        """Drop all cached results."""
        self._lru.clear()

    def stats(self) -> CacheStats:
        """Hit/miss counters."""
        return self._lru.stats()

    def __len__(self) -> int:
        return len(self._lru)
