"""Sharded checkpoint/resume for long-running sweeps.

A million-point sweep that dies at point 900,001 should not restart at
point zero.  This module stores sweep progress as *shards* — contiguous
slices of the canonical point order — in a checkpoint directory:

* ``manifest.json`` pins the run identity: a digest of the full sweep
  specification, the total point count and the shard size.  A resume
  against a manifest whose spec digest differs refuses loudly instead of
  silently mixing two different sweeps' records.
* ``shard-NNNNN.rsd`` holds one shard's computed records as compressed
  pickle behind a small magic header.  Shards are written atomically
  (temp file + rename), so a crash mid-write leaves either the previous
  state or the complete shard — never a torn file.  A corrupt or
  unreadable shard reads as "not computed" and is simply recomputed.
* ``failures.json`` records the points that were quarantined/skipped
  under the runner's :class:`~repro.runtime.runner.FailurePolicy` —
  a stored shard may contain ``None`` holes at exactly those points, so
  partial shard progress survives while the failures stay on the books.
  A ``--resume`` retries precisely the recorded failed points (and any
  lost shards), clearing entries as they recover.

The sharding is deterministic: shard ``i`` covers points
``[i * shard_points, (i + 1) * shard_points)`` of the canonical sweep
order, so any two processes given the same spec agree on what every
shard contains — which is what makes crash recovery, reruns and even
concurrent shard workers correct.

:func:`repro.core.pipeline.run_sweep_sharded` is the driver built on
this; ``repro sweep --resume`` and the server's ``/v1/sweep`` (with a
``run_id``) expose it.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

#: Shard file magic + format version.
SHARD_MAGIC = b"RPSD1\n"

#: Manifest schema version.
MANIFEST_VERSION = 1

_MANIFEST_NAME = "manifest.json"

_FAILURES_NAME = "failures.json"


class CheckpointMismatch(RuntimeError):
    """A checkpoint directory belongs to a different sweep specification."""


class SweepCheckpoint:
    """Shard-granular persistence of one sweep's progress.

    The instance is bound to a directory; :meth:`initialize` creates or
    validates the manifest, after which :meth:`completed_shards`,
    :meth:`load_shard` and :meth:`store_shard` manage the shard files.
    All shard reads tolerate corruption (a torn or garbled shard is
    recomputed), while manifest mismatches raise
    :class:`CheckpointMismatch` — silently resuming the wrong sweep would
    corrupt results, not just waste time.
    """

    def __init__(self, directory: Union[str, Path]):
        self._dir = Path(directory)
        self._manifest: Optional[Dict] = None

    @property
    def directory(self) -> Path:
        """The checkpoint directory."""
        return self._dir

    @property
    def manifest(self) -> Optional[Dict]:
        """The loaded manifest, or ``None`` before :meth:`initialize`."""
        return self._manifest

    @property
    def num_shards(self) -> int:
        """Shard count of the initialized run."""
        return int(self._manifest["num_shards"])

    def exists(self) -> bool:
        """True when the directory already holds a manifest."""
        return (self._dir / _MANIFEST_NAME).is_file()

    def _read_manifest(self) -> Optional[Dict]:
        try:
            manifest = json.loads((self._dir / _MANIFEST_NAME).read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        return manifest

    def initialize(
        self, spec_digest: str, total_points: int, shard_points: int
    ) -> "SweepCheckpoint":
        """Create the manifest, or validate an existing one against the spec.

        Raises :class:`CheckpointMismatch` when the directory already
        checkpoints a *different* sweep (other spec digest, point count or
        shard size); an unreadable manifest counts as different — guessing
        would be worse than recomputing.
        """
        shard_points = max(1, int(shard_points))
        num_shards = max(1, -(-int(total_points) // shard_points))
        manifest = {
            "version": MANIFEST_VERSION,
            "spec_digest": spec_digest,
            "total_points": int(total_points),
            "shard_points": shard_points,
            "num_shards": num_shards,
        }
        if self.exists():
            existing = self._read_manifest()
            if existing != manifest:
                raise CheckpointMismatch(
                    f"checkpoint at {self._dir} was written by a different "
                    "sweep (or is unreadable); refusing to mix records — "
                    "point at a fresh directory or delete it"
                )
        else:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._write_atomic(
                self._dir / _MANIFEST_NAME,
                json.dumps(manifest, indent=2).encode("utf-8"),
            )
        self._manifest = manifest
        return self

    def _shard_path(self, index: int) -> Path:
        return self._dir / f"shard-{index:05d}.rsd"

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        handle, temp_name = tempfile.mkstemp(
            dir=self._dir, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def completed_shards(self) -> Set[int]:
        """Indices of shards with a (plausibly) complete file on disk.

        Plausibly: presence and magic only — full decode happens at
        :meth:`load_shard`, which demotes a corrupt shard back to
        "missing".
        """
        completed: Set[int] = set()
        for path in self._dir.glob("shard-*.rsd"):
            try:
                index = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            completed.add(index)
        return completed

    def load_shard(self, index: int) -> Optional[List]:
        """The records of one shard, or ``None`` (missing/corrupt/stale)."""
        path = self._shard_path(index)
        try:
            blob = path.read_bytes()
            if not blob.startswith(SHARD_MAGIC):
                return None
            records = pickle.loads(zlib.decompress(blob[len(SHARD_MAGIC) :]))
            if not isinstance(records, list):
                return None
            return records
        except Exception:
            return None

    def store_shard(self, index: int, records: List) -> None:
        """Atomically persist one shard's records."""
        blob = SHARD_MAGIC + zlib.compress(
            pickle.dumps(list(records), protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._write_atomic(self._shard_path(index), blob)

    def failed_points(self) -> Dict[int, Dict]:
        """Recorded failed/quarantined points: global point index → details.

        Each detail dict carries at least ``shard`` and ``label``; an
        unreadable failures file reads as "no failures on record" (the
        shard holes themselves still force a recompute on resume).
        """
        try:
            data = json.loads((self._dir / _FAILURES_NAME).read_text("utf-8"))
            points = data.get("points", {})
            return {int(index): dict(info) for index, info in points.items()}
        except (OSError, ValueError, AttributeError, TypeError):
            return {}

    def update_failures(self, start: int, stop: int, entries: Dict[int, Dict]) -> None:
        """Replace the recorded failures in global range ``[start, stop)``.

        Called after a shard in that range is (re)computed: points that
        recovered drop off the books automatically because they are no
        longer in ``entries``.  The file is removed once nothing is left,
        so a clean checkpoint carries no failure sidecar at all.
        """
        current = self.failed_points()
        merged = {
            index: info
            for index, info in current.items()
            if not start <= index < stop
        }
        merged.update({int(index): dict(info) for index, info in entries.items()})
        path = self._dir / _FAILURES_NAME
        if not merged:
            if current:
                try:
                    path.unlink()
                except OSError:
                    pass
            return
        blob = json.dumps(
            {
                "version": 1,
                "points": {str(index): merged[index] for index in sorted(merged)},
            },
            indent=2,
        ).encode("utf-8")
        self._write_atomic(path, blob)

    def clear(self) -> None:
        """Remove the manifest and every shard (a fresh-start reset)."""
        for pattern in ("shard-*.rsd", "*.tmp", _MANIFEST_NAME, _FAILURES_NAME):
            for path in self._dir.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        self._manifest = None
