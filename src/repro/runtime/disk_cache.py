"""Disk-backed result cache shared across processes and CLI invocations.

The in-process :class:`~repro.runtime.cache.ResultCache` dies with its
process, so every fresh CLI run and every cold worker pool re-transpiles
sweep points an earlier run already paid for.
:class:`PersistentResultCache` keeps the memory LRU in front and adds a
content-addressed directory of compressed pickle records behind it:

* **keys** are digested with SHA-256 over their canonical ``repr`` — the
  same point/batch cache keys used in memory are stable across processes
  (they are tuples of primitives and hex digests, never ``id``/``hash``);
* **records** are ``zlib``-compressed pickles behind a small magic/length
  header, written atomically (temp file + ``os.replace``) so concurrent
  writers can share one cache directory;
* **corruption tolerance**: a truncated, garbled or foreign file is
  treated as a miss (and removed best-effort), never an error — a crash
  mid-write costs one cache entry, not the sweep.

``REPRO_CACHE_DIR`` (or the CLI's ``--cache-dir``) selects the directory;
:func:`resolve_result_cache` is the single decision point the CLI and
:func:`repro.transpiler.batch.transpile_batch` funnel through.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import time
import zlib
from hashlib import sha256
from pathlib import Path
from typing import Hashable, Optional, Union

from repro.linalg.cache import CacheStats
from repro.runtime.cache import ResultCache

#: Environment variable selecting a default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: File magic + format version; bumping it invalidates old records safely
#: (they simply read as misses).
_MAGIC = b"RPRC1\n"
_HEADER = struct.Struct(">Q")  # payload length, for truncation detection


def cache_dir_from_env() -> Optional[str]:
    """The ``REPRO_CACHE_DIR`` directory, or ``None`` when unset/empty."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return value or None


def key_digest(key: Hashable) -> str:
    """Stable content digest of a cache key.

    Cache keys are tuples of primitives (strings, ints, ``None``, nested
    tuples, hex digests), whose ``repr`` is deterministic across processes
    and Python invocations — unlike the salted builtin ``hash``.
    """
    return sha256(repr(key).encode("utf-8")).hexdigest()


class PersistentResultCache(ResultCache):
    """A :class:`ResultCache` whose records survive the process.

    Lookups try the in-memory LRU first, then the cache directory; disk
    hits are promoted into the LRU.  Writes go to both tiers.  All disk
    failures degrade to cache misses — a read-only or full disk makes the
    cache slower, never wrong.
    """

    #: Temp files older than this are leftovers of writers that died
    #: between ``mkstemp`` and ``os.replace``; anything younger may be a
    #: concurrent writer's live staging file and is left alone.
    _STALE_TMP_SECONDS = 3600.0

    def __init__(self, cache_dir: Union[str, Path], maxsize: int = 8192):
        super().__init__(maxsize=maxsize)
        self._dir = Path(cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._disk_hits = 0
        self._disk_misses = 0
        self._sweep_stale_temp_files()

    def _sweep_stale_temp_files(self) -> None:
        cutoff = time.time() - self._STALE_TMP_SECONDS
        for path in self._dir.glob("*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                pass

    @property
    def cache_dir(self) -> Path:
        """The backing directory."""
        return self._dir

    def _path(self, key: Hashable) -> Path:
        return self._dir / f"{key_digest(key)}.rpc"

    # -- disk tier -----------------------------------------------------------

    def _read(self, path: Path):
        """Decode one record file; any failure is a miss (file removed)."""
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            (length,) = _HEADER.unpack_from(blob, len(_MAGIC))
            payload = blob[len(_MAGIC) + _HEADER.size :]
            if len(payload) != length:
                raise ValueError("truncated record")
            return pickle.loads(zlib.decompress(payload))
        except Exception:
            # Truncated write, stale format, disk corruption: drop the file
            # so the slot heals itself on the next put.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write(self, path: Path, record) -> None:
        """Atomically publish one record; failures are silently dropped."""
        try:
            payload = zlib.compress(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
            blob = _MAGIC + _HEADER.pack(len(payload)) + payload
            handle, temp_name = tempfile.mkstemp(
                dir=self._dir, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(blob)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except Exception:
            # Unpicklable record, read-only directory, full disk, ...: the
            # memory tier still serves this entry; persistence is best-effort.
            pass

    # -- cache protocol --------------------------------------------------------

    def get(self, key: Hashable) -> Optional[object]:
        """Memory first, then disk (promoting disk hits into the LRU)."""
        record = super().get(key)
        if record is not None:
            return record
        payload = self._read(self._path(key))
        if payload is None:
            self._disk_misses += 1
            return None
        self._disk_hits += 1
        self._lru.put(key, self._copy(payload))
        return payload

    def put(self, key: Hashable, record) -> None:
        """Store in the LRU and publish to disk."""
        super().put(key, record)
        # pickling never mutates the record, so no defensive copy is needed
        # on the write path (the LRU already holds its own private copy).
        self._write(self._path(key), record)

    def clear(self) -> None:
        """Drop the memory tier and every record file in the directory."""
        super().clear()
        self._disk_hits = 0
        self._disk_misses = 0
        for pattern in ("*.rpc", "*.tmp"):
            for path in self._dir.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass

    def stats(self) -> CacheStats:
        """Memory counters plus the disk tier's hit/miss counters."""
        memory = super().stats()
        return CacheStats(
            hits=memory.hits,
            misses=memory.misses,
            currsize=memory.currsize,
            maxsize=memory.maxsize,
            disk_hits=self._disk_hits,
            disk_misses=self._disk_misses,
        )

    def disk_entries(self) -> int:
        """Number of record files currently on disk."""
        return sum(1 for _ in self._dir.glob("*.rpc"))


def resolve_result_cache(
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    maxsize: int = 8192,
) -> Optional[ResultCache]:
    """Build the result cache a runtime entry point should use.

    ``no_cache`` wins over everything; an explicit ``cache_dir`` (or the
    ``REPRO_CACHE_DIR`` environment default) selects the persistent cache;
    otherwise the plain in-process LRU is returned.
    """
    if no_cache:
        return None
    directory = cache_dir if cache_dir is not None else cache_dir_from_env()
    if directory is not None:
        return PersistentResultCache(directory, maxsize=maxsize)
    return ResultCache(maxsize=maxsize)
