"""Disk-backed result cache shared across processes and CLI invocations.

The in-process :class:`~repro.runtime.cache.ResultCache` dies with its
process, so every fresh CLI run and every cold worker pool re-transpiles
sweep points an earlier run already paid for.
:class:`PersistentResultCache` keeps the memory LRU in front and adds a
content-addressed directory of compressed pickle records behind it:

* **keys** are digested with SHA-256 over their canonical ``repr`` — the
  same point/batch cache keys used in memory are stable across processes
  (they are tuples of primitives and hex digests, never ``id``/``hash``);
* **records** are ``zlib``-compressed pickles behind a small magic/length
  header, written atomically (temp file + ``os.replace``) so concurrent
  writers can share one cache directory;
* **corruption tolerance**: a truncated, garbled or foreign file is
  treated as a miss (and removed best-effort), never an error — a crash
  mid-write costs one cache entry, not the sweep.

``REPRO_CACHE_DIR`` (or the CLI's ``--cache-dir``) selects the directory;
:func:`resolve_result_cache` is the single decision point the CLI, the
``repro serve`` server and :func:`repro.transpiler.batch.transpile_batch`
funnel through.  An explicit ``--cache-dir`` always wins over
``REPRO_CACHE_DIR``, an explicit ``max_bytes`` over
``REPRO_CACHE_MAX_BYTES``, and ``--no-cache`` over everything (see
``docs/architecture.md`` for the precedence table).

Worker-pool sharing
-------------------

One cache directory may be shared by many processes at once: the
experiment runner's pool workers each open their own
:class:`PersistentResultCache` over the directory named by
:meth:`PersistentResultCache.worker_spec` and then consult/populate the
disk tier directly, reporting ``("computed"|"stored"|"shared"|"cached",
value)`` outcome tuples back to the parent (the full protocol is
documented in :mod:`repro.runtime.runner`).  Atomic record writes make
the concurrent writers safe; GC policies deliberately do *not* propagate
into workers — eviction is the parent's job alone.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import time
import warnings
import zlib
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import AbstractSet, Dict, Hashable, Optional, Set, Union

from repro.linalg.cache import CacheStats
from repro.runtime.cache import ResultCache

#: Environment variable selecting a default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the cache directory size (bytes); when a
#: persistent cache is resolved with this set, records are garbage
#: collected oldest-first down to the budget before the run starts.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: File magic + format version; bumping it invalidates old records safely
#: (they simply read as misses).
_MAGIC = b"RPRC1\n"
_HEADER = struct.Struct(">Q")  # payload length, for truncation detection


def cache_dir_from_env() -> Optional[str]:
    """The ``REPRO_CACHE_DIR`` directory, or ``None`` when unset/empty."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return value or None


def key_digest(key: Hashable) -> str:
    """Stable content digest of a cache key.

    Cache keys are tuples of primitives (strings, ints, ``None``, nested
    tuples, hex digests), whose ``repr`` is deterministic across processes
    and Python invocations — unlike the salted builtin ``hash``.
    """
    return sha256(repr(key).encode("utf-8")).hexdigest()


def max_bytes_from_env() -> Optional[int]:
    """The ``REPRO_CACHE_MAX_BYTES`` budget, or ``None`` when unset/invalid."""
    value = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if not value:
        return None
    try:
        budget = int(value)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {CACHE_MAX_BYTES_ENV}={value!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return budget if budget >= 0 else None


@dataclass(frozen=True)
class GCReport:
    """Outcome of one garbage-collection pass over a cache directory."""

    scanned: int  #: record files examined
    removed: int  #: record files deleted
    reclaimed_bytes: int  #: total size of the deleted records
    kept: int  #: record files surviving the pass
    kept_bytes: int  #: total size of the surviving records
    protected: int  #: records exempted (written during the current run)

    def describe(self) -> str:
        """One human-readable status line (the CLI ``cache gc`` output)."""
        return (
            f"removed {self.removed}/{self.scanned} records "
            f"({self.reclaimed_bytes} bytes reclaimed), "
            f"{self.kept} kept ({self.kept_bytes} bytes)"
            + (f", {self.protected} protected" if self.protected else "")
        )


def collect_garbage(
    cache_dir: Union[str, Path],
    max_bytes: Optional[int] = None,
    max_age_seconds: Optional[float] = None,
    protected: AbstractSet[str] = frozenset(),
    now: Optional[float] = None,
    sweep_tmp: bool = True,
) -> GCReport:
    """Evict cache records by age and total size, oldest first.

    Eviction never errors a reader: a GC'd record simply reads as a miss
    and is recomputed.  ``protected`` names record files (``<digest>.rpc``)
    that must survive regardless of policy — the persistent cache passes
    the records written during the current run.  Stale temp files (crashed
    writers) are swept as a side effect unless ``sweep_tmp`` is False
    (read-only inspection must not race a slow live writer's staging
    file).  Missing-directory and per-file ``OSError`` (a concurrent GC
    or writer) are tolerated silently.
    """
    directory = Path(cache_dir)
    now = time.time() if now is None else float(now)
    if sweep_tmp:
        for path in directory.glob("*.tmp"):
            try:
                if path.stat().st_mtime < now - PersistentResultCache._STALE_TMP_SECONDS:
                    path.unlink()
            except OSError:
                pass
    records = []
    for path in directory.glob("*.rpc"):
        try:
            status = path.stat()
        except OSError:
            continue
        records.append((status.st_mtime, path.name, status.st_size, path))
    records.sort()  # oldest first; name breaks mtime ties deterministically
    scanned = len(records)
    protected_count = sum(1 for _, name, _, _ in records if name in protected)
    removed = 0
    reclaimed = 0
    total = sum(size for _, _, size, _ in records)
    for mtime, name, size, path in records:
        if name in protected:
            continue
        expired = max_age_seconds is not None and now - mtime > max_age_seconds
        oversize = max_bytes is not None and total > max_bytes
        if not (expired or oversize):
            continue
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
        reclaimed += size
        total -= size
    return GCReport(
        scanned=scanned,
        removed=removed,
        reclaimed_bytes=reclaimed,
        kept=scanned - removed,
        kept_bytes=total,
        protected=protected_count,
    )


class PersistentResultCache(ResultCache):
    """A :class:`ResultCache` whose records survive the process.

    Lookups try the in-memory LRU first, then the cache directory; disk
    hits are promoted into the LRU.  Writes go to both tiers.  All disk
    failures degrade to cache misses — a read-only or full disk makes the
    cache slower, never wrong.
    """

    #: Temp files older than this are leftovers of writers that died
    #: between ``mkstemp`` and ``os.replace``; anything younger may be a
    #: concurrent writer's live staging file and is left alone.
    _STALE_TMP_SECONDS = 3600.0

    def __init__(
        self,
        cache_dir: Union[str, Path],
        maxsize: int = 8192,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ):
        super().__init__(maxsize=maxsize)
        self._dir = Path(cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._maxsize = int(maxsize)
        self._max_bytes = max_bytes
        self._max_age_seconds = max_age_seconds
        self._disk_hits = 0
        self._disk_misses = 0
        #: Record files written by *this* instance — i.e. during the
        #: current run — which garbage collection must never evict.
        self._written: Set[str] = set()
        self._sweep_stale_temp_files()
        if max_bytes is not None or max_age_seconds is not None:
            self.gc()

    def _sweep_stale_temp_files(self) -> None:
        cutoff = time.time() - self._STALE_TMP_SECONDS
        for path in self._dir.glob("*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                pass

    @property
    def cache_dir(self) -> Path:
        """The backing directory."""
        return self._dir

    def _path(self, key: Hashable) -> Path:
        return self._dir / f"{key_digest(key)}.rpc"

    # -- disk tier -----------------------------------------------------------

    def _read(self, path: Path):
        """Decode one record file; any failure is a miss (file removed)."""
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            (length,) = _HEADER.unpack_from(blob, len(_MAGIC))
            payload = blob[len(_MAGIC) + _HEADER.size :]
            if len(payload) != length:
                raise ValueError("truncated record")
            return pickle.loads(zlib.decompress(payload))
        except Exception:
            # Truncated write, stale format, disk corruption: drop the file
            # so the slot heals itself on the next put.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write(self, path: Path, record) -> None:
        """Atomically publish one record; failures are silently dropped."""
        try:
            payload = zlib.compress(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
            blob = _MAGIC + _HEADER.pack(len(payload)) + payload
            handle, temp_name = tempfile.mkstemp(
                dir=self._dir, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(blob)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            self._written.add(path.name)
        except Exception:
            # Unpicklable record, read-only directory, full disk, ...: the
            # memory tier still serves this entry; persistence is best-effort.
            pass

    # -- cache protocol --------------------------------------------------------

    def get(self, key: Hashable) -> Optional[object]:
        """Memory first, then disk (promoting disk hits into the LRU)."""
        record = super().get(key)
        if record is not None:
            return record
        return self.probe_disk(key)

    def probe_disk(self, key: Hashable) -> Optional[object]:
        """Disk-tier-only lookup (promoting hits into the LRU).

        Counter semantics match the fall-through half of :meth:`get`, so a
        :meth:`~repro.runtime.cache.ResultCache.peek_memory` followed by a
        ``probe_disk`` counts exactly like one full ``get`` — the sequence
        the experiment runner performs around worker dispatch.
        """
        payload = self._read(self._path(key))
        if payload is None:
            self._disk_misses += 1
            return None
        self._disk_hits += 1
        self._lru.put(key, self._copy(payload))
        return payload

    def put(self, key: Hashable, record) -> None:
        """Store in the LRU and publish to disk."""
        super().put(key, record)
        # pickling never mutates the record, so no defensive copy is needed
        # on the write path (the LRU already holds its own private copy).
        self._write(self._path(key), record)

    def put_local(self, key: Hashable, record) -> None:
        """Memory-only store for a record a *worker* already persisted.

        The worker wrote the file, but the write belongs to the current
        run all the same — register it so :meth:`gc` cannot evict it.
        """
        super().put_local(key, record)
        self._written.add(self._path(key).name)

    def clear(self) -> None:
        """Drop the memory tier and every record file in the directory."""
        super().clear()
        self._disk_hits = 0
        self._disk_misses = 0
        for pattern in ("*.rpc", "*.tmp"):
            for path in self._dir.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass

    def stats(self) -> CacheStats:
        """Memory counters plus the disk tier's hit/miss counters."""
        memory = super().stats()
        return CacheStats(
            hits=memory.hits,
            misses=memory.misses,
            currsize=memory.currsize,
            maxsize=memory.maxsize,
            disk_hits=self._disk_hits,
            disk_misses=self._disk_misses,
        )

    def disk_entries(self) -> int:
        """Number of record files currently on disk."""
        return sum(1 for _ in self._dir.glob("*.rpc"))

    def disk_bytes(self) -> int:
        """Total size of the record files currently on disk."""
        total = 0
        for path in self._dir.glob("*.rpc"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # -- garbage collection ----------------------------------------------------

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> GCReport:
        """Evict old records by the instance (or overriding) policy.

        Records written during the current run (by this instance) are
        always kept — a sweep must never evict its own fresh results out
        from under a rerun.  Runs automatically at construction when a
        policy was configured, so long-lived cache directories stay
        bounded without a separate maintenance step.
        """
        return collect_garbage(
            self._dir,
            max_bytes=self._max_bytes if max_bytes is None else max_bytes,
            max_age_seconds=(
                self._max_age_seconds if max_age_seconds is None else max_age_seconds
            ),
            protected=frozenset(self._written),
        )

    # -- worker-pool sharing ---------------------------------------------------

    def worker_spec(self) -> Dict[str, object]:
        """Constructor arguments for a worker-process twin of this cache.

        Workers share the directory but never a GC policy: eviction is the
        parent's job, and a worker evicting mid-run could drop records the
        parent just counted on.
        """
        return {"cache_dir": str(self._dir), "maxsize": self._maxsize}

    def note_worker_hit(self, key: Hashable, record) -> None:
        """Account a lookup a pool worker served from the shared disk tier.

        The parent deliberately probed only its memory tier before
        dispatching (see :meth:`~repro.runtime.cache.ResultCache.
        peek_memory`), so the worker's disk hit is credited here — keeping
        the ``computed == misses - disk_hits`` invariant of
        :class:`~repro.linalg.cache.CacheStats` intact — and the record is
        promoted into the parent's LRU.
        """
        self._disk_hits += 1
        self._lru.put(key, self._copy(record))


def resolve_result_cache(
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    maxsize: int = 8192,
    max_bytes: Optional[int] = None,
) -> Optional[ResultCache]:
    """Build the result cache a runtime entry point should use.

    ``no_cache`` wins over everything; an explicit ``cache_dir`` (or the
    ``REPRO_CACHE_DIR`` environment default) selects the persistent cache;
    otherwise the plain in-process LRU is returned.  ``max_bytes`` (or the
    ``REPRO_CACHE_MAX_BYTES`` default) bounds a long-lived cache directory:
    the persistent cache garbage-collects down to the budget on startup.
    """
    if no_cache:
        return None
    directory = cache_dir if cache_dir is not None else cache_dir_from_env()
    if directory is not None:
        budget = max_bytes if max_bytes is not None else max_bytes_from_env()
        return PersistentResultCache(directory, maxsize=maxsize, max_bytes=budget)
    return ResultCache(maxsize=maxsize)
