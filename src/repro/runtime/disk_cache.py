"""Disk-backed result cache shared across processes and CLI invocations.

The in-process :class:`~repro.runtime.cache.ResultCache` dies with its
process, so every fresh CLI run and every cold worker pool re-transpiles
sweep points an earlier run already paid for.
:class:`PersistentResultCache` keeps the memory LRU in front and adds a
packed, content-addressed store behind it:

* **keys** are digested with SHA-256 over their canonical ``repr`` — the
  same point/batch cache keys used in memory are stable across processes
  (they are tuples of primitives and hex digests, never ``id``/``hash``);
* **records** are appended to *packed segment files* (many records per
  file) as CRC-guarded frames of ``zlib``-compressed pickle, so a
  million-point sweep costs a few dozen inodes, not a million; every
  writer owns its own append-only segment, which makes concurrent
  writers safe without locks;
* **the index** maps key digests to ``(segment, offset, length)``; sealed
  segments carry a compact sidecar index file that is loaded instead of
  re-scanned, and the open (unsealed) segments of other processes are
  scanned incrementally — only bytes appended since the last look;
* **corruption tolerance**: a torn frame at a segment tail (crashed or
  killed writer), a garbled sidecar or a foreign file are treated as
  misses, never errors — a crash mid-write costs at most one record, and
  :func:`collect_garbage` physically truncates corrupt tails during
  compaction so the damage does not survive maintenance;
* **migration**: the PR-4 one-file-per-record format (``<digest>.rpc``)
  stays readable — lookups fall back to it, and compaction folds legacy
  records into fresh segments.

``REPRO_CACHE_DIR`` (or the CLI's ``--cache-dir``) selects the directory;
:func:`resolve_result_cache` is the single decision point the CLI, the
``repro serve`` server and :func:`repro.transpiler.batch.transpile_batch`
funnel through.  An explicit ``--cache-dir`` always wins over
``REPRO_CACHE_DIR``, an explicit ``max_bytes`` over
``REPRO_CACHE_MAX_BYTES``, and ``--no-cache`` over everything (see
``docs/architecture.md`` for the precedence table and the on-disk format
reference).

Worker-pool sharing
-------------------

One cache directory may be shared by many processes at once: the
experiment runner's pool workers each open their own
:class:`PersistentResultCache` over the directory named by
:meth:`PersistentResultCache.worker_spec` and then consult/populate the
disk tier directly, reporting ``("computed"|"stored"|"shared"|"cached",
value)`` outcome tuples back to the parent (the full protocol is
documented in :mod:`repro.runtime.runner`).  Each worker appends to its
own segment and discovers the others' records through incremental tail
scans; GC policies deliberately do *not* propagate into workers —
eviction is the parent's job alone.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import tempfile
import time
import uuid
import warnings
import zlib
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import AbstractSet, Dict, Hashable, List, Optional, Set, Tuple, Union

from repro.linalg.cache import CacheStats
from repro.runtime.cache import ResultCache

#: Environment variable selecting a default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the cache directory size (bytes); when a
#: persistent cache is resolved with this set, records are garbage
#: collected oldest-first down to the budget before the run starts.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Legacy (PR-4) one-file-per-record magic + format version; still
#: readable for migration, no longer written.
_MAGIC = b"RPRC1\n"
_HEADER = struct.Struct(">Q")  # legacy payload length, for truncation detection

#: Packed segment file magic + format version.  Bumping it invalidates
#: old segments safely (they simply read as misses).
SEGMENT_MAGIC = b"RPSG1\n"

#: Sidecar index file magic + format version.
INDEX_MAGIC = b"RPIX1\n"

#: Per-record frame header inside a segment: frame magic, raw SHA-256 key
#: digest, record mtime (epoch seconds), payload length, payload CRC-32.
_FRAME = struct.Struct(">2s32sdII")
_FRAME_MAGIC = b"RF"

#: Rotate the active segment once it grows past this many bytes.  Small
#: enough that compaction rewrites stay incremental, large enough that a
#: 50k-point sweep fits in a handful of segments.
DEFAULT_SEGMENT_MAX_BYTES = 8 * 1024 * 1024

_SEGMENT_SUFFIX = ".rps"
_SIDECAR_SUFFIX = ".rpi"
_LEGACY_SUFFIX = ".rpc"


def cache_dir_from_env() -> Optional[str]:
    """The ``REPRO_CACHE_DIR`` directory, or ``None`` when unset/empty."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return value or None


def key_digest(key: Hashable) -> str:
    """Stable content digest of a cache key.

    Cache keys are tuples of primitives (strings, ints, ``None``, nested
    tuples, hex digests), whose ``repr`` is deterministic across processes
    and Python invocations — unlike the salted builtin ``hash``.
    """
    return sha256(repr(key).encode("utf-8")).hexdigest()


def max_bytes_from_env() -> Optional[int]:
    """The ``REPRO_CACHE_MAX_BYTES`` budget, or ``None`` when unset/invalid."""
    value = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if not value:
        return None
    try:
        budget = int(value)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {CACHE_MAX_BYTES_ENV}={value!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return budget if budget >= 0 else None


def human_bytes(count: int) -> str:
    """``1234567`` → ``"1.2 MiB"`` (exact byte counts below one KiB)."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{int(count)} B"  # pragma: no cover - unreachable


# -- segment scanning (module-level so GC and the cache share one parser) ------


@dataclass(frozen=True)
class _SegmentRecord:
    """One live-or-dead record frame found inside a segment file."""

    digest: bytes  #: raw SHA-256 key digest
    offset: int  #: payload offset inside the segment
    length: int  #: payload length in bytes
    mtime: float  #: record write time (epoch seconds, from the frame)
    crc: int  #: payload CRC-32 (validated lazily at read time)

    @property
    def frame_bytes(self) -> int:
        """Total on-disk footprint of the frame (header + payload)."""
        return _FRAME.size + self.length


def _scan_segment(
    path: Path, start: int, size: Optional[int] = None
) -> Tuple[List[_SegmentRecord], int, bool]:
    """Parse record frames from ``start``, returning ``(records, end, clean)``.

    ``end`` is the offset of the first byte not covered by a complete,
    well-formed frame; ``clean`` is False when scanning stopped at a
    corrupt (rather than merely incomplete) frame — an incomplete tail may
    be a live writer mid-append and is retried on the next refresh, while
    a corrupt frame poisons the rest of the file until compaction
    truncates it.
    """
    records: List[_SegmentRecord] = []
    try:
        if size is None:
            size = path.stat().st_size
        with open(path, "rb") as stream:
            if start == 0:
                if stream.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
                    return [], 0, False
                start = len(SEGMENT_MAGIC)
            stream.seek(start)
            offset = start
            while offset + _FRAME.size <= size:
                header = stream.read(_FRAME.size)
                if len(header) < _FRAME.size:
                    break
                magic, digest, mtime, length, crc = _FRAME.unpack(header)
                if magic != _FRAME_MAGIC:
                    return records, offset, False
                payload_end = offset + _FRAME.size + length
                if payload_end > size:
                    break  # torn tail: a crashed — or still-writing — writer
                records.append(
                    _SegmentRecord(
                        digest=digest,
                        offset=offset + _FRAME.size,
                        length=length,
                        mtime=mtime,
                        crc=crc,
                    )
                )
                stream.seek(payload_end)
                offset = payload_end
            return records, offset, True
    except OSError:
        return records, start, True


def _read_sidecar(path: Path) -> Optional[List[_SegmentRecord]]:
    """Decode one sidecar index file; any failure means "scan the segment"."""
    try:
        blob = path.read_bytes()
        if not blob.startswith(INDEX_MAGIC):
            return None
        entries = pickle.loads(zlib.decompress(blob[len(INDEX_MAGIC) :]))
        return [_SegmentRecord(*entry) for entry in entries]
    except Exception:
        return None


def _sidecar_blob(records: List[_SegmentRecord]) -> bytes:
    """Encode a segment's record list as a sidecar index blob."""
    entries = [
        (record.digest, record.offset, record.length, record.mtime, record.crc)
        for record in records
    ]
    return INDEX_MAGIC + zlib.compress(
        pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
    )


def _atomic_write(directory: Path, path: Path, blob: bytes) -> None:
    """Publish ``blob`` at ``path`` via the temp-file + rename dance."""
    handle, temp_name = tempfile.mkstemp(dir=directory, prefix=path.stem, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(blob)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _segment_paths(directory: Path) -> List[Path]:
    """Every packed segment file in the directory, sorted by name."""
    return sorted(directory.glob(f"seg-*{_SEGMENT_SUFFIX}"))


def _sidecar_for(segment: Path) -> Path:
    return segment.with_suffix(_SIDECAR_SUFFIX)


# -- directory inspection ------------------------------------------------------


@dataclass(frozen=True)
class SegmentReport:
    """Segment-level statistics of one cache directory (``cache info``)."""

    segments: int  #: packed segment files present
    sealed: int  #: segments with a sidecar index
    segment_bytes: int  #: total size of the segment files
    live_records: int  #: distinct keys served by the newest frames
    live_bytes: int  #: frame bytes of those newest records
    dead_bytes: int  #: frame bytes superseded by newer duplicates
    index_bytes: int  #: total size of the sidecar index files
    legacy_records: int  #: one-file-per-record (PR-4) files present
    legacy_bytes: int  #: total size of the legacy record files

    def describe(self) -> str:
        """Multi-line human-readable summary (the ``cache info`` body)."""
        lines = [
            f"segments: {self.segments} ({self.sealed} sealed, "
            f"{human_bytes(self.segment_bytes)})",
            f"live records: {self.live_records} ({human_bytes(self.live_bytes)})",
            f"dead bytes: {human_bytes(self.dead_bytes)}",
            f"index: {human_bytes(self.index_bytes)}",
        ]
        if self.legacy_records:
            lines.append(
                f"legacy records: {self.legacy_records} "
                f"({human_bytes(self.legacy_bytes)}; `repro cache gc` migrates "
                "them into segments)"
            )
        return "\n".join(lines)


def _scan_directory(directory: Path) -> Tuple[
    Dict[bytes, Tuple[object, float, int]],
    List[Tuple[Path, List[_SegmentRecord], bool]],
    List[Tuple[Path, float, int]],
    int,
]:
    """Inventory a cache directory for GC and statistics.

    Returns ``(live, segments, legacy, dead_bytes)`` where ``live`` maps
    each key digest to its newest source — ``(record, mtime, bytes)`` with
    ``record`` either a :class:`_SegmentRecord` or a legacy ``Path`` —
    ``segments`` lists every segment with its parsed records and whether
    its tail was clean, and ``legacy`` lists the one-file-per-record
    entries.  ``dead_bytes`` counts frame bytes superseded by newer
    duplicates of the same key.
    """
    live: Dict[bytes, Tuple[object, float, int]] = {}
    dead_bytes = 0

    def _offer(digest: bytes, source, mtime: float, size: int) -> None:
        nonlocal dead_bytes
        current = live.get(digest)
        if current is None:
            live[digest] = (source, mtime, size)
            return
        if mtime >= current[1]:
            dead_bytes += current[2]
            live[digest] = (source, mtime, size)
        else:
            dead_bytes += size

    segments: List[Tuple[Path, List[_SegmentRecord], bool]] = []
    for segment in _segment_paths(directory):
        records = _read_sidecar(_sidecar_for(segment))
        clean = True
        if records is None:
            records, _, clean = _scan_segment(segment, 0)
        segments.append((segment, records, clean))
        for record in records:
            _offer(record.digest, record, record.mtime, record.frame_bytes)

    legacy: List[Tuple[Path, float, int]] = []
    for path in directory.glob(f"*{_LEGACY_SUFFIX}"):
        try:
            status = path.stat()
        except OSError:
            continue
        legacy.append((path, status.st_mtime, status.st_size))
        try:
            digest = bytes.fromhex(path.stem)
        except ValueError:
            continue
        _offer(digest, path, status.st_mtime, status.st_size)

    return live, segments, legacy, dead_bytes


def segment_stats(cache_dir: Union[str, Path]) -> SegmentReport:
    """Read-only segment-level statistics of a cache directory."""
    directory = Path(cache_dir)
    live, segments, legacy, dead_bytes = _scan_directory(directory)
    segment_bytes = 0
    sealed = 0
    index_bytes = 0
    for segment, _records, _clean in segments:
        try:
            segment_bytes += segment.stat().st_size
        except OSError:
            pass
        sidecar = _sidecar_for(segment)
        try:
            index_bytes += sidecar.stat().st_size
            sealed += 1
        except OSError:
            pass
    return SegmentReport(
        segments=len(segments),
        sealed=sealed,
        segment_bytes=segment_bytes,
        live_records=len(live),
        live_bytes=sum(size for _, _, size in live.values()),
        dead_bytes=dead_bytes,
        index_bytes=index_bytes,
        legacy_records=len(legacy),
        legacy_bytes=sum(size for _, _, size in legacy),
    )


@dataclass(frozen=True)
class GCReport:
    """Outcome of one garbage-collection pass over a cache directory."""

    scanned: int  #: live records examined
    removed: int  #: records evicted by policy
    reclaimed_bytes: int  #: bytes of the evicted records
    kept: int  #: records surviving the pass
    kept_bytes: int  #: bytes of the surviving records
    protected: int  #: records exempted (written during the current run)
    segments_scanned: int = 0  #: segment files examined
    segments_removed: int = 0  #: segment files deleted (compaction inputs)
    segments_written: int = 0  #: fresh compacted segment files written
    dead_bytes: int = 0  #: superseded duplicate bytes found (reclaimed on compaction)

    def describe(self) -> str:
        """One human-readable status line (the CLI ``cache gc`` output)."""
        line = (
            f"removed {self.removed}/{self.scanned} records "
            f"({human_bytes(self.reclaimed_bytes)} reclaimed), "
            f"{self.kept} kept ({human_bytes(self.kept_bytes)})"
            + (f", {self.protected} protected" if self.protected else "")
        )
        if self.segments_removed or self.segments_written:
            line += (
                f"; compacted {self.segments_removed} segments into "
                f"{self.segments_written} ({human_bytes(self.dead_bytes)} dead)"
            )
        return line


class _SegmentWriter:
    """Append-only writer building fresh compacted segments during GC."""

    def __init__(self, directory: Path, segment_max_bytes: int):
        self._directory = directory
        self._max_bytes = segment_max_bytes
        self._stream: Optional[io.BufferedWriter] = None
        self._path: Optional[Path] = None
        self._size = 0
        self._records: List[_SegmentRecord] = []
        self.written: List[Path] = []

    def _open(self) -> None:
        token = uuid.uuid4().hex[:12]
        self._path = self._directory / f"seg-gc-{token}{_SEGMENT_SUFFIX}"
        self._stream = open(self._path, "wb")
        self._stream.write(SEGMENT_MAGIC)
        self._size = len(SEGMENT_MAGIC)
        self._records = []

    def append(self, digest: bytes, payload: bytes, mtime: float, crc: int) -> None:
        """Write one record frame, rotating segments at the size bound."""
        if self._stream is None or (
            self._records and self._size + _FRAME.size + len(payload) > self._max_bytes
        ):
            self.seal()
            self._open()
        self._stream.write(_FRAME.pack(_FRAME_MAGIC, digest, mtime, len(payload), crc))
        self._records.append(
            _SegmentRecord(
                digest=digest,
                offset=self._size + _FRAME.size,
                length=len(payload),
                mtime=mtime,
                crc=crc,
            )
        )
        self._stream.write(payload)
        self._size += _FRAME.size + len(payload)

    def seal(self) -> None:
        """Flush, close and publish the sidecar of the current segment."""
        if self._stream is None:
            return
        self._stream.close()
        self._stream = None
        _atomic_write(
            self._directory, _sidecar_for(self._path), _sidecar_blob(self._records)
        )
        self.written.append(self._path)
        self._path = None


def collect_garbage(
    cache_dir: Union[str, Path],
    max_bytes: Optional[int] = None,
    max_age_seconds: Optional[float] = None,
    protected: AbstractSet[str] = frozenset(),
    now: Optional[float] = None,
    sweep_tmp: bool = True,
    compact: bool = False,
    segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
) -> GCReport:
    """Evict cache records by age and total size, oldest first.

    Eviction never errors a reader: a GC'd record simply reads as a miss
    and is recomputed.  ``protected`` names key digests (hex) that must
    survive regardless of policy — the persistent cache passes the
    records written during the current run.

    Records live inside packed segments, so evicting one means rewriting
    its segment's survivors into a fresh segment: segments touched by the
    policy are compacted automatically, and ``compact=True`` additionally
    rewrites *every* segment — dropping superseded duplicates, truncating
    corrupt tails and folding legacy one-file-per-record entries into
    segments (the ``repro cache gc`` migration/maintenance pass).

    GC assumes no concurrent *writers* share the directory (readers are
    fine — a compacted-away record heals as a miss).  Stale temp files
    (crashed writers) are swept as a side effect unless ``sweep_tmp`` is
    False (read-only inspection must not race a slow live writer's
    staging file).  Missing-directory and per-file ``OSError`` are
    tolerated silently.
    """
    directory = Path(cache_dir)
    now = time.time() if now is None else float(now)
    if sweep_tmp:
        for path in directory.glob("*.tmp"):
            try:
                if path.stat().st_mtime < now - PersistentResultCache._STALE_TMP_SECONDS:
                    path.unlink()
            except OSError:
                pass

    live, segments, legacy, dead_bytes = _scan_directory(directory)
    # Deterministic eviction order: oldest first, digest breaks ties.
    entries = sorted(
        (
            (mtime, digest.hex(), size, source)
            for digest, (source, mtime, size) in live.items()
        ),
    )
    scanned = len(entries)
    protected_count = sum(1 for _, name, _, _ in entries if name in protected)
    total = sum(size for _, _, size, _ in entries)
    evicted: Set[str] = set()
    removed = 0
    reclaimed = 0
    for mtime, name, size, _source in entries:
        if name in protected:
            continue
        expired = max_age_seconds is not None and now - mtime > max_age_seconds
        oversize = max_bytes is not None and total > max_bytes
        if not (expired or oversize):
            continue
        evicted.add(name)
        removed += 1
        reclaimed += size
        total -= size

    # Decide which segments must be rewritten: every segment when
    # compacting, otherwise only those holding evicted or superseded
    # frames (rewriting is the only way to actually reclaim their bytes).
    segments_to_rewrite: List[Tuple[Path, List[_SegmentRecord]]] = []
    for segment, records, clean in segments:
        needs = compact or not clean
        if not needs:
            for record in records:
                name = record.digest.hex()
                source = live.get(record.digest)
                superseded = source is None or source[0] is not record
                if name in evicted or superseded:
                    needs = True
                    break
        if needs:
            segments_to_rewrite.append((segment, records))

    rewrite_set = {segment for segment, _records in segments_to_rewrite}
    writer = _SegmentWriter(directory, segment_max_bytes)
    segments_removed = 0
    for segment, records in segments_to_rewrite:
        try:
            with open(segment, "rb") as stream:
                for record in records:
                    name = record.digest.hex()
                    source = live.get(record.digest)
                    if name in evicted or source is None or source[0] is not record:
                        continue
                    stream.seek(record.offset)
                    payload = stream.read(record.length)
                    if len(payload) != record.length or zlib.crc32(payload) != record.crc:
                        continue  # corrupt frame: drop it (heals as a miss)
                    writer.append(record.digest, payload, record.mtime, record.crc)
        except OSError:
            continue
        for path in (segment, _sidecar_for(segment)):
            try:
                path.unlink()
            except OSError:
                pass
        segments_removed += 1

    for path, _mtime, _size in legacy:
        try:
            digest = bytes.fromhex(path.stem)
        except ValueError:
            digest = None
        name = path.stem
        source = live.get(digest) if digest is not None else None
        superseded = source is None or source[0] is not path
        if name in evicted or superseded:
            try:
                path.unlink()
            except OSError:
                pass
            continue
        if compact:
            # Migrate the legacy record into a packed segment (re-framed
            # from the legacy container; unreadable files simply stay).
            payload = _read_legacy_payload(path)
            if payload is not None and digest is not None:
                writer.append(digest, payload, source[1], zlib.crc32(payload))
                try:
                    path.unlink()
                except OSError:
                    pass

    writer.seal()

    # Records whose segment was *not* rewritten survive in place; count
    # them plus everything the writer carried over.
    kept = scanned - removed
    kept_bytes = total
    return GCReport(
        scanned=scanned,
        removed=removed,
        reclaimed_bytes=reclaimed,
        kept=kept,
        kept_bytes=kept_bytes,
        protected=protected_count,
        segments_scanned=len(segments),
        segments_removed=segments_removed,
        segments_written=len(writer.written),
        dead_bytes=dead_bytes,
    )


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of an integrity scan over a cache directory (``cache verify``).

    ``clean`` is the verdict: True when every frame's CRC matches, every
    segment parses end to end, every sidecar index agrees with its
    segment and every legacy file decodes.
    """

    segments: int  #: packed segment files scanned
    frames_ok: int  #: frames whose payload CRC validated
    frames_corrupt: int  #: frames whose payload failed its CRC
    torn_segments: int  #: segments with a torn or unparseable tail
    torn_bytes: int  #: bytes past the last well-formed frame
    sidecars: int  #: sidecar index files present
    sidecars_stale: int  #: sidecars disagreeing with their segment's frames
    legacy_ok: int  #: legacy one-file-per-record entries that decoded
    legacy_corrupt: int  #: legacy entries that failed to decode
    repaired_segments: int = 0  #: damaged segments rewritten (``--repair``)
    dropped_frames: int = 0  #: corrupt frames dropped by the repair

    @property
    def clean(self) -> bool:
        """True when the scan found no corruption at all."""
        return not (
            self.frames_corrupt
            or self.torn_segments
            or self.sidecars_stale
            or self.legacy_corrupt
        )

    def describe(self) -> str:
        """Human-readable summary (the CLI ``cache verify`` body)."""
        lines = [
            f"segments: {self.segments} ({self.frames_ok} frames ok, "
            f"{self.frames_corrupt} corrupt, {self.torn_segments} torn "
            f"tails / {human_bytes(self.torn_bytes)})",
            f"sidecar indexes: {self.sidecars} ({self.sidecars_stale} stale)",
        ]
        if self.legacy_ok or self.legacy_corrupt:
            lines.append(
                f"legacy records: {self.legacy_ok} ok, "
                f"{self.legacy_corrupt} corrupt"
            )
        if self.repaired_segments or self.dropped_frames:
            lines.append(
                f"repaired: {self.repaired_segments} segments rewritten, "
                f"{self.dropped_frames} corrupt frames dropped"
            )
        lines.append("verdict: " + ("clean" if self.clean else "CORRUPT"))
        return "\n".join(lines)


def verify_cache(
    cache_dir: Union[str, Path],
    repair: bool = False,
    segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
) -> VerifyReport:
    """Validate every frame, sidecar index and legacy record in a cache dir.

    Unlike the lazy read path (which drops a corrupt frame only when its
    key happens to be requested) this walks the whole directory: every
    segment is re-parsed from byte zero — deliberately ignoring sidecar
    indexes, which are themselves being audited — and every payload's
    CRC-32 is recomputed.  Without ``repair`` the scan is strictly
    read-only.  With ``repair=True`` damaged segments are rewritten
    keeping only their valid frames (corrupt frames and torn tails are
    dropped — those records heal as cache misses), stale sidecars are
    rebuilt, and undecodable legacy files are deleted.

    Like GC, repair assumes no concurrent writer shares the directory.
    The counters in the returned :class:`VerifyReport` always describe
    the state *found*, not the state after repair.
    """
    directory = Path(cache_dir)
    writer = _SegmentWriter(directory, segment_max_bytes) if repair else None
    segments = 0
    frames_ok = 0
    frames_corrupt = 0
    torn_segments = 0
    torn_bytes = 0
    sidecars = 0
    sidecars_stale = 0
    repaired_segments = 0
    dropped_frames = 0
    for segment in _segment_paths(directory):
        try:
            size = segment.stat().st_size
        except OSError:
            continue
        segments += 1
        records, end, clean_tail = _scan_segment(segment, 0, size)
        torn = max(0, size - end)
        good: List[Tuple[_SegmentRecord, bytes]] = []
        bad = 0
        try:
            with open(segment, "rb") as stream:
                for record in records:
                    stream.seek(record.offset)
                    payload = stream.read(record.length)
                    if (
                        len(payload) != record.length
                        or zlib.crc32(payload) != record.crc
                    ):
                        bad += 1
                    else:
                        good.append((record, payload))
        except OSError:
            continue
        frames_ok += len(good)
        frames_corrupt += bad
        damaged = bad > 0 or not clean_tail or torn > 0
        if not clean_tail or torn > 0:
            torn_segments += 1
            torn_bytes += torn
        sidecar = _sidecar_for(segment)
        sidecar_stale = False
        if sidecar.is_file():
            sidecars += 1
            indexed = _read_sidecar(sidecar)
            expected = [
                (r.digest, r.offset, r.length, r.mtime, r.crc) for r in records
            ]
            actual = (
                None
                if indexed is None
                else [(r.digest, r.offset, r.length, r.mtime, r.crc) for r in indexed]
            )
            if actual != expected:
                sidecars_stale += 1
                sidecar_stale = True
        if writer is not None and damaged:
            for record, payload in good:
                writer.append(record.digest, payload, record.mtime, record.crc)
            for path in (segment, sidecar):
                try:
                    path.unlink()
                except OSError:
                    pass
            repaired_segments += 1
            dropped_frames += bad
        elif writer is not None and sidecar_stale:
            _atomic_write(directory, sidecar, _sidecar_blob(records))
    legacy_ok = 0
    legacy_corrupt = 0
    for path in directory.glob(f"*{_LEGACY_SUFFIX}"):
        payload = _read_legacy_payload(path)
        decoded = False
        if payload is not None:
            try:
                zlib.decompress(payload)
                decoded = True
            except zlib.error:
                decoded = False
        if decoded:
            legacy_ok += 1
        else:
            legacy_corrupt += 1
            if repair:
                try:
                    path.unlink()
                except OSError:
                    pass
    if writer is not None:
        writer.seal()
    return VerifyReport(
        segments=segments,
        frames_ok=frames_ok,
        frames_corrupt=frames_corrupt,
        torn_segments=torn_segments,
        torn_bytes=torn_bytes,
        sidecars=sidecars,
        sidecars_stale=sidecars_stale,
        legacy_ok=legacy_ok,
        legacy_corrupt=legacy_corrupt,
        repaired_segments=repaired_segments,
        dropped_frames=dropped_frames,
    )


def _read_legacy_payload(path: Path) -> Optional[bytes]:
    """The compressed payload inside a legacy record file, or ``None``."""
    try:
        blob = path.read_bytes()
        if not blob.startswith(_MAGIC):
            return None
        (length,) = _HEADER.unpack_from(blob, len(_MAGIC))
        payload = blob[len(_MAGIC) + _HEADER.size :]
        if len(payload) != length:
            return None
        return payload
    except (OSError, struct.error):
        return None


class PersistentResultCache(ResultCache):
    """A :class:`ResultCache` whose records survive the process.

    Lookups try the in-memory LRU first, then the packed-segment index
    (falling back to legacy one-file-per-record entries); disk hits are
    promoted into the LRU.  Writes append to this instance's own active
    segment, so concurrent processes never contend on a file.  All disk
    failures degrade to cache misses — a read-only or full disk makes the
    cache slower, never wrong.
    """

    #: Temp files older than this are leftovers of writers that died
    #: between ``mkstemp`` and ``os.replace``; anything younger may be a
    #: concurrent writer's live staging file and is left alone.
    _STALE_TMP_SECONDS = 3600.0

    def __init__(
        self,
        cache_dir: Union[str, Path],
        maxsize: int = 8192,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ):
        super().__init__(maxsize=maxsize)
        self._dir = Path(cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._maxsize = int(maxsize)
        self._max_bytes = max_bytes
        self._max_age_seconds = max_age_seconds
        self._segment_max_bytes = max(_FRAME.size + 1, int(segment_max_bytes))
        self._disk_hits = 0
        self._disk_misses = 0
        #: Key digests written by *this* instance — i.e. during the
        #: current run — which garbage collection must never evict.
        self._written: Set[str] = set()
        #: digest -> (segment name, payload offset, length, crc)
        self._index: Dict[bytes, Tuple[str, int, int, int]] = {}
        #: segment name -> [next scan offset, poisoned, sealed]
        self._scan_state: Dict[str, List] = {}
        self._active_path: Optional[Path] = None
        self._active_stream: Optional[io.BufferedWriter] = None
        self._active_size = 0
        self._active_records: List[_SegmentRecord] = []
        self._sweep_stale_temp_files()
        if max_bytes is not None or max_age_seconds is not None:
            self.gc()
        self._refresh_index()

    def _sweep_stale_temp_files(self) -> None:
        cutoff = time.time() - self._STALE_TMP_SECONDS
        for path in self._dir.glob("*.tmp"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                pass

    @property
    def cache_dir(self) -> Path:
        """The backing directory."""
        return self._dir

    def _path(self, key: Hashable) -> Path:
        """Legacy (PR-4) one-file-per-record path of a key, for migration."""
        return self._dir / f"{key_digest(key)}{_LEGACY_SUFFIX}"

    # -- segment index ---------------------------------------------------------

    def _refresh_index(self) -> None:
        """Fold newly appeared segment bytes/files into the in-memory index.

        Sealed segments load their compact sidecar once; the unsealed
        active segments of *other* processes are scanned incrementally —
        only the bytes appended since the last refresh are parsed, so a
        refresh on a warm directory costs a handful of ``stat`` calls.
        """
        try:
            names = os.listdir(self._dir)
        except OSError:
            return
        own = None if self._active_path is None else self._active_path.name
        for name in names:
            if not name.endswith(_SEGMENT_SUFFIX) or not name.startswith("seg-"):
                continue
            if name == own:
                continue  # our own appends are indexed at write time
            state = self._scan_state.setdefault(name, [0, False, False])
            if state[1] or state[2]:
                continue  # poisoned tail or sealed-and-loaded: nothing new
            path = self._dir / name
            sidecar = _sidecar_for(path)
            if sidecar.exists():
                records = _read_sidecar(sidecar)
                if records is not None:
                    for record in records:
                        self._index[record.digest] = (
                            name,
                            record.offset,
                            record.length,
                            record.crc,
                        )
                    state[2] = True
                    continue
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size <= state[0]:
                continue
            records, end, clean = _scan_segment(path, state[0], size)
            for record in records:
                self._index[record.digest] = (
                    name,
                    record.offset,
                    record.length,
                    record.crc,
                )
            state[0] = end
            state[1] = not clean

    def _read_indexed(self, digest: bytes) -> Optional[bytes]:
        """The payload an index entry points at, or ``None`` (entry dropped)."""
        entry = self._index.get(digest)
        if entry is None:
            return None
        name, offset, length, crc = entry
        try:
            with open(self._dir / name, "rb") as stream:
                stream.seek(offset)
                payload = stream.read(length)
        except OSError:
            payload = b""
        if len(payload) != length or zlib.crc32(payload) != crc:
            # Compacted away or corrupt: drop the entry so the slot heals.
            self._index.pop(digest, None)
            return None
        return payload

    # -- disk tier -------------------------------------------------------------

    def _read(self, path: Path):
        """Decode one legacy record file; any failure is a miss (file removed)."""
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            (length,) = _HEADER.unpack_from(blob, len(_MAGIC))
            payload = blob[len(_MAGIC) + _HEADER.size :]
            if len(payload) != length:
                raise ValueError("truncated record")
            return pickle.loads(zlib.decompress(payload))
        except Exception:
            # Truncated write, stale format, disk corruption: drop the file
            # so the slot heals itself on the next put.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _lookup_payload(self, digest: bytes) -> Optional[bytes]:
        """Find a key's compressed payload across segments (refreshing once)."""
        payload = self._read_indexed(digest)
        if payload is not None:
            return payload
        self._refresh_index()
        return self._read_indexed(digest)

    def _rotate_active(self) -> None:
        """Seal the active segment (sidecar + close) and start a fresh one."""
        if self._active_stream is not None:
            self._active_stream.close()
            try:
                _atomic_write(
                    self._dir,
                    _sidecar_for(self._active_path),
                    _sidecar_blob(self._active_records),
                )
            except OSError:
                pass
            self._scan_state[self._active_path.name] = [self._active_size, False, True]
        token = f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        self._active_path = self._dir / f"seg-{token}{_SEGMENT_SUFFIX}"
        self._active_stream = open(self._active_path, "ab")
        if self._active_stream.tell() == 0:
            self._active_stream.write(SEGMENT_MAGIC)
            self._active_stream.flush()
        self._active_size = self._active_stream.tell()
        self._active_records = []

    def _append_record(self, digest_hex: str, record) -> None:
        """Append one frame to the active segment (failures degrade silently)."""
        try:
            payload = zlib.compress(
                pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            )
            digest = bytes.fromhex(digest_hex)
            if self._active_stream is None or (
                self._active_records
                and self._active_size + _FRAME.size + len(payload)
                > self._segment_max_bytes
            ):
                self._rotate_active()
            crc = zlib.crc32(payload)
            mtime = time.time()
            frame = _FRAME.pack(_FRAME_MAGIC, digest, mtime, len(payload), crc)
            self._active_stream.write(frame + payload)
            self._active_stream.flush()
            offset = self._active_size + _FRAME.size
            self._active_size += len(frame) + len(payload)
            self._index[digest] = (
                self._active_path.name,
                offset,
                len(payload),
                crc,
            )
            self._active_records.append(
                _SegmentRecord(
                    digest=digest,
                    offset=offset,
                    length=len(payload),
                    mtime=mtime,
                    crc=crc,
                )
            )
            self._written.add(digest_hex)
        except Exception:
            # Unpicklable record, read-only directory, full disk, ...: the
            # memory tier still serves this entry; persistence is best-effort.
            pass

    def close(self) -> None:
        """Seal the active segment so future opens load its sidecar.

        Optional hygiene (the cache works without it): an unsealed
        segment is still fully readable via tail scans.
        """
        if self._active_stream is None:
            return
        try:
            self._active_stream.close()
            if self._active_records:
                _atomic_write(
                    self._dir,
                    _sidecar_for(self._active_path),
                    _sidecar_blob(self._active_records),
                )
            else:
                self._active_path.unlink()
        except OSError:
            pass
        self._active_stream = None
        self._active_path = None
        self._active_records = []
        self._active_size = 0

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- cache protocol --------------------------------------------------------

    def get(self, key: Hashable) -> Optional[object]:
        """Memory first, then disk (promoting disk hits into the LRU)."""
        record = super().get(key)
        if record is not None:
            return record
        return self.probe_disk(key)

    def probe_disk(self, key: Hashable) -> Optional[object]:
        """Disk-tier-only lookup (promoting hits into the LRU).

        Counter semantics match the fall-through half of :meth:`get`, so a
        :meth:`~repro.runtime.cache.ResultCache.peek_memory` followed by a
        ``probe_disk`` counts exactly like one full ``get`` — the sequence
        the experiment runner performs around worker dispatch.
        """
        digest_hex = key_digest(key)
        payload = self._lookup_payload(bytes.fromhex(digest_hex))
        if payload is not None:
            try:
                record = pickle.loads(zlib.decompress(payload))
            except Exception:
                record = None
        else:
            # Migration fallback: the PR-4 one-file-per-record format.
            record = self._read(self._dir / f"{digest_hex}{_LEGACY_SUFFIX}")
        if record is None:
            self._disk_misses += 1
            return None
        self._disk_hits += 1
        self._lru.put(key, self._copy(record))
        return record

    def put(self, key: Hashable, record) -> None:
        """Store in the LRU and append to the active packed segment."""
        super().put(key, record)
        # pickling never mutates the record, so no defensive copy is needed
        # on the write path (the LRU already holds its own private copy).
        self._append_record(key_digest(key), record)

    def put_local(self, key: Hashable, record) -> None:
        """Memory-only store for a record a *worker* already persisted.

        The worker wrote the frame, but the write belongs to the current
        run all the same — register it so :meth:`gc` cannot evict it.
        """
        super().put_local(key, record)
        self._written.add(key_digest(key))

    def clear(self) -> None:
        """Drop the memory tier and every record in the directory."""
        super().clear()
        self._disk_hits = 0
        self._disk_misses = 0
        if self._active_stream is not None:
            try:
                self._active_stream.close()
            except OSError:
                pass
            self._active_stream = None
            self._active_path = None
            self._active_records = []
            self._active_size = 0
        self._index.clear()
        self._scan_state.clear()
        for pattern in (
            f"*{_LEGACY_SUFFIX}",
            "*.tmp",
            f"seg-*{_SEGMENT_SUFFIX}",
            f"seg-*{_SIDECAR_SUFFIX}",
        ):
            for path in self._dir.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass

    def stats(self) -> CacheStats:
        """Memory counters plus the disk tier's hit/miss counters."""
        memory = super().stats()
        return CacheStats(
            hits=memory.hits,
            misses=memory.misses,
            currsize=memory.currsize,
            maxsize=memory.maxsize,
            disk_hits=self._disk_hits,
            disk_misses=self._disk_misses,
        )

    def disk_entries(self) -> int:
        """Number of distinct records currently on disk (all formats)."""
        self._refresh_index()
        digests = set(self._index)
        for path in self._dir.glob(f"*{_LEGACY_SUFFIX}"):
            try:
                digests.add(bytes.fromhex(path.stem))
            except ValueError:
                continue
        return len(digests)

    def disk_bytes(self) -> int:
        """Total size of the segment, sidecar and legacy files on disk."""
        total = 0
        for pattern in (
            f"seg-*{_SEGMENT_SUFFIX}",
            f"seg-*{_SIDECAR_SUFFIX}",
            f"*{_LEGACY_SUFFIX}",
        ):
            for path in self._dir.glob(pattern):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def segment_report(self) -> SegmentReport:
        """Segment-level statistics of the backing directory."""
        return segment_stats(self._dir)

    # -- garbage collection ----------------------------------------------------

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        compact: bool = False,
    ) -> GCReport:
        """Evict old records by the instance (or overriding) policy.

        Records written during the current run (by this instance) are
        always kept — a sweep must never evict its own fresh results out
        from under a rerun.  Runs automatically at construction when a
        policy was configured, so long-lived cache directories stay
        bounded without a separate maintenance step.  The active segment
        is sealed first so compaction never rewrites a file this instance
        is still appending to.
        """
        self.close()
        report = collect_garbage(
            self._dir,
            max_bytes=self._max_bytes if max_bytes is None else max_bytes,
            max_age_seconds=(
                self._max_age_seconds if max_age_seconds is None else max_age_seconds
            ),
            protected=frozenset(self._written),
            compact=compact,
            segment_max_bytes=self._segment_max_bytes,
        )
        # Compaction moved frames around: rebuild the index from scratch.
        self._index.clear()
        self._scan_state.clear()
        self._refresh_index()
        return report

    # -- worker-pool sharing ---------------------------------------------------

    def worker_spec(self) -> Dict[str, object]:
        """Constructor arguments for a worker-process twin of this cache.

        Workers share the directory but never a GC policy: eviction is the
        parent's job, and a worker evicting mid-run could drop records the
        parent just counted on.
        """
        return {
            "cache_dir": str(self._dir),
            "maxsize": self._maxsize,
            "segment_max_bytes": self._segment_max_bytes,
        }

    def note_worker_hit(self, key: Hashable, record) -> None:
        """Account a lookup a pool worker served from the shared disk tier.

        The parent deliberately probed only its memory tier before
        dispatching (see :meth:`~repro.runtime.cache.ResultCache.
        peek_memory`), so the worker's disk hit is credited here — keeping
        the ``computed == misses - disk_hits`` invariant of
        :class:`~repro.linalg.cache.CacheStats` intact — and the record is
        promoted into the parent's LRU.
        """
        self._disk_hits += 1
        self._lru.put(key, self._copy(record))


def resolve_result_cache(
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    maxsize: int = 8192,
    max_bytes: Optional[int] = None,
) -> Optional[ResultCache]:
    """Build the result cache a runtime entry point should use.

    ``no_cache`` wins over everything; an explicit ``cache_dir`` (or the
    ``REPRO_CACHE_DIR`` environment default) selects the persistent cache;
    otherwise the plain in-process LRU is returned.  ``max_bytes`` (or the
    ``REPRO_CACHE_MAX_BYTES`` default) bounds a long-lived cache directory:
    the persistent cache garbage-collects down to the budget on startup.
    """
    if no_cache:
        return None
    directory = cache_dir if cache_dir is not None else cache_dir_from_env()
    if directory is not None:
        budget = max_bytes if max_bytes is not None else max_bytes_from_env()
        return PersistentResultCache(directory, maxsize=maxsize, max_bytes=budget)
    return ResultCache(maxsize=maxsize)
