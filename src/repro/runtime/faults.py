"""Deterministic fault injection for the execution layer.

Production failure modes — a worker segfaulting, a task hanging, a
library raising, a cache frame landing corrupt on disk — are rare and
non-deterministic in the wild, which makes the recovery paths the least
tested code in the system.  This module makes those events *scheduled*:
a :class:`FaultPlan` names exactly which task ordinals misbehave and
how, a :class:`FaultInjector` fires the faults inside pool workers (or
the serial twin), and the plan travels as a compact spec string through
``REPRO_FAULT_PLAN`` or ``repro sweep --inject-faults`` so the same
failure replays bit-identically in tests and CI.

Plan grammar (entries joined by ``;``)::

    crash@3             worker calls os._exit on dispatched task 3 (once)
    hang@5x2=0.4        task 5 sleeps 0.4s before running, twice
    raise@7x*           task 7 raises InjectedFault on every attempt
    corrupt@9           task 9 appends a bad-CRC frame to the cache
    state=/tmp/faults   directory for cross-process one-shot bookkeeping

Ordinals count *dispatched* tasks per runner, in dispatch order (cache
hits resolved by the parent are not dispatched).  ``xN`` fires a fault
at most N times, ``x*`` means every attempt; the default is once.  A
one-shot ``crash``/``hang`` needs ``state=`` to stay one-shot across
the pool rebuild it provokes — without it each fresh worker fires anew
(the runner still converges by quarantining the task).
"""

from __future__ import annotations

import hashlib
import os
import re
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_MODES",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "write_corrupt_frame",
]

#: Environment variable consulted by workers and runners for a default plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code used by injected worker crashes (distinguishable from signals).
CRASH_EXIT_CODE = 86

#: Supported fault modes, in the order the grammar documents them.
FAULT_MODES = ("crash", "hang", "raise", "corrupt")

_ENTRY_PATTERN = re.compile(
    r"^(crash|hang|raise|corrupt)@(\d+)(?:x(\d+|\*))?(?:=([0-9.]+))?$"
)


class InjectedFault(RuntimeError):
    """Raised by ``raise``-mode faults (and only by them)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``mode`` fires at dispatched-task ``index``.

    ``count`` bounds how many times it fires (``None`` = every attempt);
    ``param`` is the mode's numeric argument (hang duration in seconds).
    """

    mode: str
    index: int
    count: Optional[int] = 1
    param: Optional[float] = None

    def entry(self) -> str:
        """Canonical spec-string entry for this fault."""
        text = f"{self.mode}@{self.index}"
        if self.count is None:
            text += "x*"
        elif self.count != 1:
            text += f"x{self.count}"
        if self.param is not None:
            text += f"={self.param:g}"
        return text


class FaultPlan:
    """An immutable schedule of :class:`FaultSpec` entries.

    ``state_dir`` (the ``state=`` entry) names a directory used for
    marker files so one-shot counts hold across processes — essential
    for ``crash`` faults, where the process that fired does not survive
    to remember having done so.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        state_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self._specs = tuple(specs)
        self._state_dir = None if state_dir is None else Path(state_dir)
        for spec in self._specs:
            if spec.mode not in FAULT_MODES:
                raise ValueError(f"unknown fault mode: {spec.mode!r}")
            if spec.index < 0:
                raise ValueError(f"fault index must be >= 0, got {spec.index}")

    @property
    def specs(self) -> Tuple[FaultSpec, ...]:
        """The scheduled faults, in plan order."""
        return self._specs

    @property
    def state_dir(self) -> Optional[Path]:
        """Directory for cross-process one-shot markers (``state=``)."""
        return self._state_dir

    @property
    def spec(self) -> str:
        """Canonical spec string (parses back to an equivalent plan)."""
        entries = [item.entry() for item in self._specs]
        if self._state_dir is not None:
            entries.append(f"state={self._state_dir}")
        return ";".join(entries)

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["FaultPlan"]:
        """Parse a spec string; ``None``/blank input means no plan."""
        if text is None:
            return None
        text = text.strip()
        if not text:
            return None
        specs: List[FaultSpec] = []
        state_dir: Optional[str] = None
        for raw in text.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            if entry.startswith("state="):
                state_dir = entry[len("state=") :]
                continue
            match = _ENTRY_PATTERN.match(entry)
            if match is None:
                raise ValueError(
                    f"bad fault entry {entry!r} (expected mode@index[xN|x*][=param] "
                    f"with mode one of {', '.join(FAULT_MODES)})"
                )
            mode, index, count, param = match.groups()
            specs.append(
                FaultSpec(
                    mode=mode,
                    index=int(index),
                    count=None if count == "*" else int(count or 1),
                    param=None if param is None else float(param),
                )
            )
        if not specs:
            return None
        return cls(specs, state_dir=state_dir)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Build the plan named by ``REPRO_FAULT_PLAN``, if any."""
        return cls.parse(os.environ.get(FAULT_PLAN_ENV))

    @classmethod
    def scatter(
        cls,
        total: int,
        rate: float,
        seed: int = 0,
        mode: str = "crash",
        state_dir: Optional[Union[str, Path]] = None,
    ) -> "FaultPlan":
        """Scatter one-shot faults over ``total`` ordinals, seed-driven.

        Each ordinal independently gets a fault with probability
        ``rate``, decided by a sha256 draw so the same (total, rate,
        seed, mode) always yields the same plan.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        specs = []
        for index in range(total):
            token = f"fault-scatter|{seed}|{mode}|{index}".encode()
            draw = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
            if draw / 2**64 < rate:
                specs.append(FaultSpec(mode=mode, index=index))
        return cls(specs, state_dir=state_dir)

    def faults_for(self, index: int) -> Tuple[FaultSpec, ...]:
        """The faults scheduled at dispatched-task ordinal ``index``."""
        return tuple(spec for spec in self._specs if spec.index == index)

    def __bool__(self) -> bool:
        return bool(self._specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._specs == other._specs and self._state_dir == other._state_dir

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec!r})"


class FaultInjector:
    """Fires a :class:`FaultPlan`'s faults at task-execution time.

    One injector lives per process (worker or parent).  ``fire`` is
    called with the task's dispatch ordinal just before the task runs;
    crash/hang/raise faults take effect immediately, while a claimed
    ``corrupt`` fault is reported back (``True``) for the caller to act
    on after computing the result.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._fired: Dict[Tuple[str, int], int] = {}
        state_dir = plan.state_dir
        if state_dir is not None:
            state_dir.mkdir(parents=True, exist_ok=True)

    @property
    def plan(self) -> FaultPlan:
        """The plan this injector executes."""
        return self._plan

    def fire(self, ordinal: int) -> bool:
        """Fire any faults due at ``ordinal``; return True to corrupt.

        ``crash`` exits the process (after claiming its marker, so a
        stateful plan never crash-loops), ``hang`` sleeps ``param``
        seconds (default 3600 — long enough that only a task timeout
        ends it), ``raise`` raises :class:`InjectedFault`.
        """
        corrupt = False
        for spec in self._plan.faults_for(ordinal):
            if not self._claim(spec):
                continue
            if spec.mode == "crash":
                os._exit(CRASH_EXIT_CODE)
            elif spec.mode == "hang":
                time.sleep(spec.param if spec.param is not None else 3600.0)
            elif spec.mode == "raise":
                raise InjectedFault(
                    f"injected fault at dispatched task {spec.index}"
                )
            elif spec.mode == "corrupt":
                corrupt = True
        return corrupt

    def _claim(self, spec: FaultSpec) -> bool:
        """Consume one firing of ``spec``; False once its count is spent."""
        if spec.count is None:
            return True
        state_dir = self._plan.state_dir
        if state_dir is None:
            key = (spec.mode, spec.index)
            fired = self._fired.get(key, 0)
            if fired >= spec.count:
                return False
            self._fired[key] = fired + 1
            return True
        for attempt in range(spec.count):
            marker = state_dir / f"{spec.mode}-{spec.index}-{attempt}.fired"
            try:
                handle = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(handle)
            return True
        return False


def write_corrupt_frame(cache_dir: Union[str, Path], key: object) -> Path:
    """Append a deliberately corrupt frame for ``key`` to a cache dir.

    Writes a fresh packed segment whose single frame carries a CRC that
    does not match its payload — exactly the damage a torn write or bit
    rot leaves behind.  Readers must detect and drop it; ``repro cache
    verify`` must report it.  Returns the segment path.
    """
    from repro.runtime.disk_cache import SEGMENT_MAGIC, _FRAME, _FRAME_MAGIC, key_digest

    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    digest = key_digest(key)
    payload = zlib.compress(b"corrupt-injected-frame")
    bad_crc = (zlib.crc32(payload) ^ 0xFFFFFFFF) & 0xFFFFFFFF
    frame = _FRAME.pack(
        _FRAME_MAGIC, bytes.fromhex(digest), time.time(), len(payload), bad_crc
    )
    nonce = hashlib.sha256(f"{digest}|{os.getpid()}".encode()).hexdigest()[:12]
    path = directory / f"seg-fault-{nonce}.rps"
    with open(path, "wb") as stream:
        stream.write(SEGMENT_MAGIC)
        stream.write(frame)
        stream.write(payload)
        stream.flush()
        os.fsync(stream.fileno())
    return path
