"""Parallel experiment execution with ordered collection and a serial twin.

:class:`ExperimentRunner` is the single execution seam every experiment
driver funnels through.  It fans independent sweep points out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, collects results *in
submission order* (so parallel and serial runs produce identical outputs),
consults an optional result cache before dispatching, and falls back to an
inline serial loop whenever parallelism is disabled, unavailable (no
``fork``/semaphores in restricted sandboxes) or pointless (one task, one
worker).

Determinism contract: a task function must depend only on its arguments —
every driver in :mod:`repro.experiments` passes explicit seeds (the
paper's shared-seed convention, so identical circuits are compared across
backends) — and the runner never changes results, only wall-clock.
:func:`point_seed` is the provided utility for callers that instead want
*derived* per-point seeds: it is stable across processes and Python
invocations (unlike the salted builtin ``hash``), so fan-out stays
deterministic; no built-in driver uses it, by design.

Worker-shared cache protocol
----------------------------

When the attached result cache is disk-backed (it exposes a
``worker_spec()``), a parallel ``map`` does not funnel every lookup
through the parent.  Instead the pool initializer opens a per-worker
:class:`~repro.runtime.disk_cache.PersistentResultCache` over the same
directory, the parent probes only its memory LRU before dispatch
(:meth:`~repro.runtime.cache.ResultCache.peek_memory`), and each worker
consults and populates the shared disk tier itself — so a warm parallel
rerun fans the per-record decompression out across the pool and performs
zero recomputes.  Every dispatched task reports back an
``(outcome, value)`` tuple whose first element is one of:

* ``"computed"`` — the worker had no cache; the parent stores the value
  in both of its tiers;
* ``"stored"`` — the worker computed the value *and* persisted it to the
  shared directory; the parent only warms its memory LRU
  (:meth:`~repro.runtime.cache.ResultCache.put_local`);
* ``"shared"`` — the worker served the value from the shared disk tier;
  the parent credits a disk hit into its own
  :class:`~repro.linalg.cache.CacheStats`
  (:meth:`~repro.runtime.disk_cache.PersistentResultCache.note_worker_hit`);
* ``"cached"`` — the *parent's* cache served the value during serial
  execution (the serial twin finishing a ``peek_memory`` with
  :meth:`~repro.runtime.disk_cache.PersistentResultCache.probe_disk`);
  nothing is left to record.

The bookkeeping keeps the ``computed == misses - disk_hits`` invariant of
:class:`~repro.linalg.cache.CacheStats` intact whichever process did the
work, so cache reports are comparable between serial, parallel, cold and
warm runs.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

#: Environment knobs: REPRO_PARALLEL=1 turns fan-out on by default,
#: REPRO_WORKERS caps the pool size.
PARALLEL_ENV = "REPRO_PARALLEL"
WORKERS_ENV = "REPRO_WORKERS"

_TRUTHY = ("1", "true", "True", "yes", "on")


def parallel_enabled_by_env() -> bool:
    """True when the REPRO_PARALLEL environment variable requests fan-out."""
    return os.environ.get(PARALLEL_ENV, "0") in _TRUTHY


def default_worker_count() -> int:
    """Worker count from REPRO_WORKERS, defaulting to the CPU count.

    A non-integer REPRO_WORKERS is reported and ignored rather than
    crashing runner construction deep inside an experiment command.
    """
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {WORKERS_ENV}={env!r}; "
                "using the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return os.cpu_count() or 1


def point_seed(base_seed: int, *parts: Any) -> int:
    """Deterministic 31-bit seed derived from a base seed and key parts.

    Stable across processes and sessions (the builtin ``hash`` is salted
    per interpreter, so it must never be used for this).
    """
    token = "|".join([str(int(base_seed))] + [repr(part) for part in parts])
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# -- worker-side shared disk cache --------------------------------------------
#
# When the runner's result cache is disk-backed, every pool worker opens its
# own cache instance over the same directory (atomic record writes make
# concurrent writers safe).  Workers then consult and populate the shared
# tier directly: a warm parallel rerun fans the record decompression out
# across the pool instead of serialising it in the parent, and a record
# computed by one worker is visible to every other process immediately.

#: Per-worker-process cache instance, set by the pool initializer.
_WORKER_CACHE: Optional[Any] = None

#: Result tags of one dispatched task (the first tuple element returned by
#: :func:`_call_with_worker_cache` and the serial twin):
#: ``computed`` — parent must store the value in both tiers;
#: ``stored`` — worker computed *and* persisted it (parent warms its LRU);
#: ``shared`` — worker served it from the shared cache (a worker disk hit);
#: ``cached`` — the parent's own cache served it during serial execution.
TASK_COMPUTED = "computed"
TASK_STORED = "stored"
TASK_SHARED = "shared"
TASK_CACHED = "cached"


def _init_worker_cache(spec: dict) -> None:
    """Pool initializer: open this worker's view of the shared cache dir."""
    global _WORKER_CACHE
    from repro.runtime.disk_cache import PersistentResultCache

    try:
        _WORKER_CACHE = PersistentResultCache(**spec)
    except Exception:  # pragma: no cover - unwritable dir in a worker
        _WORKER_CACHE = None


def _init_worker(cache_spec: Optional[dict], array_specs: Optional[list]) -> None:
    """Pool initializer: wire up the shared cache and shared arrays.

    Runs once per worker *process*, and the pool outlives individual
    ``map`` calls — so the cache handle (warm LRU + open segment index)
    and the attached arrays stay hot across every stage a multi-stage
    driver fans out.
    """
    if cache_spec is not None:
        _init_worker_cache(cache_spec)
    if array_specs:
        from repro.runtime.shared import register_shared_arrays

        register_shared_arrays(array_specs)


def _call_with_worker_cache(fn: Callable[..., Any], key: Hashable, task: Tuple):
    """Run one task inside a worker, consulting the shared cache first."""
    cache = _WORKER_CACHE
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return (TASK_SHARED, cached)
    value = fn(*task)
    if cache is None:
        return (TASK_COMPUTED, value)
    cache.put(key, value)
    return (TASK_STORED, value)


class ExperimentRunner:
    """Fans independent experiment tasks out over a process pool.

    Args:
        parallel: enable process-pool fan-out.  ``None`` defers to the
            ``REPRO_PARALLEL`` environment variable (default: serial).
        max_workers: pool size; ``None`` uses ``REPRO_WORKERS`` or the CPU
            count.
        result_cache: an object with ``get(key)``/``put(key, value)``
            (e.g. :class:`repro.runtime.cache.ResultCache`) consulted per
            task when the caller supplies cache keys; ``None`` disables
            caching.
        progress: optional callable invoked with a status string per task.
    """

    def __init__(
        self,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
        result_cache: Optional[Any] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self._parallel = parallel_enabled_by_env() if parallel is None else bool(parallel)
        self._max_workers = (
            default_worker_count() if max_workers is None else int(max_workers)
        )
        if self._max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._result_cache = result_cache
        self._progress = progress
        # The worker pool is created lazily on the first parallel map() and
        # reused by later calls, so multi-stage drivers pay the process
        # spawn / interpreter import cost once per runner, not per stage —
        # and each worker's cache handle (warm LRU, open segment index)
        # stays hot across stages too.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shared_arrays = None

    # -- introspection ------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when this runner attempts process-pool execution."""
        return self._parallel

    @property
    def max_workers(self) -> int:
        """Upper bound on concurrent worker processes."""
        return self._max_workers

    @property
    def result_cache(self) -> Optional[Any]:
        """The attached result cache, if any."""
        return self._result_cache

    @property
    def pool_alive(self) -> bool:
        """True while a worker pool is up (persisting across ``map`` calls)."""
        return self._pool is not None

    # -- shared read-only arrays --------------------------------------------

    def share_arrays(self, arrays) -> None:
        """Publish hot read-only arrays to the pool via shared memory.

        Task functions then fetch them with
        :func:`repro.runtime.shared.get_shared_array` instead of receiving
        the data as a per-task (re-pickled) argument.  Works in serial
        fallbacks too — the parent's registry serves its own copies.  An
        already-running pool is discarded so the next ``map`` starts
        workers that see the arrays.
        """
        from repro.runtime.shared import share_arrays

        if self._shared_arrays is not None:
            self._shared_arrays.close()
        self._discard_pool(wait=True)
        self._shared_arrays = share_arrays(arrays)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and release any shared-memory arrays
        (idempotent; the runner stays usable — the next parallel ``map``
        simply starts a fresh pool)."""
        self._discard_pool(wait=True)
        if self._shared_arrays is not None:
            self._shared_arrays.close()
            self._shared_arrays = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self._discard_pool(wait=False)
        except Exception:
            pass

    def _discard_pool(self, wait: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    # -- execution ----------------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple],
        keys: Optional[Sequence[Hashable]] = None,
        labels: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task, returning results in order.

        Args:
            fn: a module-level callable (it must be picklable for the
                parallel path) whose result depends only on its arguments.
            tasks: argument tuples, one per task.
            keys: optional cache keys aligned with ``tasks``; tasks whose
                key hits the attached result cache are not dispatched.
            labels: optional status strings aligned with ``tasks``,
                forwarded to the progress callback.
            progress: per-call progress callback overriding the runner's.

        Returns:
            One result per task, in task order, mixing cached and computed
            values transparently.
        """
        tasks = list(tasks)
        progress = progress if progress is not None else self._progress
        if keys is not None and len(keys) != len(tasks):
            raise ValueError("keys must align one-to-one with tasks")
        if labels is not None and len(labels) != len(tasks):
            raise ValueError("labels must align one-to-one with tasks")

        cache = self._result_cache
        share = self._shares_cache_with_workers(keys, len(tasks))
        results: List[Any] = [None] * len(tasks)
        pending: List[int] = []
        for index in range(len(tasks)):
            cached = None
            if cache is not None and keys is not None:
                # When workers will consult the shared disk tier themselves,
                # the parent probes only its memory LRU: the per-record
                # decompression then fans out across the pool instead of
                # running serially here.
                cached = cache.peek_memory(keys[index]) if share else cache.get(keys[index])
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if pending:
            pending_labels = None if labels is None else [labels[i] for i in pending]
            pending_keys = [keys[i] for i in pending] if share else None
            outcomes = self._execute(
                [tasks[i] for i in pending], fn, pending_labels, progress, pending_keys
            )
            for index, (outcome, value) in zip(pending, outcomes):
                results[index] = value
                if cache is not None and keys is not None:
                    if outcome == TASK_SHARED:
                        cache.note_worker_hit(keys[index], value)
                    elif outcome == TASK_STORED:
                        cache.put_local(keys[index], value)
                    elif outcome == TASK_COMPUTED:
                        cache.put(keys[index], value)
                    # TASK_CACHED: the parent cache served (and counted) it
                    # during serial execution; nothing left to record.
        return results

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _announce(
        progress: Optional[Callable[[str], None]],
        labels: Optional[Sequence[str]],
        position: int,
    ) -> None:
        if progress is not None and labels is not None:
            progress(labels[position])

    def _shares_cache_with_workers(
        self, keys: Optional[Sequence[Hashable]], task_count: int
    ) -> bool:
        """True when dispatched tasks should consult the disk cache in-worker.

        Requires a disk-backed cache (anything exposing ``worker_spec``)
        and a ``map`` call that will actually fan out.
        """
        if keys is None or getattr(self._result_cache, "worker_spec", None) is None:
            return False
        return (
            self._parallel
            and task_count > 1
            and min(self._max_workers, task_count) > 1
        )

    def _create_pool(self) -> ProcessPoolExecutor:
        """Build the worker pool, wiring up the shared cache dir and any
        shared read-only arrays."""
        spec = getattr(self._result_cache, "worker_spec", None)
        cache_spec = None if spec is None else spec()
        array_specs = (
            None if self._shared_arrays is None else self._shared_arrays.specs
        )
        if cache_spec is None and array_specs is None:
            return ProcessPoolExecutor(max_workers=self._max_workers)
        return ProcessPoolExecutor(
            max_workers=self._max_workers,
            initializer=_init_worker,
            initargs=(cache_spec, array_specs),
        )

    def _execute(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        progress: Optional[Callable[[str], None]],
        keys: Optional[Sequence[Hashable]] = None,
    ) -> List[Tuple[str, Any]]:
        """Run the pending tasks, returning ``(outcome, value)`` pairs.

        ``keys`` is only passed when the parent skipped its own disk probe
        in favour of worker-side lookups; the serial twin then probes the
        parent cache's disk tier itself so a pool failure never recomputes
        a record that is already on disk.
        """
        workers = min(self._max_workers, len(tasks))
        if not self._parallel or workers <= 1 or len(tasks) <= 1:
            return self._execute_serial(tasks, fn, labels, progress, keys)
        # Only pool-infrastructure failures fall back to the serial twin:
        # pool/worker creation (no fork or POSIX semaphores in restricted
        # sandboxes) and a broken pool at collection time.  Exceptions
        # raised by the task function itself propagate unchanged.
        try:
            if self._pool is None:
                self._pool = self._create_pool()
            pool = self._pool
        except (OSError, PermissionError, ImportError) as error:
            return self._serial_fallback(tasks, fn, labels, progress, keys, error)
        futures = []
        try:
            for position, task in enumerate(tasks):
                self._announce(progress, labels, position)
                if keys is not None:
                    futures.append(
                        pool.submit(_call_with_worker_cache, fn, keys[position], task)
                    )
                else:
                    futures.append(pool.submit(fn, *task))
        except (OSError, PermissionError, ImportError) as error:
            self._discard_pool(wait=False)
            return self._serial_fallback(tasks, fn, labels, progress, keys, error)
        try:
            collected = [future.result() for future in futures]
        except BrokenProcessPool as error:
            self._discard_pool(wait=False)
            return self._serial_fallback(tasks, fn, labels, progress, keys, error)
        except BaseException:
            # A task raised (or the caller interrupted): stop the pending
            # work so stragglers don't keep burning CPU, keep the pool.
            for future in futures:
                future.cancel()
            raise
        if keys is not None:
            return collected
        return [(TASK_COMPUTED, value) for value in collected]

    def _serial_fallback(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        progress: Optional[Callable[[str], None]],
        keys: Optional[Sequence[Hashable]],
        error: BaseException,
    ) -> List[Tuple[str, Any]]:
        warnings.warn(
            f"process pool unavailable ({error}); running serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return self._execute_serial(tasks, fn, labels, progress, keys)

    def _execute_serial(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        progress: Optional[Callable[[str], None]],
        keys: Optional[Sequence[Hashable]] = None,
    ) -> List[Tuple[str, Any]]:
        results: List[Tuple[str, Any]] = []
        for position, task in enumerate(tasks):
            self._announce(progress, labels, position)
            if keys is not None:
                # The parent only peeked its memory tier before dispatch;
                # finish the lookup against the disk tier here (counter
                # semantics identical to a full fall-through get()).
                cached = self._result_cache.probe_disk(keys[position])
                if cached is not None:
                    results.append((TASK_CACHED, cached))
                    continue
            results.append((TASK_COMPUTED, fn(*task)))
        return results


def serial_runner(
    result_cache: Optional[Any] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ExperimentRunner:
    """An explicitly serial runner (optionally caching), for fallbacks."""
    return ExperimentRunner(
        parallel=False, max_workers=1, result_cache=result_cache, progress=progress
    )
