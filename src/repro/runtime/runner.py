"""Parallel experiment execution with ordered collection and a serial twin.

:class:`ExperimentRunner` is the single execution seam every experiment
driver funnels through.  It fans independent sweep points out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, collects results *in
submission order* (so parallel and serial runs produce identical outputs),
consults an optional result cache before dispatching, and falls back to an
inline serial loop whenever parallelism is disabled, unavailable (no
``fork``/semaphores in restricted sandboxes) or pointless (one task, one
worker).

Determinism contract: a task function must depend only on its arguments —
every driver in :mod:`repro.experiments` passes explicit seeds (the
paper's shared-seed convention, so identical circuits are compared across
backends) — and the runner never changes results, only wall-clock.
:func:`point_seed` is the provided utility for callers that instead want
*derived* per-point seeds: it is stable across processes and Python
invocations (unlike the salted builtin ``hash``), so fan-out stays
deterministic; no built-in driver uses it, by design.

Failure handling
----------------

A long parallel ``map`` treats worker death, hangs and flaky task
exceptions as events to recover from, not reasons to start over.  The
knobs live in :class:`FailurePolicy`: on ``BrokenProcessPool`` the
runner rebuilds the pool and re-dispatches *only* the unfinished tasks
(results already collected are kept); a task that exceeds
``task_timeout`` has its pool killed and is retried; a task exception is
retried up to ``max_retries`` times with exponential backoff and
deterministic jitter.  When crashes keep coming, the runner attributes
the poison task by probing each unfinished task in an isolated
single-worker pool, then applies ``on_poison``: ``"quarantine"``
(default) records the task in :class:`FaultStats` and yields ``None``
for it, ``"raise"`` raises :class:`PoisonTaskError`, ``"skip"`` records
it without the isolated probe.  Everything that happened is tallied in
:attr:`ExperimentRunner.fault_stats`.  Deterministic fault *injection*
for exercising these paths lives in :mod:`repro.runtime.faults`.

Worker-shared cache protocol
----------------------------

When the attached result cache is disk-backed (it exposes a
``worker_spec()``), a parallel ``map`` does not funnel every lookup
through the parent.  Instead the pool initializer opens a per-worker
:class:`~repro.runtime.disk_cache.PersistentResultCache` over the same
directory, the parent probes only its memory LRU before dispatch
(:meth:`~repro.runtime.cache.ResultCache.peek_memory`), and each worker
consults and populates the shared disk tier itself — so a warm parallel
rerun fans the per-record decompression out across the pool and performs
zero recomputes.  Every dispatched task reports back an
``(outcome, value)`` tuple whose first element is one of:

* ``"computed"`` — the worker had no cache; the parent stores the value
  in both of its tiers;
* ``"stored"`` — the worker computed the value *and* persisted it to the
  shared directory; the parent only warms its memory LRU
  (:meth:`~repro.runtime.cache.ResultCache.put_local`);
* ``"shared"`` — the worker served the value from the shared disk tier;
  the parent credits a disk hit into its own
  :class:`~repro.linalg.cache.CacheStats`
  (:meth:`~repro.runtime.disk_cache.PersistentResultCache.note_worker_hit`);
* ``"cached"`` — the *parent's* cache served the value during serial
  execution (the serial twin finishing a ``peek_memory`` with
  :meth:`~repro.runtime.disk_cache.PersistentResultCache.probe_disk`);
  nothing is left to record.
* ``"uncached"`` — the worker computed the value but could not open the
  shared cache directory; the parent persists the value itself, emits a
  one-time :class:`RuntimeWarning` and counts the event in
  :class:`FaultStats`;
* ``"failed"`` — the task was quarantined/skipped under the failure
  policy; its result is ``None`` and nothing touches the cache.

The bookkeeping keeps the ``computed == misses - disk_hits`` invariant of
:class:`~repro.linalg.cache.CacheStats` intact whichever process did the
work, so cache reports are comparable between serial, parallel, cold and
warm runs.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.runtime.faults import FaultInjector, FaultPlan, write_corrupt_frame

#: Environment knobs: REPRO_PARALLEL=1 turns fan-out on by default,
#: REPRO_WORKERS caps the pool size.
PARALLEL_ENV = "REPRO_PARALLEL"
WORKERS_ENV = "REPRO_WORKERS"

_TRUTHY = ("1", "true", "True", "yes", "on")


def parallel_enabled_by_env() -> bool:
    """True when the REPRO_PARALLEL environment variable requests fan-out."""
    return os.environ.get(PARALLEL_ENV, "0") in _TRUTHY


def default_worker_count() -> int:
    """Worker count from REPRO_WORKERS, defaulting to the CPU count.

    A non-integer REPRO_WORKERS is reported and ignored rather than
    crashing runner construction deep inside an experiment command.
    """
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {WORKERS_ENV}={env!r}; "
                "using the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return os.cpu_count() or 1


def point_seed(base_seed: int, *parts: Any) -> int:
    """Deterministic 31-bit seed derived from a base seed and key parts.

    Stable across processes and sessions (the builtin ``hash`` is salted
    per interpreter, so it must never be used for this).
    """
    token = "|".join([str(int(base_seed))] + [repr(part) for part in parts])
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# -- failure policy & accounting ----------------------------------------------


@dataclass(frozen=True)
class FailurePolicy:
    """How a parallel ``map`` responds to worker death, hangs and errors.

    Args:
        task_timeout: seconds a dispatched task may run before its pool
            is killed and the task is treated as hung (``None`` = wait
            forever, the historical behaviour).
        max_retries: how many times a failed/hung task is re-dispatched
            before the failure is final.
        backoff_base: first retry delay in seconds; doubles per attempt.
        backoff_max: upper bound on any single retry delay.
        max_pool_rebuilds: pool crashes tolerated per ``map`` before the
            runner stops re-dispatching blindly and attributes the
            poison task via isolated probes.
        on_poison: what to do with an attributed poison task —
            ``"quarantine"`` (isolated probe, then record + ``None``
            result), ``"raise"`` (:class:`PoisonTaskError`), or
            ``"skip"`` (record + ``None`` result, no probe).
        probe_timeout: seconds the isolated single-worker probe may run.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    max_pool_rebuilds: int = 3
    on_poison: str = "quarantine"
    probe_timeout: float = 60.0

    def __post_init__(self):
        if self.on_poison not in ("quarantine", "raise", "skip"):
            raise ValueError(
                f"on_poison must be 'quarantine', 'raise' or 'skip', "
                f"got {self.on_poison!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")


@dataclass
class FaultStats:
    """Tally of failure events absorbed by a runner (across ``map`` calls).

    ``quarantined`` holds a human-readable entry per task that was given
    up on (its label plus why); everything else is a counter.
    """

    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    uncached_tasks: int = 0
    quarantined: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(
            self.retries
            or self.timeouts
            or self.pool_rebuilds
            or self.uncached_tasks
            or self.quarantined
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (used by the server's metrics payload)."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "uncached_tasks": self.uncached_tasks,
            "quarantined": list(self.quarantined),
        }

    def describe(self) -> str:
        """One-line summary for CLI reports (empty string when clean)."""
        if not self:
            return ""
        parts = []
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.uncached_tasks:
            parts.append(f"{self.uncached_tasks} uncached worker tasks")
        if self.quarantined:
            parts.append(
                f"{len(self.quarantined)} quarantined: "
                + "; ".join(self.quarantined)
            )
        return "faults: " + ", ".join(parts)


class PoisonTaskError(RuntimeError):
    """A task repeatedly killed/hung its worker under ``on_poison="raise"``."""

    def __init__(self, label: str, reason: str):
        super().__init__(f"poison task {label}: {reason}")
        self.label = label
        self.reason = reason


# -- worker-side shared disk cache --------------------------------------------
#
# When the runner's result cache is disk-backed, every pool worker opens its
# own cache instance over the same directory (atomic record writes make
# concurrent writers safe).  Workers then consult and populate the shared
# tier directly: a warm parallel rerun fans the record decompression out
# across the pool instead of serialising it in the parent, and a record
# computed by one worker is visible to every other process immediately.

#: Per-worker-process cache instance, set by the pool initializer.
_WORKER_CACHE: Optional[Any] = None

#: True in a worker whose cache initializer failed — reported back to the
#: parent per task via the ``uncached`` outcome tag so the degradation is
#: visible instead of silent.
_WORKER_CACHE_FAILED = False

#: Per-worker-process fault injector (None = no plan), plus a resolved
#: flag so workers without an initializer lazily consult REPRO_FAULT_PLAN.
_WORKER_INJECTOR: Optional[FaultInjector] = None
_WORKER_INJECTOR_RESOLVED = False

#: Result tags of one dispatched task (the first tuple element returned by
#: :func:`_run_task` and the serial twin):
#: ``computed`` — parent must store the value in both tiers;
#: ``stored`` — worker computed *and* persisted it (parent warms its LRU);
#: ``shared`` — worker served it from the shared cache (a worker disk hit);
#: ``cached`` — the parent's own cache served it during serial execution;
#: ``uncached`` — the worker's cache is broken, the parent must persist it;
#: ``failed`` — the task was quarantined; its result slot is ``None``.
TASK_COMPUTED = "computed"
TASK_STORED = "stored"
TASK_SHARED = "shared"
TASK_CACHED = "cached"
TASK_UNCACHED = "uncached"
TASK_FAILED = "failed"


def _init_worker_cache(spec: dict) -> None:
    """Pool initializer: open this worker's view of the shared cache dir.

    A failure leaves the worker uncached but *visible*: the sentinel flag
    makes every result from this worker carry the ``uncached`` tag, which
    the parent converts into a one-time RuntimeWarning and a
    :class:`FaultStats` count instead of silently losing cache coverage.
    """
    global _WORKER_CACHE, _WORKER_CACHE_FAILED
    from repro.runtime.disk_cache import PersistentResultCache

    try:
        _WORKER_CACHE = PersistentResultCache(**spec)
    except Exception:
        _WORKER_CACHE = None
        _WORKER_CACHE_FAILED = True


def _init_worker(
    cache_spec: Optional[dict],
    array_specs: Optional[list],
    plan_spec: Optional[str] = None,
) -> None:
    """Pool initializer: wire up the shared cache, arrays and fault plan.

    Runs once per worker *process*, and the pool outlives individual
    ``map`` calls — so the cache handle (warm LRU + open segment index)
    and the attached arrays stay hot across every stage a multi-stage
    driver fans out.
    """
    global _WORKER_INJECTOR, _WORKER_INJECTOR_RESOLVED
    if cache_spec is not None:
        _init_worker_cache(cache_spec)
    if array_specs:
        from repro.runtime.shared import register_shared_arrays

        register_shared_arrays(array_specs)
    if plan_spec is not None:
        plan = FaultPlan.parse(plan_spec)
        _WORKER_INJECTOR = None if plan is None else FaultInjector(plan)
        _WORKER_INJECTOR_RESOLVED = True


def _worker_injector() -> Optional[FaultInjector]:
    """This process's injector, lazily resolved from REPRO_FAULT_PLAN."""
    global _WORKER_INJECTOR, _WORKER_INJECTOR_RESOLVED
    if not _WORKER_INJECTOR_RESOLVED:
        plan = FaultPlan.from_env()
        _WORKER_INJECTOR = None if plan is None else FaultInjector(plan)
        _WORKER_INJECTOR_RESOLVED = True
    return _WORKER_INJECTOR


def _call_with_worker_cache(fn: Callable[..., Any], key: Hashable, task: Tuple):
    """Run one task inside a worker, consulting the shared cache first."""
    cache = _WORKER_CACHE
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return (TASK_SHARED, cached)
    value = fn(*task)
    if cache is None:
        if key is not None and _WORKER_CACHE_FAILED:
            return (TASK_UNCACHED, value)
        return (TASK_COMPUTED, value)
    cache.put(key, value)
    return (TASK_STORED, value)


def _run_task(
    fn: Callable[..., Any], key: Optional[Hashable], task: Tuple, ordinal: int
):
    """Worker-side task wrapper: fault injection + shared-cache protocol.

    ``ordinal`` is the task's dispatch ordinal (stable across retries and
    pool rebuilds), which is what a :class:`~repro.runtime.faults.FaultPlan`
    schedules against.  A claimed ``corrupt`` fault skips the cache read,
    appends a bad-CRC frame for the key, and reports ``stored`` so the
    parent does not paper over the damage with a good frame.
    """
    injector = _worker_injector()
    corrupt = injector.fire(ordinal) if injector is not None else False
    if corrupt and key is not None:
        cache = _WORKER_CACHE
        value = fn(*task)
        if cache is not None:
            write_corrupt_frame(cache.cache_dir, key)
            return (TASK_STORED, value)
        return (TASK_COMPUTED, value)
    if key is None:
        return (TASK_COMPUTED, fn(*task))
    return _call_with_worker_cache(fn, key, task)


class ExperimentRunner:
    """Fans independent experiment tasks out over a process pool.

    Args:
        parallel: enable process-pool fan-out.  ``None`` defers to the
            ``REPRO_PARALLEL`` environment variable (default: serial).
        max_workers: pool size; ``None`` uses ``REPRO_WORKERS`` or the CPU
            count.
        result_cache: an object with ``get(key)``/``put(key, value)``
            (e.g. :class:`repro.runtime.cache.ResultCache`) consulted per
            task when the caller supplies cache keys; ``None`` disables
            caching.
        progress: optional callable invoked with a status string per task.
        failure_policy: retry/timeout/quarantine behaviour for the
            parallel path (default :class:`FailurePolicy`, which matches
            the historical semantics except that a broken pool now
            re-dispatches unfinished work instead of rerunning everything
            serially).
        fault_plan: deterministic fault-injection schedule; ``None``
            defers to the ``REPRO_FAULT_PLAN`` environment variable
            (normally unset — injection is for tests and chaos drills).
        start_method: multiprocessing start method for the pool
            (``"fork"``/``"spawn"``/``"forkserver"``); ``None`` uses the
            platform default.
    """

    def __init__(
        self,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
        result_cache: Optional[Any] = None,
        progress: Optional[Callable[[str], None]] = None,
        failure_policy: Optional[FailurePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        start_method: Optional[str] = None,
    ):
        self._parallel = parallel_enabled_by_env() if parallel is None else bool(parallel)
        self._max_workers = (
            default_worker_count() if max_workers is None else int(max_workers)
        )
        if self._max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._result_cache = result_cache
        self._progress = progress
        self._failure_policy = (
            FailurePolicy() if failure_policy is None else failure_policy
        )
        self._fault_plan = FaultPlan.from_env() if fault_plan is None else fault_plan
        self._start_method = start_method
        self._fault_stats = FaultStats()
        self._serial_injector_instance: Optional[FaultInjector] = None
        self._warned_uncached = False
        # Dispatch ordinals are assigned per dispatched task across the
        # runner's lifetime (cache hits resolved by the parent are never
        # dispatched) and stay stable across retries/pool rebuilds — they
        # are the coordinate system fault plans schedule against.
        self._dispatched = 0
        # The worker pool is created lazily on the first parallel map() and
        # reused by later calls, so multi-stage drivers pay the process
        # spawn / interpreter import cost once per runner, not per stage —
        # and each worker's cache handle (warm LRU, open segment index)
        # stays hot across stages too.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shared_arrays = None

    # -- introspection ------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when this runner attempts process-pool execution."""
        return self._parallel

    @property
    def max_workers(self) -> int:
        """Upper bound on concurrent worker processes."""
        return self._max_workers

    @property
    def result_cache(self) -> Optional[Any]:
        """The attached result cache, if any."""
        return self._result_cache

    @property
    def failure_policy(self) -> FailurePolicy:
        """The failure policy applied to parallel execution."""
        return self._failure_policy

    @property
    def fault_stats(self) -> FaultStats:
        """Failure events absorbed so far (accumulates across ``map``)."""
        return self._fault_stats

    @property
    def pool_alive(self) -> bool:
        """True while a worker pool is up (persisting across ``map`` calls)."""
        return self._pool is not None

    @property
    def pool_broken(self) -> bool:
        """True when the current pool has lost a worker and cannot execute."""
        return self._pool is not None and bool(getattr(self._pool, "_broken", False))

    # -- shared read-only arrays --------------------------------------------

    def share_arrays(self, arrays) -> None:
        """Publish hot read-only arrays to the pool via shared memory.

        Task functions then fetch them with
        :func:`repro.runtime.shared.get_shared_array` instead of receiving
        the data as a per-task (re-pickled) argument.  Works in serial
        fallbacks too — the parent's registry serves its own copies.  An
        already-running pool is discarded so the next ``map`` starts
        workers that see the arrays.
        """
        from repro.runtime.shared import share_arrays

        if self._shared_arrays is not None:
            self._shared_arrays.close()
        self._discard_pool(wait=True)
        self._shared_arrays = share_arrays(arrays)

    # -- lifecycle ----------------------------------------------------------

    def ensure_pool(self) -> bool:
        """Start (or replace a broken) worker pool ahead of need.

        Returns True when a live pool is up afterwards; False for serial
        runners or when pool creation is impossible in this environment.
        """
        if not self._parallel:
            return False
        if self.pool_broken:
            self._kill_pool()
        if self._pool is None:
            try:
                self._pool = self._create_pool()
            except (OSError, PermissionError, ImportError):
                return False
        return True

    def restart_pool(self) -> bool:
        """Tear down any current pool and start a fresh one.

        Returns True when a live pool is up afterwards (False for serial
        runners).  This is the self-healing hook the server's job loop
        uses when it finds the pool dead between requests.
        """
        self._kill_pool()
        return self.ensure_pool()

    def close(self) -> None:
        """Shut the worker pool down and release any shared-memory arrays
        (idempotent; the runner stays usable — the next parallel ``map``
        simply starts a fresh pool)."""
        self._discard_pool(wait=True)
        if self._shared_arrays is not None:
            self._shared_arrays.close()
            self._shared_arrays = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self._discard_pool(wait=False)
        except Exception:
            pass

    def _discard_pool(self, wait: bool) -> None:
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            if wait and getattr(pool, "_broken", False):
                # Waiting on a broken pool can deadlock on dead workers.
                wait = False
            pool.shutdown(wait=wait, cancel_futures=True)

    def _kill_pool(self) -> None:
        """Tear the pool down without waiting, terminating stuck workers.

        ``shutdown(wait=False)`` alone leaves a *hung* worker running (and
        holding its pipe) forever; terminating the processes afterwards is
        what actually reclaims the workers after a timeout or crash.
        """
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-reaped process
                pass

    # -- execution ----------------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple],
        keys: Optional[Sequence[Hashable]] = None,
        labels: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task, returning results in order.

        Args:
            fn: a module-level callable (it must be picklable for the
                parallel path) whose result depends only on its arguments.
            tasks: argument tuples, one per task.
            keys: optional cache keys aligned with ``tasks``; tasks whose
                key hits the attached result cache are not dispatched.
            labels: optional status strings aligned with ``tasks``,
                forwarded to the progress callback.
            progress: per-call progress callback overriding the runner's.

        Returns:
            One result per task, in task order, mixing cached and computed
            values transparently.  A task quarantined/skipped under the
            failure policy yields ``None`` (and an entry in
            :attr:`fault_stats`).
        """
        tasks = list(tasks)
        progress = progress if progress is not None else self._progress
        if keys is not None and len(keys) != len(tasks):
            raise ValueError("keys must align one-to-one with tasks")
        if labels is not None and len(labels) != len(tasks):
            raise ValueError("labels must align one-to-one with tasks")

        cache = self._result_cache
        share = self._shares_cache_with_workers(keys, len(tasks))
        results: List[Any] = [None] * len(tasks)
        pending: List[int] = []
        for index in range(len(tasks)):
            cached = None
            if cache is not None and keys is not None:
                # When workers will consult the shared disk tier themselves,
                # the parent probes only its memory LRU: the per-record
                # decompression then fans out across the pool instead of
                # running serially here.
                cached = cache.peek_memory(keys[index]) if share else cache.get(keys[index])
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if pending:
            pending_labels = None if labels is None else [labels[i] for i in pending]
            pending_keys = [keys[i] for i in pending] if share else None
            base = self._dispatched
            self._dispatched += len(pending)
            ordinals = list(range(base, base + len(pending)))
            outcomes = self._execute(
                [tasks[i] for i in pending],
                fn,
                pending_labels,
                progress,
                pending_keys,
                ordinals,
            )
            for index, (outcome, value) in zip(pending, outcomes):
                if outcome == TASK_FAILED:
                    results[index] = None
                    continue
                results[index] = value
                if cache is not None and keys is not None:
                    if outcome == TASK_SHARED:
                        cache.note_worker_hit(keys[index], value)
                    elif outcome == TASK_STORED:
                        cache.put_local(keys[index], value)
                    elif outcome == TASK_UNCACHED:
                        self._note_uncached_worker()
                        cache.put(keys[index], value)
                    elif outcome == TASK_COMPUTED:
                        cache.put(keys[index], value)
                    # TASK_CACHED: the parent cache served (and counted) it
                    # during serial execution; nothing left to record.
                elif outcome == TASK_UNCACHED:  # pragma: no cover - defensive
                    self._note_uncached_worker()
        return results

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _announce(
        progress: Optional[Callable[[str], None]],
        labels: Optional[Sequence[str]],
        position: int,
    ) -> None:
        if progress is not None and labels is not None:
            progress(labels[position])

    def _note_uncached_worker(self) -> None:
        """Count (and warn once about) a worker running without its cache."""
        self._fault_stats.uncached_tasks += 1
        if not self._warned_uncached:
            self._warned_uncached = True
            warnings.warn(
                "a pool worker failed to open the shared result cache; "
                "its results are being persisted by the parent instead "
                "(cache coverage is degraded, not lost)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _task_label(
        self, labels: Optional[Sequence[str]], position: int, ordinal: int
    ) -> str:
        if labels is not None:
            return labels[position]
        return f"task {ordinal}"

    def _serial_injector(self) -> Optional[FaultInjector]:
        """The parent-process injector used by serial execution paths."""
        if self._fault_plan is None:
            return None
        if self._serial_injector_instance is None:
            self._serial_injector_instance = FaultInjector(self._fault_plan)
        return self._serial_injector_instance

    def _backoff_delay(self, attempt: int, ordinal: int) -> float:
        """Retry delay: exponential in ``attempt`` with deterministic jitter."""
        policy = self._failure_policy
        base = policy.backoff_base * (2 ** max(0, attempt - 1))
        token = hashlib.sha256(f"retry-jitter|{ordinal}|{attempt}".encode()).digest()
        jitter = 0.5 + int.from_bytes(token[:4], "big") / 2**32
        return min(policy.backoff_max, base * jitter)

    def _shares_cache_with_workers(
        self, keys: Optional[Sequence[Hashable]], task_count: int
    ) -> bool:
        """True when dispatched tasks should consult the disk cache in-worker.

        Requires a disk-backed cache (anything exposing ``worker_spec``)
        and a ``map`` call that will actually fan out.
        """
        if keys is None or getattr(self._result_cache, "worker_spec", None) is None:
            return False
        return (
            self._parallel
            and task_count > 1
            and min(self._max_workers, task_count) > 1
        )

    def _build_pool(self, max_workers: int) -> ProcessPoolExecutor:
        """Build a pool wiring up the cache dir, shared arrays and fault plan."""
        spec = getattr(self._result_cache, "worker_spec", None)
        cache_spec = None if spec is None else spec()
        array_specs = (
            None if self._shared_arrays is None else self._shared_arrays.specs
        )
        plan_spec = None if self._fault_plan is None else self._fault_plan.spec
        kwargs: Dict[str, Any] = {"max_workers": max_workers}
        if self._start_method is not None:
            kwargs["mp_context"] = multiprocessing.get_context(self._start_method)
        if cache_spec is None and array_specs is None and plan_spec is None:
            return ProcessPoolExecutor(**kwargs)
        return ProcessPoolExecutor(
            initializer=_init_worker,
            initargs=(cache_spec, array_specs, plan_spec),
            **kwargs,
        )

    def _create_pool(self) -> ProcessPoolExecutor:
        """Build the runner's shared worker pool."""
        return self._build_pool(self._max_workers)

    def _execute(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        progress: Optional[Callable[[str], None]],
        keys: Optional[Sequence[Hashable]] = None,
        ordinals: Optional[Sequence[int]] = None,
    ) -> List[Tuple[str, Any]]:
        """Run the pending tasks, returning ``(outcome, value)`` pairs.

        ``keys`` is only passed when the parent skipped its own disk probe
        in favour of worker-side lookups; the serial twin then probes the
        parent cache's disk tier itself so a pool failure never recomputes
        a record that is already on disk.
        """
        if ordinals is None:
            ordinals = list(range(len(tasks)))
        workers = min(self._max_workers, len(tasks))
        if not self._parallel or workers <= 1 or len(tasks) <= 1:
            return self._execute_serial(tasks, fn, labels, progress, keys, ordinals)
        return self._execute_parallel(tasks, fn, labels, progress, keys, ordinals)

    def _execute_parallel(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        progress: Optional[Callable[[str], None]],
        keys: Optional[Sequence[Hashable]],
        ordinals: Sequence[int],
    ) -> List[Tuple[str, Any]]:
        """Dispatch rounds with crash/hang/retry recovery.

        Each round submits every still-unfinished task to the (possibly
        rebuilt) pool and collects in submission order.  Results already
        collected are never recomputed: a ``BrokenProcessPool`` or a hang
        only costs the in-flight work.  Only pool-*creation* failures (no
        fork/semaphores in restricted sandboxes) complete serially, and
        then only for the unfinished remainder.
        """
        policy = self._failure_policy
        total = len(tasks)
        outcomes: List[Optional[Tuple[str, Any]]] = [None] * total
        attempts = [0] * total
        rebuilds = 0
        retry_delay = 0.0
        while True:
            unfinished = [p for p in range(total) if outcomes[p] is None]
            if not unfinished:
                return outcomes  # type: ignore[return-value]
            if retry_delay > 0.0:
                time.sleep(retry_delay)
                retry_delay = 0.0
            if self.pool_broken:
                self._kill_pool()
            try:
                if self._pool is None:
                    self._pool = self._create_pool()
                pool = self._pool
            except (OSError, PermissionError, ImportError) as error:
                return self._serial_completion(
                    tasks, fn, labels, progress, keys, ordinals, outcomes, error
                )
            futures: Dict[int, Any] = {}
            crashed = False
            try:
                for position in unfinished:
                    self._announce(progress, labels, position)
                    key = None if keys is None else keys[position]
                    futures[position] = pool.submit(
                        _run_task, fn, key, tasks[position], ordinals[position]
                    )
            except BrokenProcessPool:
                crashed = True
            except (OSError, PermissionError, ImportError) as error:
                self._kill_pool()
                self._harvest(futures, outcomes)
                return self._serial_completion(
                    tasks, fn, labels, progress, keys, ordinals, outcomes, error
                )
            hung: Optional[int] = None
            failure: Optional[BaseException] = None
            if not crashed:
                for position in unfinished:
                    future = futures.get(position)
                    if future is None:  # pragma: no cover - defensive
                        continue
                    error: Optional[BaseException] = None
                    try:
                        outcomes[position] = future.result(timeout=policy.task_timeout)
                        continue
                    except BrokenProcessPool:
                        crashed = True
                        break
                    except FuturesTimeout:
                        # Python 3.11 aliases concurrent.futures.TimeoutError
                        # to the builtin: only an *unfinished* future means
                        # the wait timed out (a hang); a finished one means
                        # the task itself raised a TimeoutError.
                        if not future.done():
                            hung = position
                            break
                        error = future.exception()
                    except (KeyboardInterrupt, SystemExit):
                        for live in futures.values():
                            live.cancel()
                        raise
                    except BaseException as task_error:
                        error = task_error
                    if error is None:
                        # Completed between the timeout and the done()
                        # check; _harvest collects it below.
                        continue
                    # The task itself raised: retry if budget remains,
                    # otherwise this is the map's failure.
                    if attempts[position] < policy.max_retries:
                        attempts[position] += 1
                        self._fault_stats.retries += 1
                        retry_delay = max(
                            retry_delay,
                            self._backoff_delay(attempts[position], ordinals[position]),
                        )
                    else:
                        failure = error
                        break
            self._harvest(futures, outcomes)
            if failure is not None:
                for live in futures.values():
                    live.cancel()
                raise failure
            if hung is not None:
                self._fault_stats.timeouts += 1
                self._kill_pool()
                if attempts[hung] < policy.max_retries:
                    attempts[hung] += 1
                    self._fault_stats.retries += 1
                    retry_delay = max(
                        retry_delay,
                        self._backoff_delay(attempts[hung], ordinals[hung]),
                    )
                else:
                    self._settle_poison(
                        hung,
                        tasks,
                        fn,
                        labels,
                        keys,
                        ordinals,
                        outcomes,
                        f"hung past the {policy.task_timeout}s task timeout",
                    )
                continue
            if crashed:
                self._fault_stats.pool_rebuilds += 1
                rebuilds += 1
                self._kill_pool()
                if rebuilds > policy.max_pool_rebuilds:
                    # Blind re-dispatch has not converged: attribute the
                    # poison task(s) by probing each survivor in isolation.
                    self._attribute_poison(
                        tasks, fn, labels, keys, ordinals, outcomes
                    )

    def _harvest(
        self,
        futures: Dict[int, Any],
        outcomes: List[Optional[Tuple[str, Any]]],
    ) -> None:
        """Fold successfully finished futures into ``outcomes``.

        After a crash or hang-kill, work that *did* complete in other
        workers is kept — that is what makes recovery cost only the
        in-flight tasks instead of the whole map.
        """
        for position, future in futures.items():
            if outcomes[position] is not None:
                continue
            if future.done() and not future.cancelled() and future.exception() is None:
                outcomes[position] = future.result()

    def _settle_poison(
        self,
        position: int,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        keys: Optional[Sequence[Hashable]],
        ordinals: Sequence[int],
        outcomes: List[Optional[Tuple[str, Any]]],
        reason: str,
    ) -> None:
        """Apply ``on_poison`` to one attributed poison task."""
        policy = self._failure_policy
        label = self._task_label(labels, position, ordinals[position])
        if policy.on_poison == "raise":
            raise PoisonTaskError(label, reason)
        if policy.on_poison == "quarantine":
            key = None if keys is None else keys[position]
            status, outcome = self._probe_isolated(
                fn, tasks[position], key, ordinals[position]
            )
            if status == "ok":
                outcomes[position] = outcome
                return
            reason = f"{reason}; isolated probe {status}"
        outcomes[position] = (TASK_FAILED, None)
        self._fault_stats.quarantined.append(f"{label} ({reason})")

    def _attribute_poison(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        keys: Optional[Sequence[Hashable]],
        ordinals: Sequence[int],
        outcomes: List[Optional[Tuple[str, Any]]],
    ) -> None:
        """Probe every unfinished task in isolation after repeated crashes.

        Tasks that survive their probe keep their result; tasks that
        crash or hang it are the attributed poison and get the
        ``on_poison`` treatment.
        """
        policy = self._failure_policy
        for position in range(len(tasks)):
            if outcomes[position] is not None:
                continue
            label = self._task_label(labels, position, ordinals[position])
            if policy.on_poison == "skip":
                outcomes[position] = (TASK_FAILED, None)
                self._fault_stats.quarantined.append(
                    f"{label} (skipped after repeated pool crashes)"
                )
                continue
            key = None if keys is None else keys[position]
            status, outcome = self._probe_isolated(
                fn, tasks[position], key, ordinals[position]
            )
            if status == "ok":
                outcomes[position] = outcome
                continue
            if policy.on_poison == "raise":
                raise PoisonTaskError(
                    label, f"{status} in an isolated single-worker probe"
                )
            outcomes[position] = (TASK_FAILED, None)
            self._fault_stats.quarantined.append(
                f"{label} ({status} in an isolated single-worker probe)"
            )

    def _probe_isolated(
        self,
        fn: Callable[..., Any],
        task: Tuple,
        key: Optional[Hashable],
        ordinal: int,
    ) -> Tuple[str, Optional[Tuple[str, Any]]]:
        """Run one suspect task in a fresh single-worker pool.

        Returns ``("ok", outcome)``, ``("crashed", None)`` or
        ``("hung", None)``; an exception raised by the task itself
        propagates unchanged.  The probe pool is torn down afterwards so
        a hung probe cannot leak a worker.
        """
        policy = self._failure_policy
        try:
            probe = self._build_pool(max_workers=1)
        except (OSError, PermissionError, ImportError):
            # No subprocess available: probe in-process (a crash fault
            # here would take the parent down, but environments without
            # subprocesses cannot crash workers either).
            try:
                return ("ok", _run_task(fn, key, task, ordinal))
            except BrokenProcessPool:  # pragma: no cover - defensive
                return ("crashed", None)
        try:
            future = probe.submit(_run_task, fn, key, task, ordinal)
            try:
                return ("ok", future.result(timeout=policy.probe_timeout))
            except BrokenProcessPool:
                return ("crashed", None)
            except FuturesTimeout:
                if future.done():
                    error = future.exception()
                    if error is not None:
                        raise error
                    return ("ok", future.result())  # pragma: no cover
                return ("hung", None)
        finally:
            processes = list((getattr(probe, "_processes", None) or {}).values())
            probe.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already reaped
                    pass

    def _serial_completion(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        progress: Optional[Callable[[str], None]],
        keys: Optional[Sequence[Hashable]],
        ordinals: Sequence[int],
        outcomes: List[Optional[Tuple[str, Any]]],
        error: BaseException,
    ) -> List[Tuple[str, Any]]:
        """Finish the unfinished tasks serially (pool unavailable)."""
        warnings.warn(
            f"process pool unavailable ({error}); completing serially",
            RuntimeWarning,
            stacklevel=4,
        )
        unfinished = [p for p in range(len(tasks)) if outcomes[p] is None]
        serial = self._execute_serial(
            [tasks[p] for p in unfinished],
            fn,
            None if labels is None else [labels[p] for p in unfinished],
            progress,
            None if keys is None else [keys[p] for p in unfinished],
            [ordinals[p] for p in unfinished],
        )
        for position, outcome in zip(unfinished, serial):
            outcomes[position] = outcome
        return outcomes  # type: ignore[return-value]

    def _execute_serial(
        self,
        tasks: Sequence[Tuple],
        fn: Callable[..., Any],
        labels: Optional[Sequence[str]],
        progress: Optional[Callable[[str], None]],
        keys: Optional[Sequence[Hashable]] = None,
        ordinals: Optional[Sequence[int]] = None,
    ) -> List[Tuple[str, Any]]:
        """The serial twin.  Fault injection fires in-process here (a
        ``crash`` fault exits *this* process — exactly what a durable
        checkpoint must survive); the failure policy's retry/quarantine
        machinery applies only to the parallel path."""
        injector = self._serial_injector()
        results: List[Tuple[str, Any]] = []
        for position, task in enumerate(tasks):
            self._announce(progress, labels, position)
            corrupt = False
            if injector is not None and ordinals is not None:
                corrupt = injector.fire(ordinals[position])
            if keys is not None and not corrupt:
                # The parent only peeked its memory tier before dispatch;
                # finish the lookup against the disk tier here (counter
                # semantics identical to a full fall-through get()).
                cached = self._result_cache.probe_disk(keys[position])
                if cached is not None:
                    results.append((TASK_CACHED, cached))
                    continue
            value = fn(*task)
            if corrupt and keys is not None:
                cache_dir = getattr(self._result_cache, "cache_dir", None)
                if cache_dir is not None:
                    write_corrupt_frame(cache_dir, keys[position])
                    results.append((TASK_STORED, value))
                    continue
            results.append((TASK_COMPUTED, value))
        return results


def serial_runner(
    result_cache: Optional[Any] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ExperimentRunner:
    """An explicitly serial runner (optionally caching), for fallbacks."""
    return ExperimentRunner(
        parallel=False, max_workers=1, result_cache=result_cache, progress=progress
    )
