"""Zero-copy sharing of hot read-only arrays with pool workers.

Tasks dispatched over a process pool pickle their arguments per call, so
a large read-only array referenced by every task — a distance matrix, a
fidelity table — is re-serialized thousands of times per sweep.  This
module provides the one-shot alternative: the parent publishes named
arrays once (:func:`share_arrays`), the pool initializer registers the
resulting *specs* in each worker (:func:`register_shared_arrays`), and
task functions fetch attached views by name (:func:`get_shared_array`)
instead of receiving the data as an argument.

The transport is :mod:`multiprocessing.shared_memory` when available —
one copy total, attached read-only by every worker — with a transparent
fallback that embeds the array bytes in the spec (one pickled copy per
*worker*, still amortized over all of that worker's tasks).  Callers
never need to know which transport was used.

Lifecycle: the parent owns the memory.  :class:`SharedArrayBundle.close`
(called by :meth:`repro.runtime.runner.ExperimentRunner.close`) unlinks
the blocks; workers only ever attach and detach.  Shared views are
read-only by construction — a worker mutating its view would corrupt
every sibling, so ``writeable`` is simply never granted.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import availability is platform-dependent
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable recipe a worker needs to reconstruct one shared array.

    Exactly one of ``block`` (a shared-memory block name) and ``payload``
    (pickled array bytes, the degraded transport) is set.
    """

    name: str  #: caller-chosen array name
    shape: Tuple[int, ...]  #: array shape
    dtype: str  #: numpy dtype string
    block: Optional[str] = None  #: shared-memory block name
    payload: Optional[bytes] = None  #: pickled bytes fallback


class SharedArrayBundle:
    """Parent-side handle over a set of published arrays.

    Owns the shared-memory blocks: :meth:`close` unlinks them, after which
    newly attaching workers fail (and existing attachments keep their
    mapping alive until they detach — ordinary POSIX shm semantics).
    """

    def __init__(self, specs: List[SharedArraySpec], blocks: List[object]):
        self._specs = specs
        self._blocks = blocks

    @property
    def specs(self) -> List[SharedArraySpec]:
        """The picklable specs to hand to the pool initializer."""
        return self._specs

    def close(self) -> None:
        """Release (close + unlink) the parent-owned blocks; idempotent."""
        for block in self._blocks:
            try:
                block.close()
                # The create-time registration was already withdrawn (manual
                # ownership), so re-register just before unlink to keep the
                # tracker's unregister-on-unlink balanced.
                _register_with_resource_tracker(block)
                block.unlink()
            except Exception:
                pass
        self._blocks = []

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


#: Per-process registry: name -> (spec, attached array or None).
_REGISTRY: Dict[str, List] = {}

#: Shared-memory attachments held open by this process (a view into an
#: shm block is only valid while the mapping object is alive).
_ATTACHMENTS: List[object] = []


def share_arrays(arrays: Mapping[str, np.ndarray]) -> SharedArrayBundle:
    """Publish named read-only arrays for pool workers to attach.

    Tries one shared-memory block per array; any failure (no ``/dev/shm``,
    exhausted shm quota, missing module) degrades that array to the
    pickled-bytes transport.  The parent's own registry is populated too,
    so :func:`get_shared_array` works identically in serial fallbacks.
    """
    specs: List[SharedArraySpec] = []
    blocks: List[object] = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        spec = None
        if _shm is not None:
            try:
                block = _shm.SharedMemory(create=True, size=max(1, array.nbytes))
                # Ownership is manual (the bundle unlinks in close()); taking
                # the block out of the resource tracker immediately keeps the
                # tracker bookkeeping balanced whichever start method the
                # worker processes use.
                _unregister_from_resource_tracker(block)
                block.buf[: array.nbytes] = array.tobytes()
                blocks.append(block)
                spec = SharedArraySpec(
                    name=name,
                    shape=array.shape,
                    dtype=str(array.dtype),
                    block=block.name,
                )
            except Exception:
                spec = None
        if spec is None:
            spec = SharedArraySpec(
                name=name,
                shape=array.shape,
                dtype=str(array.dtype),
                payload=pickle.dumps(array, protocol=pickle.HIGHEST_PROTOCOL),
            )
        specs.append(spec)
        view = array.view()
        view.flags.writeable = False
        _REGISTRY[name] = [spec, view]  # the parent serves its own copy
    return SharedArrayBundle(specs, blocks)


def register_shared_arrays(specs: List[SharedArraySpec]) -> None:
    """Record specs in this process's registry (the pool-initializer hook).

    Attachment is lazy — a worker that never touches an array never maps
    its block.
    """
    for spec in specs:
        _REGISTRY[spec.name] = [spec, None]


def get_shared_array(name: str) -> np.ndarray:
    """The read-only view of a published array, attaching on first use.

    Raises ``KeyError`` for names never published to this process, and
    falls back to the pickled payload if the shared block disappeared
    (closed early or unlinked by a dying parent) — unless the spec carried
    no payload, in which case the underlying ``FileNotFoundError``
    propagates.
    """
    entry = _REGISTRY[name]
    spec, view = entry
    if view is not None:
        return view
    if spec.block is not None:
        try:
            block = _shm.SharedMemory(name=spec.block)
            _unregister_from_resource_tracker(block)
            _ATTACHMENTS.append(block)  # keep the mapping alive
            view = np.frombuffer(block.buf, dtype=np.dtype(spec.dtype))[
                : int(np.prod(spec.shape, dtype=np.int64))
            ].reshape(spec.shape)
            view.flags.writeable = False
        except FileNotFoundError:
            if spec.payload is None:
                raise
            view = None
    if view is None:
        view = pickle.loads(spec.payload)
        view.flags.writeable = False
    entry[1] = view
    return view


def shared_array_names() -> List[str]:
    """Names currently published to this process, in registration order."""
    return list(_REGISTRY)


def _register_with_resource_tracker(block) -> None:
    """Hand a manually-owned block back to the tracker just before unlink.

    ``SharedMemory.unlink`` unregisters unconditionally; re-registering
    first keeps the tracker's bookkeeping balanced (no KeyError noise in
    the tracker process at interpreter shutdown).
    """
    try:  # pragma: no cover - interpreter-version dependent
        from multiprocessing import resource_tracker

        resource_tracker.register(block._name, "shared_memory")
    except Exception:  # pragma: no cover
        pass


def _unregister_from_resource_tracker(block) -> None:
    """Stop the resource tracker from double-managing an attached block.

    Attaching registers the block with this process's resource tracker
    (CPython < 3.13), which then complains about — or worse, unlinks — a
    block the *parent* owns when the worker exits.  Ownership lives with
    the parent alone, so attachments are unregistered.
    """
    try:  # pragma: no cover - interpreter-version dependent
        from multiprocessing import resource_tracker

        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:  # pragma: no cover
        pass
