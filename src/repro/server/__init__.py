"""Compilation-as-a-service: the persistent ``repro serve`` process.

This package turns the one-shot CLI into a resident service.  A single
warm :class:`~repro.runtime.runner.ExperimentRunner` (process pool) and a
resident result cache — the shared
:class:`~repro.runtime.disk_cache.PersistentResultCache` when a cache
directory is configured — serve every request over a small JSON-over-HTTP
API built on stdlib :mod:`asyncio` (no extra runtime dependencies):

* ``POST /v1/transpile`` — single point or batch, the same knobs as
  ``repro run``;
* ``POST /v1/sweep`` — a workload × size × target grid with streamed
  newline-delimited JSON progress;
* ``GET /v1/health`` / ``GET /v1/metrics`` — liveness and counters
  (uptime, per-endpoint requests, cumulative cache statistics);
* ``POST /v1/shutdown`` — graceful drain.

``docs/architecture.md`` explains when to reach for the server instead
of the one-shot CLI; ``docs/api.md`` is the endpoint reference.

Usage::

    repro serve --port 8537 --workers 4 --cache-dir ~/.cache/repro

    from repro.server import ServeClient
    client = ServeClient(port=8537)
    client.transpile({"workload": "QuantumVolume", "size": 12,
                      "topology": "corral-1-1", "basis": "sqiswap"})
"""

from repro.server.app import (
    DEFAULT_PORT,
    DEFAULT_QUEUE_SIZE,
    TOKEN_ENV,
    ReproServer,
    ServerHandle,
    run_server,
)
from repro.server.client import ServeClient, ServeError
from repro.server.jobs import PointSpec, RequestError

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_SIZE",
    "TOKEN_ENV",
    "ReproServer",
    "ServerHandle",
    "run_server",
    "ServeClient",
    "ServeError",
    "PointSpec",
    "RequestError",
]
