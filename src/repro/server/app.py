"""Persistent asyncio compilation server (``repro serve``).

Every one-shot CLI invocation pays interpreter startup, module imports,
worker-pool spawn and memory-LRU warmup before the fast hot paths run.
This server pays those costs once: a resident
:class:`~repro.runtime.runner.ExperimentRunner` (warm process pool) and a
resident result cache (shared :class:`~repro.runtime.disk_cache.
PersistentResultCache` when ``--cache-dir`` is given) serve every request
of the process lifetime.  See ``docs/architecture.md`` for the one-shot
vs. server comparison and ``docs/api.md`` for the HTTP API reference.

Design notes:

* **Transport** — JSON over HTTP/1.1 on stdlib ``asyncio`` streams; no
  third-party web framework, no new runtime dependencies.  Connections
  are one-request (``Connection: close``); ``/v1/sweep`` responses stream
  newline-delimited JSON progress lines via chunked transfer encoding.
* **Concurrency** — client handlers are cheap asyncio tasks; compilation
  work is wrapped into jobs on a *bounded FIFO queue* drained by a single
  dispatcher, which runs each job in a thread off the event loop.  Jobs
  therefore serialize onto the shared runner pool in arrival order (no
  starvation, no interleaved pool access); a full queue answers 503
  immediately instead of stalling clients.
* **Auth** — optional shared bearer token (``REPRO_SERVE_TOKEN`` or the
  ``token=`` argument); when set, every ``/v1/*`` endpoint except
  ``/v1/health`` requires ``Authorization: Bearer <token>``.
* **Shutdown** — SIGINT/SIGTERM (or ``POST /v1/shutdown``) drain:
  accepting stops, queued and in-flight jobs finish, their responses are
  delivered, then the pool and cache close.
* **Resilience** — a dead or broken worker pool never takes the server
  down: the dispatcher restarts it before the next job, ``/v1/health``
  reports ``degraded`` (with a ``pool`` sub-object) until it is healed,
  503 responses carry ``Retry-After``, and requests may set
  ``deadline_s`` to receive 504 instead of waiting indefinitely.  See
  ``docs/robustness.md``.
"""

from __future__ import annotations

import asyncio
import functools
import hmac
import json
import os
import signal
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.runtime.disk_cache import PersistentResultCache, resolve_result_cache
from repro.runtime.runner import ExperimentRunner
from repro.server import jobs

#: Default TCP port (chosen once, documented in docs/api.md).
DEFAULT_PORT = 8537

#: Default bound on queued-but-not-yet-running jobs per server.
DEFAULT_QUEUE_SIZE = 64

#: Environment variable holding the shared bearer token.
TOKEN_ENV = "REPRO_SERVE_TOKEN"

#: Hard cap on request body size (a transpile/sweep spec is tiny).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Per-connection read timeout: a client that never finishes its request
#: cannot pin a handler task forever.
READ_TIMEOUT_SECONDS = 30.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Sentinel closing a streaming response's line queue.
_STREAM_DONE = object()


def _json_default(value: Any):
    """Serialize numpy scalars (and anything str-able) in response bodies."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def _encode_json(payload: Any) -> bytes:
    """One compact JSON line (newline-terminated) as bytes."""
    return (json.dumps(payload, default=_json_default) + "\n").encode("utf-8")


def _error_headers(error: "jobs.RequestError") -> Optional[Dict[str, str]]:
    """Extra response headers for an error (``Retry-After`` when advised)."""
    retry_after = getattr(error, "retry_after", None)
    if retry_after is None:
        return None
    return {"Retry-After": f"{max(1, round(retry_after))}"}


def _warm_task(index: int) -> int:
    """No-op pool task (module-level so it pickles to worker processes)."""
    return index


class _Job:
    """One queued unit of compilation work plus its completion future."""

    def __init__(self, fn):
        self._fn = fn
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()

    async def run(self, loop: asyncio.AbstractEventLoop) -> None:
        """Execute the work in a thread; resolve the waiting handler."""
        try:
            value = await loop.run_in_executor(None, self._fn)
        except Exception as error:  # job failures answer 500, never kill the server
            if not self.future.cancelled():
                self.future.set_exception(error)
        else:
            if not self.future.cancelled():
                self.future.set_result(value)


class ReproServer:
    """The compilation server: one warm runner + cache behind an HTTP API.

    Args:
        host / port: bind address (``port=0`` picks an ephemeral port,
            readable from :attr:`port` after :meth:`start`).
        parallel: run the resident runner with a process pool (the
            default; the runner falls back to serial execution where
            pools are unavailable).
        workers: pool size (``None``: CPU count / ``REPRO_WORKERS``).
        cache_dir: directory for the shared persistent result cache
            (``None`` defers to ``REPRO_CACHE_DIR``, else a process-local
            LRU).
        no_cache: disable result caching entirely.
        queue_size: bound on queued jobs; a full queue answers 503.
        token: shared bearer token; ``None`` defers to
            ``REPRO_SERVE_TOKEN`` (empty/unset means no auth).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        parallel: bool = True,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        no_cache: bool = False,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        token: Optional[str] = None,
    ):
        self._host = host
        self._requested_port = int(port)
        self._queue_size = max(1, int(queue_size))
        self._token = token if token is not None else os.environ.get(TOKEN_ENV) or None
        self._cache = resolve_result_cache(cache_dir=cache_dir, no_cache=no_cache)
        self._runner = ExperimentRunner(
            parallel=parallel, max_workers=workers, result_cache=self._cache
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._handlers: set = set()
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._started_monotonic = 0.0
        self._started_wall = 0.0
        self._requests: Dict[str, int] = {}
        self._responses: Dict[int, int] = {}
        self._jobs_completed = 0
        self._jobs_failed = 0
        self._jobs_expired = 0
        self._points_completed = 0
        self._pool_restarts = 0

    # -- introspection -------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after start)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    @property
    def runner(self) -> ExperimentRunner:
        """The resident experiment runner serving every request."""
        return self._runner

    @property
    def address(self) -> str:
        """``http://host:port`` of the listening socket."""
        return f"http://{self._host}:{self.port}"

    @property
    def token(self) -> Optional[str]:
        """The required bearer token (``None`` when auth is off)."""
        return self._token

    def uptime_seconds(self) -> float:
        """Seconds since :meth:`start` completed."""
        return time.monotonic() - self._started_monotonic

    # -- lifecycle -----------------------------------------------------------

    async def start(self, warmup: bool = True) -> None:
        """Bind the socket, start the dispatcher, optionally warm the pool."""
        if warmup and self._runner.parallel:
            # Spawn the worker processes (and run their interpreter imports)
            # before the socket opens, so no request ever touches the runner
            # concurrently with the warmup and the first real request doesn't
            # pay the pool cold-start.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._warm_pool)
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        self._stopped = asyncio.Event()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()

    def _warm_pool(self) -> None:
        count = max(2, self._runner.max_workers)
        self._runner.map(_warm_task, [(index,) for index in range(count)])

    async def serve_forever(self) -> None:
        """Block until a drain (signal or ``/v1/shutdown``) completes."""
        assert self._stopped is not None, "start() must run first"
        await self._stopped.wait()

    async def run(self, warmup: bool = True, banner=None) -> None:
        """Start, install signal handlers where possible, and serve."""
        await self.start(warmup=warmup)
        loop = asyncio.get_running_loop()
        for signame in ("SIGINT", "SIGTERM"):
            try:
                loop.add_signal_handler(
                    getattr(signal, signame),
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or platform without signal support: the
                # shutdown endpoint / direct shutdown() still work.
                pass
        if banner is not None:
            banner(self)
        await self.serve_forever()

    async def shutdown(self) -> None:
        """Drain gracefully: finish queued/in-flight work, then close."""
        if self._draining:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._queue is not None:
            await self._queue.join()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        current = asyncio.current_task()
        pending = [t for t in self._handlers if t is not current and not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=10.0)
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - straggler sockets
                pass
        self._runner.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- dispatcher ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the job queue FIFO; one job at a time owns the runner.

        Before each job the loop checks the resident pool: a pool whose
        worker died between requests (SIGKILL, OOM) is torn down and
        restarted here — off the event loop — so the job runs against a
        live pool instead of failing with ``BrokenProcessPool``.
        """
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            try:
                if self._runner.parallel and self._runner.pool_broken:
                    healed = await loop.run_in_executor(
                        None, self._runner.restart_pool
                    )
                    if healed:
                        self._pool_restarts += 1
                await job.run(loop)
            finally:
                self._queue.task_done()

    def _submit(self, fn) -> _Job:
        """Enqueue one work item, or raise ``RequestError`` 503 when full."""
        if self._draining:
            raise jobs.RequestError("server is draining", status=503)
        job = _Job(fn)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise jobs.RequestError(
                f"request queue full ({self._queue_size} pending)",
                status=503,
                retry_after=1.0,
            ) from None
        return job

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        finally:
            self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on EOF/garbage/timeout."""

        async def _readline() -> bytes:
            return await asyncio.wait_for(
                reader.readline(), timeout=READ_TIMEOUT_SECONDS
            )

        try:
            request_line = await _readline()
            if not request_line.strip():
                return None
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                return None
            method, path, _version = parts
            headers: Dict[str, str] = {}
            for _ in range(100):
                line = await _readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            else:
                return None
            length = int(headers.get("content-length", "0") or "0")
            if length < 0 or length > MAX_BODY_BYTES:
                raise jobs.RequestError("request body too large", status=413)
            body = b""
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=READ_TIMEOUT_SECONDS
                )
            return method.upper(), path, headers, body
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            return None

    def _authorized(self, headers: Dict[str, str]) -> bool:
        if self._token is None:
            return True
        supplied = headers.get("authorization", "")
        expected = f"Bearer {self._token}"
        return hmac.compare_digest(supplied.encode(), expected.encode())

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = _encode_json(payload)
        extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        self._responses[status] = self._responses.get(status, 0) + 1

    async def _write_stream_head(self, writer: asyncio.StreamWriter) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        self._responses[200] = self._responses.get(200, 0) + 1

    async def _write_stream_line(
        self, writer: asyncio.StreamWriter, payload: Any
    ) -> None:
        data = _encode_json(payload)
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    async def _finish_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- request routing -----------------------------------------------------

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
        except jobs.RequestError as error:
            await self._write_response(
                writer, error.status, {"error": str(error)}, _error_headers(error)
            )
            return
        if request is None:
            return
        method, path, headers, body = request
        self._requests[path] = self._requests.get(path, 0) + 1
        if path != "/v1/health" and not self._authorized(headers):
            await self._write_response(
                writer, 401, {"error": "missing or invalid bearer token"}
            )
            return
        try:
            if path == "/v1/health":
                await self._require_method(method, "GET")
                await self._write_response(writer, 200, self._health_payload())
            elif path == "/v1/metrics":
                await self._require_method(method, "GET")
                await self._write_response(writer, 200, self._metrics_payload())
            elif path == "/v1/transpile":
                await self._require_method(method, "POST")
                await self._handle_transpile(writer, body)
            elif path == "/v1/sweep":
                await self._require_method(method, "POST")
                await self._handle_sweep(writer, body)
            elif path == "/v1/shutdown":
                await self._require_method(method, "POST")
                await self._write_response(writer, 200, {"status": "draining"})
                asyncio.ensure_future(self.shutdown())
            else:
                await self._write_response(
                    writer, 404, {"error": f"unknown endpoint {path!r}"}
                )
        except jobs.RequestError as error:
            await self._write_response(
                writer, error.status, {"error": str(error)}, _error_headers(error)
            )
        except Exception as error:  # defensive: a bug answers 500, not a hang
            await self._write_response(
                writer, 500, {"error": f"{type(error).__name__}: {error}"}
            )

    async def _require_method(self, method: str, expected: str) -> None:
        if method != expected:
            raise jobs.RequestError(f"use {expected} for this endpoint", status=405)

    @staticmethod
    def _parse_body(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise jobs.RequestError(f"invalid JSON body: {error}") from None

    # -- endpoint payloads ---------------------------------------------------

    def _pool_payload(self) -> Optional[Dict[str, Any]]:
        """Pool liveness sub-object for health/metrics (``None`` if serial)."""
        if not self._runner.parallel:
            return None
        return {
            "alive": self._runner.pool_alive,
            "broken": self._runner.pool_broken,
            "restarts": self._pool_restarts,
        }

    def _health_payload(self) -> Dict[str, Any]:
        if self._draining:
            status = "draining"
        elif self._runner.pool_broken:
            # A worker died and the pool has not been rebuilt yet; the
            # dispatcher heals it before the next job, so the server is
            # degraded, not down.
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_capacity": self._queue_size,
            "parallel": self._runner.parallel,
            "workers": self._runner.max_workers,
            "auth": self._token is not None,
            "pool": self._pool_payload(),
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        cache = self._runner.result_cache
        cache_dir = (
            str(cache.cache_dir) if isinstance(cache, PersistentResultCache) else None
        )
        return {
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "started_at_unix": round(self._started_wall, 3),
            "requests": dict(self._requests),
            "responses": {str(code): count for code, count in self._responses.items()},
            "jobs": {
                "completed": self._jobs_completed,
                "failed": self._jobs_failed,
                "expired": self._jobs_expired,
            },
            "points_completed": self._points_completed,
            "pool": self._pool_payload(),
            "faults": self._runner.fault_stats.as_dict(),
            "queue": {
                "depth": self._queue.qsize() if self._queue is not None else 0,
                "capacity": self._queue_size,
            },
            "cache": jobs.stats_snapshot(cache),
            "cache_dir": cache_dir,
        }

    async def _handle_transpile(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        parsed = self._parse_body(body)
        deadline = jobs.pop_deadline(parsed)
        specs = jobs.parse_transpile_request(parsed)
        job = self._submit(
            functools.partial(jobs.run_transpile_job, specs, self._runner)
        )
        try:
            if deadline is None:
                payload = await job.future
            else:
                payload = await asyncio.wait_for(job.future, deadline)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; the worker thread finishes the
            # job anyway (warming the cache), but this client stops waiting.
            self._jobs_expired += 1
            raise jobs.RequestError(
                f"deadline of {deadline:g}s exceeded", status=504, retry_after=1.0
            ) from None
        except Exception as error:
            self._jobs_failed += 1
            raise jobs.RequestError(
                f"transpile failed: {type(error).__name__}: {error}", status=500
            ) from None
        self._jobs_completed += 1
        self._points_completed += payload["count"]
        await self._write_response(writer, 200, payload)

    def _checkpoint_dir(self, run_id: str):
        """The checkpoint directory of a ``run_id`` (requires a disk cache)."""
        cache = self._runner.result_cache
        if not isinstance(cache, PersistentResultCache):
            raise jobs.RequestError(
                "'run_id' requires a server started with a persistent cache "
                "directory (--cache-dir / REPRO_CACHE_DIR); checkpoints live "
                "under it"
            )
        return cache.cache_dir / "checkpoints" / run_id

    async def _handle_sweep(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        parsed = self._parse_body(body)
        deadline = jobs.pop_deadline(parsed)
        request = jobs.parse_sweep_request(parsed)
        if request.run_id is not None:
            checkpoint_dir = self._checkpoint_dir(request.run_id)
        loop = asyncio.get_running_loop()
        lines: asyncio.Queue = asyncio.Queue()

        def _emit(line: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(lines.put_nowait, line)

        def _work() -> Optional[int]:
            # Failures are reported in-band as an {"type": "error"} line and
            # swallowed (returning None), so a stream whose client already
            # disconnected never leaves an unretrieved future exception.
            try:
                if request.run_id is not None:
                    return jobs.run_sweep_checkpoint_job(
                        request, checkpoint_dir, self._runner, _emit
                    )
                return jobs.run_sweep_job(
                    request.specs, request.chunk_size, self._runner, _emit
                )
            except Exception as error:
                _emit({"type": "error", "error": f"{type(error).__name__}: {error}"})
                return None
            finally:
                loop.call_soon_threadsafe(lines.put_nowait, _STREAM_DONE)

        job = self._submit(_work)
        deadline_at = None if deadline is None else loop.time() + deadline
        await self._write_stream_head(writer)
        expired = False
        while True:
            if deadline_at is None:
                line = await lines.get()
            else:
                try:
                    line = await asyncio.wait_for(
                        lines.get(), max(0.0, deadline_at - loop.time())
                    )
                except asyncio.TimeoutError:
                    # The stream head is already on the wire, so the 504
                    # equivalent is an in-band error line; the job future
                    # is cancelled so its eventual result is discarded.
                    job.future.cancel()
                    self._jobs_expired += 1
                    expired = True
                    await self._write_stream_line(
                        writer,
                        {
                            "type": "error",
                            "status": 504,
                            "error": f"deadline of {deadline:g}s exceeded",
                        },
                    )
                    break
            if line is _STREAM_DONE:
                break
            await self._write_stream_line(writer, line)
        await self._finish_stream(writer)
        if expired:
            return
        try:
            completed = await job.future
        except asyncio.CancelledError:  # pragma: no cover - drain race
            completed = None
        if completed is None:
            self._jobs_failed += 1
        else:
            self._jobs_completed += 1
            self._points_completed += completed


# -- entry points --------------------------------------------------------------


def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    parallel: bool = True,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    queue_size: int = DEFAULT_QUEUE_SIZE,
    token: Optional[str] = None,
) -> str:
    """Run a server until drained (the blocking ``repro serve`` body).

    Returns a one-line summary for the CLI to print after shutdown.
    """
    server = ReproServer(
        host=host,
        port=port,
        parallel=parallel,
        workers=workers,
        cache_dir=cache_dir,
        no_cache=no_cache,
        queue_size=queue_size,
        token=token,
    )

    def _banner(instance: ReproServer) -> None:
        print(
            f"repro serve listening on {instance.address} "
            f"(pid {os.getpid()}, workers {instance.runner.max_workers}, "
            f"auth {'on' if instance._token is not None else 'off'})",
            file=sys.stderr,
            flush=True,
        )

    asyncio.run(server.run(banner=_banner))
    requests = sum(server._requests.values())
    return (
        f"repro serve stopped after {server.uptime_seconds():.1f}s: "
        f"{requests} requests, {server._points_completed} points compiled"
    )


class ServerHandle:
    """A server running on a background thread (tests, benchmarks, demos).

    Usage::

        with ServerHandle(port=0, parallel=False) as handle:
            client = ServeClient(port=handle.port)
            client.health()

    The context exit drains the server exactly like SIGTERM would.
    """

    def __init__(self, warmup: bool = False, **kwargs):
        self._server = ReproServer(**kwargs)
        self._warmup = warmup
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self._server.start(warmup=self._warmup)
        self._ready.set()
        await self._server.serve_forever()

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        """Launch the thread and wait for the socket to be bound."""
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        return self

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        return self._server.port

    @property
    def server(self) -> ReproServer:
        """The underlying server instance."""
        return self._server

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server and join its thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(self._server.shutdown(), self._loop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
