"""Thin stdlib HTTP client for the compilation server.

:class:`ServeClient` wraps :mod:`http.client` so tests, benchmarks and
examples can talk to a running ``repro serve`` without any dependency
beyond the standard library.  Each call opens one connection (the server
answers with ``Connection: close``); :meth:`ServeClient.sweep` reads the
chunked newline-delimited JSON stream incrementally and invokes an
optional progress callback per line.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.server.app import DEFAULT_PORT


class ServeError(Exception):
    """A non-2xx (or in-stream error) response from the server."""

    def __init__(self, status: int, payload: Any):
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.payload = payload


class ServeClient:
    """Client for one ``repro serve`` endpoint.

    Args:
        host / port: where the server listens.
        token: bearer token matching the server's ``REPRO_SERVE_TOKEN``
            (``None`` sends no ``Authorization`` header).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        token: Optional[str] = None,
        timeout: float = 300.0,
    ):
        self._host = host
        self._port = int(port)
        self._token = token
        self._timeout = float(timeout)

    # -- plumbing ------------------------------------------------------------

    def _headers(self, has_body: bool) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if has_body:
            headers["Content-Type"] = "application/json"
        if self._token is not None:
            headers["Authorization"] = f"Bearer {self._token}"
        return headers

    def _open(
        self, method: str, path: str, payload: Any = None
    ) -> http.client.HTTPResponse:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body, headers=self._headers(body is not None))
        return connection.getresponse()

    def request(self, method: str, path: str, payload: Any = None) -> Any:
        """One non-streaming request; returns the decoded JSON body.

        Raises :class:`ServeError` on any non-2xx status.
        """
        response = self._open(method, path, payload)
        try:
            data = response.read()
        finally:
            response.close()
        decoded = json.loads(data.decode("utf-8")) if data else None
        if not 200 <= response.status < 300:
            raise ServeError(response.status, decoded)
        return decoded

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self.request("GET", "/v1/health")

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics``."""
        return self.request("GET", "/v1/metrics")

    def transpile(self, point_or_points: Any) -> Dict[str, Any]:
        """``POST /v1/transpile`` with one point dict or a list of them."""
        payload = (
            {"points": list(point_or_points)}
            if isinstance(point_or_points, (list, tuple))
            else dict(point_or_points)
        )
        return self.request("POST", "/v1/transpile", payload)

    def sweep(
        self,
        workloads: List[str],
        sizes: List[int],
        targets: List[Dict[str, str]],
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/sweep``; blocks until the final result line.

        ``targets`` is a list of ``{"topology": ..., "basis": ...}`` dicts;
        ``options`` passes through ``scale`` / ``level`` / ``layout`` /
        ``routing`` / ``seed`` / ``chunk_size``.  Every streamed line
        (``start`` and ``progress`` types) is handed to ``on_progress``;
        the final ``result`` line is returned.  An in-stream ``error``
        line, a truncated stream or a non-2xx status raises
        :class:`ServeError`.
        """
        payload = {
            "workloads": list(workloads),
            "sizes": list(sizes),
            "targets": list(targets),
            **options,
        }
        response = self._open("POST", "/v1/sweep", payload)
        try:
            if response.status != 200:
                decoded = json.loads(response.read().decode("utf-8") or "null")
                raise ServeError(response.status, decoded)
            for line in iter(response.readline, b""):
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                kind = event.get("type")
                if kind == "result":
                    return event
                if kind == "error":
                    raise ServeError(500, event)
                if on_progress is not None:
                    on_progress(event)
        finally:
            response.close()
        raise ServeError(500, {"error": "stream ended without a result line"})

    def shutdown(self) -> Dict[str, Any]:
        """``POST /v1/shutdown``: ask the server to drain and exit."""
        return self.request("POST", "/v1/shutdown")

    # -- convenience ---------------------------------------------------------

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.05) -> bool:
        """Poll ``/v1/health`` until the server answers (or time runs out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.health()
                return True
            except (ConnectionError, socket.error, ServeError):
                time.sleep(interval)
        return False
