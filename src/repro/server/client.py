"""Thin stdlib HTTP client for the compilation server.

:class:`ServeClient` wraps :mod:`http.client` so tests, benchmarks and
examples can talk to a running ``repro serve`` without any dependency
beyond the standard library.  Each call opens one connection (the server
answers with ``Connection: close``); :meth:`ServeClient.sweep` reads the
chunked newline-delimited JSON stream incrementally and invokes an
optional progress callback per line.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from repro.server.app import DEFAULT_PORT


class ServeError(Exception):
    """A non-2xx (or in-stream error) response from the server.

    ``retry_after`` carries the server's ``Retry-After`` header (seconds)
    when one was sent, so callers handling a 503/504 themselves know when
    a retry is worth attempting.
    """

    def __init__(self, status: int, payload: Any, retry_after: Optional[float] = None):
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.payload = payload
        self.retry_after = retry_after


def _parse_retry_after(response: http.client.HTTPResponse) -> Optional[float]:
    """The response's ``Retry-After`` header as seconds, if parseable."""
    raw = response.getheader("Retry-After")
    if raw is None:
        return None
    try:
        return max(0.0, float(raw))
    except ValueError:
        return None


class ServeClient:
    """Client for one ``repro serve`` endpoint.

    Args:
        host / port: where the server listens.
        token: bearer token matching the server's ``REPRO_SERVE_TOKEN``
            (``None`` sends no ``Authorization`` header).
        timeout: per-request socket timeout in seconds.
        retries: how many times a refused connection or a 503 response is
            retried before the error propagates (``0`` disables retries).
        retry_backoff: base seconds of the exponential backoff between
            retries; a server-sent ``Retry-After`` header overrides it.
    """

    #: Upper bound on one backoff sleep, so capped exponential growth
    #: (and an absurd ``Retry-After``) cannot stall a caller for long.
    MAX_BACKOFF_SECONDS = 5.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        token: Optional[str] = None,
        timeout: float = 300.0,
        retries: int = 2,
        retry_backoff: float = 0.1,
    ):
        self._host = host
        self._port = int(port)
        self._token = token
        self._timeout = float(timeout)
        self._retries = max(0, int(retries))
        self._retry_backoff = float(retry_backoff)

    # -- plumbing ------------------------------------------------------------

    def _headers(self, has_body: bool) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if has_body:
            headers["Content-Type"] = "application/json"
        if self._token is not None:
            headers["Authorization"] = f"Bearer {self._token}"
        return headers

    def _open(
        self, method: str, path: str, payload: Any = None
    ) -> http.client.HTTPResponse:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        connection.request(method, path, body=body, headers=self._headers(body is not None))
        return connection.getresponse()

    def _backoff_delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based)."""
        if retry_after is not None:
            return min(self.MAX_BACKOFF_SECONDS, retry_after)
        return min(self.MAX_BACKOFF_SECONDS, self._retry_backoff * (2**attempt))

    def _open_with_retries(
        self, method: str, path: str, payload: Any = None
    ) -> http.client.HTTPResponse:
        """Open one request, retrying refused connections and 503 answers.

        A 503 means the server queue is momentarily full (or it is
        restarting behind a supervisor); both clear on their own, so up to
        ``retries`` attempts are spaced by the server's ``Retry-After``
        hint (exponential backoff when absent).  Any other status — and a
        503 once the attempts are spent — is returned to the caller.
        """
        attempt = 0
        while True:
            try:
                response = self._open(method, path, payload)
            except ConnectionRefusedError:
                if attempt >= self._retries:
                    raise
                delay = self._backoff_delay(attempt, None)
            else:
                if response.status != 503 or attempt >= self._retries:
                    return response
                retry_after = _parse_retry_after(response)
                response.read()
                response.close()
                delay = self._backoff_delay(attempt, retry_after)
            time.sleep(delay)
            attempt += 1

    def request(self, method: str, path: str, payload: Any = None) -> Any:
        """One non-streaming request; returns the decoded JSON body.

        Raises :class:`ServeError` on any non-2xx status (after the
        transparent 503/refused-connection retries are exhausted).
        """
        response = self._open_with_retries(method, path, payload)
        try:
            data = response.read()
        finally:
            response.close()
        decoded = json.loads(data.decode("utf-8")) if data else None
        if not 200 <= response.status < 300:
            raise ServeError(response.status, decoded, _parse_retry_after(response))
        return decoded

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self.request("GET", "/v1/health")

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics``."""
        return self.request("GET", "/v1/metrics")

    def transpile(
        self, point_or_points: Any, deadline_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """``POST /v1/transpile`` with one point dict or a list of them.

        ``deadline_s`` asks the server to answer 504 (raised here as
        :class:`ServeError`) instead of keeping this client waiting longer
        than that many seconds.
        """
        payload = (
            {"points": list(point_or_points)}
            if isinstance(point_or_points, (list, tuple))
            else dict(point_or_points)
        )
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self.request("POST", "/v1/transpile", payload)

    def sweep(
        self,
        workloads: List[str],
        sizes: List[int],
        targets: List[Dict[str, str]],
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """``POST /v1/sweep``; blocks until the final result line.

        ``targets`` is a list of ``{"topology": ..., "basis": ...}`` dicts;
        ``options`` passes through ``scale`` / ``level`` / ``layout`` /
        ``routing`` / ``seed`` / ``chunk_size`` / ``run_id`` /
        ``shard_points`` / ``deadline_s``.  Every streamed line (``start``
        and ``progress`` types) is handed to ``on_progress``; the final
        ``result`` line is returned.  An in-stream ``error`` line (which
        is how a ``deadline_s`` expiry surfaces mid-stream, with
        ``status: 504``), a truncated stream or a non-2xx status raises
        :class:`ServeError`.
        """
        payload = {
            "workloads": list(workloads),
            "sizes": list(sizes),
            "targets": list(targets),
            **options,
        }
        response = self._open_with_retries("POST", "/v1/sweep", payload)
        try:
            if response.status != 200:
                decoded = json.loads(response.read().decode("utf-8") or "null")
                raise ServeError(
                    response.status, decoded, _parse_retry_after(response)
                )
            for line in iter(response.readline, b""):
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                kind = event.get("type")
                if kind == "result":
                    return event
                if kind == "error":
                    raise ServeError(int(event.get("status", 500)), event)
                if on_progress is not None:
                    on_progress(event)
        finally:
            response.close()
        raise ServeError(500, {"error": "stream ended without a result line"})

    def shutdown(self) -> Dict[str, Any]:
        """``POST /v1/shutdown``: ask the server to drain and exit."""
        return self.request("POST", "/v1/shutdown")

    # -- convenience ---------------------------------------------------------

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.05) -> bool:
        """Poll ``/v1/health`` until the server answers (or time runs out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.health()
                return True
            except (ConnectionError, socket.error, ServeError):
                time.sleep(interval)
        return False
