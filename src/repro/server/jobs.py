"""Request-to-work translation for the compilation server.

The HTTP layer in :mod:`repro.server.app` stays protocol-only; everything
that understands *compilation* lives here: parsing JSON request payloads
into validated :class:`PointSpec` grids, executing them through the
server's resident :class:`~repro.runtime.runner.ExperimentRunner` (so the
warm process pool and the shared result cache are reused across
requests), and snapshotting per-request
:class:`~repro.linalg.cache.CacheStats` deltas for the response bodies.

A malformed payload raises :class:`RequestError`, which the HTTP layer
maps onto a 4xx response; the job functions themselves run inside the
server's single dispatcher slot, so the before/after cache snapshots they
take are consistent without locking.
"""

from __future__ import annotations

import functools
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.pipeline import run_point, run_sweep_sharded
from repro.runtime.cache import point_cache_key
from repro.transpiler.compile import available_levels
from repro.transpiler.registry import available_passes
from repro.transpiler.target import Target
from repro.workloads import available_workloads

#: Upper bound on the points of one request, so a single client cannot
#: park an unbounded sweep in the queue's one dispatcher slot.
MAX_POINTS_PER_REQUEST = 4096

#: Streaming sweeps execute this many points per chunk by default; one
#: progress line is emitted per chunk.
DEFAULT_CHUNK_SIZE = 16


class RequestError(Exception):
    """A request the server must reject with a non-2xx response.

    ``retry_after`` (seconds) is surfaced as a ``Retry-After`` response
    header, telling well-behaved clients when a 503/504 is worth
    retrying.
    """

    def __init__(
        self, message: str, status: int = 400, retry_after: Optional[float] = None
    ):
        super().__init__(message)
        self.status = int(status)
        self.retry_after = None if retry_after is None else float(retry_after)


def _require(condition: bool, message: str) -> None:
    """Raise a 400 :class:`RequestError` unless ``condition`` holds."""
    if not condition:
        raise RequestError(message)


def _as_int(value: Any, field: str) -> int:
    """Coerce a JSON value to ``int``, rejecting bools and non-numbers."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{field!r} must be an integer, got {value!r}")
    return value


def pop_deadline(payload: Any) -> Optional[float]:
    """Remove and validate an optional ``deadline_s`` field from a payload.

    Every work-submitting endpoint accepts ``deadline_s``: the seconds the
    client is willing to wait before the server answers 504 instead.  The
    field is popped *before* the endpoint-specific parser runs, so the
    single-point ``/v1/transpile`` form (payload *is* the point) stays
    valid.  Returns ``None`` when absent.
    """
    if not isinstance(payload, dict) or "deadline_s" not in payload:
        return None
    value = payload.pop("deadline_s")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"'deadline_s' must be a number, got {value!r}")
    deadline = float(value)
    if deadline <= 0:
        raise RequestError("'deadline_s' must be positive")
    return deadline


@dataclass(frozen=True)
class PointSpec:
    """One validated compilation point of a ``/v1/transpile`` request.

    Mirrors the knobs of ``repro run`` (and of
    :func:`repro.core.pipeline.run_point`): a workload instance, a design
    point named by registry entries, and the transpiler configuration.
    """

    workload: str
    size: int
    topology: str
    basis: str
    scale: str = "small"
    optimization_level: int = 1
    layout: Optional[str] = None
    routing: Optional[str] = None
    seed: int = 0

    @classmethod
    def from_payload(cls, payload: Any) -> "PointSpec":
        """Validate one JSON object into a spec (raising :class:`RequestError`)."""
        _require(isinstance(payload, dict), "each point must be a JSON object")
        known = {
            "workload",
            "size",
            "topology",
            "basis",
            "scale",
            "level",
            "layout",
            "routing",
            "seed",
        }
        unknown = sorted(set(payload) - known)
        _require(not unknown, f"unknown point fields: {unknown}")
        _require("workload" in payload, "point is missing 'workload'")
        _require("size" in payload, "point is missing 'size'")
        workload = payload["workload"]
        _require(
            workload in available_workloads(),
            f"unknown workload {workload!r}; available: {available_workloads()}",
        )
        level = _as_int(payload.get("level", 1), "level")
        _require(
            level in available_levels(),
            f"unknown optimization level {level}; available: {available_levels()}",
        )
        scale = payload.get("scale", "small")
        _require(scale in ("small", "large"), "'scale' must be 'small' or 'large'")
        for stage in ("layout", "routing"):
            name = payload.get(stage)
            if name is not None:
                _require(
                    name in available_passes(stage),
                    f"unknown {stage} pass {name!r}; "
                    f"available: {available_passes(stage)}",
                )
        size = _as_int(payload["size"], "size")
        _require(size >= 1, "'size' must be at least 1")
        return cls(
            workload=workload,
            size=size,
            topology=str(payload.get("topology", "Corral1,1")),
            basis=str(payload.get("basis", "siswap")),
            scale=scale,
            optimization_level=level,
            layout=payload.get("layout"),
            routing=payload.get("routing"),
            seed=_as_int(payload.get("seed", 0), "seed"),
        )

    def resolve_target(self) -> Target:
        """The design point this spec names (raising 400 on a bad name).

        Resolution is memoized per ``(topology, basis, scale)``: building a
        target constructs the topology graph and its distance structures,
        which would otherwise dominate fully cached requests.  Targets are
        treated as read-only by the pipeline, so sharing one instance
        across requests is safe (the single dispatcher serializes jobs).
        """
        try:
            return _resolve_target(self.topology, self.basis, self.scale)
        except (ValueError, KeyError) as error:
            raise RequestError(str(error)) from None


@functools.lru_cache(maxsize=256)
def _resolve_target(topology: str, basis: str, scale: str) -> Target:
    """Build (once) the target named by registry strings."""
    return Target.from_names(topology, basis, scale=scale, name=f"{topology}-{basis}")


def parse_transpile_request(payload: Any) -> List[PointSpec]:
    """Validate a ``/v1/transpile`` body (single point or ``{"points": []}``)."""
    _require(isinstance(payload, dict), "request body must be a JSON object")
    if "points" in payload:
        points = payload["points"]
        _require(isinstance(points, list) and points, "'points' must be a non-empty list")
        _require(
            len(points) <= MAX_POINTS_PER_REQUEST,
            f"at most {MAX_POINTS_PER_REQUEST} points per request",
        )
        specs = [PointSpec.from_payload(point) for point in points]
    else:
        specs = [PointSpec.from_payload(payload)]
    for spec in specs:
        # Resolve eagerly so a bad topology/basis name is a 400 at parse
        # time, not a 500 once the job is already on the queue.
        spec.resolve_target()
    return specs


#: Filesystem-safe checkpoint run identifiers (no separators, no dots at
#: the front — a ``run_id`` becomes a directory name under the cache dir).
_RUN_ID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


@dataclass(frozen=True)
class SweepRequest:
    """One validated ``/v1/sweep`` request.

    ``specs`` is the flattened point grid in canonical order; the raw
    components (``workloads``/``sizes``/``targets`` plus the shared
    transpiler configuration) are kept alongside because the checkpointed
    execution path (``run_id`` set) drives
    :func:`repro.core.pipeline.run_sweep_sharded` from them directly.
    """

    specs: List[PointSpec]
    chunk_size: int
    run_id: Optional[str] = None
    shard_points: Optional[int] = None
    workloads: List[str] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)
    targets: List[Target] = field(default_factory=list)
    level: int = 1
    layout: Optional[str] = None
    routing: Optional[str] = None
    seed: int = 0


def parse_sweep_request(payload: Any) -> SweepRequest:
    """Validate a ``/v1/sweep`` body into a :class:`SweepRequest`.

    The grid is the cross product ``workloads x sizes x targets`` in
    canonical order (the same nested-loop order as
    :func:`repro.core.pipeline.sweep_grid`), with sizes wider than a
    target skipped.  An optional ``run_id`` selects checkpointed
    execution: the sweep runs as deterministic shards persisted under the
    server's cache directory, and re-POSTing the same body with the same
    ``run_id`` recomputes only the shards a crashed or interrupted run
    left missing.  ``shard_points`` sets the shard size (default: the
    chunk size).
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    known = {
        "workloads",
        "sizes",
        "targets",
        "scale",
        "level",
        "layout",
        "routing",
        "seed",
        "chunk_size",
        "run_id",
        "shard_points",
    }
    unknown = sorted(set(payload) - known)
    _require(not unknown, f"unknown sweep fields: {unknown}")
    for name in ("workloads", "sizes", "targets"):
        _require(
            isinstance(payload.get(name), list) and payload[name],
            f"'{name}' must be a non-empty list",
        )
    chunk_size = _as_int(payload.get("chunk_size", DEFAULT_CHUNK_SIZE), "chunk_size")
    _require(chunk_size >= 1, "'chunk_size' must be at least 1")
    run_id = payload.get("run_id")
    if run_id is not None:
        _require(
            isinstance(run_id, str) and _RUN_ID_PATTERN.fullmatch(run_id) is not None,
            "'run_id' must be 1-64 characters of [A-Za-z0-9._-] "
            "(starting alphanumeric)",
        )
    shard_points = payload.get("shard_points")
    if shard_points is not None:
        shard_points = _as_int(shard_points, "shard_points")
        _require(shard_points >= 1, "'shard_points' must be at least 1")
        _require(
            run_id is not None, "'shard_points' is only meaningful with 'run_id'"
        )
    scale = payload.get("scale", "small")
    shared = {
        "scale": scale,
        "level": payload.get("level", 1),
        "layout": payload.get("layout"),
        "routing": payload.get("routing"),
        "seed": payload.get("seed", 0),
    }
    targets = []
    for entry in payload["targets"]:
        _require(
            isinstance(entry, dict) and "topology" in entry,
            "each target must be an object with at least 'topology'",
        )
        spec = dict(entry)
        topology = spec.pop("topology")
        basis = spec.pop("basis", "siswap")
        _require(not spec, f"unknown target fields: {sorted(spec)}")
        targets.append((str(topology), str(basis)))
    grid: List[PointSpec] = []
    for workload in payload["workloads"]:
        for size in payload["sizes"]:
            for topology, basis in targets:
                point = PointSpec.from_payload(
                    {
                        "workload": workload,
                        "size": size,
                        "topology": topology,
                        "basis": basis,
                        **{k: v for k, v in shared.items() if v is not None},
                    }
                )
                if point.size <= point.resolve_target().num_qubits:
                    grid.append(point)
    _require(bool(grid), "sweep grid is empty (every size exceeds its target)")
    _require(
        len(grid) <= MAX_POINTS_PER_REQUEST,
        f"at most {MAX_POINTS_PER_REQUEST} points per request",
    )
    first = grid[0]
    return SweepRequest(
        specs=grid,
        chunk_size=chunk_size,
        run_id=run_id,
        shard_points=shard_points if shard_points is not None else chunk_size,
        workloads=[str(workload) for workload in payload["workloads"]],
        sizes=[_as_int(size, "sizes") for size in payload["sizes"]],
        targets=[
            _resolve_target(topology, basis, scale) for topology, basis in targets
        ],
        level=first.optimization_level,
        layout=first.layout,
        routing=first.routing,
        seed=first.seed,
    )


# -- execution ----------------------------------------------------------------


def stats_snapshot(cache: Optional[Any]) -> Optional[Dict[str, int]]:
    """The cache's counters as a JSON-ready dict (``None`` when uncached)."""
    if cache is None:
        return None
    stats = cache.stats()
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "disk_hits": stats.disk_hits,
        "disk_misses": stats.disk_misses,
        "computed": stats.computed,
        "currsize": stats.currsize,
        "maxsize": stats.maxsize,
    }


def stats_delta(
    before: Optional[Dict[str, int]], after: Optional[Dict[str, int]]
) -> Optional[Dict[str, int]]:
    """Per-request cache counters (cumulative ``after`` minus ``before``)."""
    if before is None or after is None:
        return None
    delta = {
        key: after[key] - before[key]
        for key in ("hits", "misses", "disk_hits", "disk_misses", "computed")
    }
    delta["currsize"] = after["currsize"]
    delta["maxsize"] = after["maxsize"]
    return delta


def execute_points(specs: Sequence[PointSpec], runner: Any) -> List[Dict[str, Any]]:
    """Transpile every spec through the resident runner, in request order.

    Tasks are dispatched exactly like :func:`repro.core.pipeline.run_sweep`
    dispatches its grid — same task tuples, same
    :func:`~repro.runtime.cache.point_cache_key` keys — so server requests
    and CLI sweeps share cache records for identical points.
    """
    targets = [spec.resolve_target() for spec in specs]
    tasks = [
        (
            spec.workload,
            spec.size,
            target,
            spec.seed,
            spec.layout,
            spec.routing,
            spec.optimization_level,
        )
        for spec, target in zip(specs, targets)
    ]
    keys = None
    if runner.result_cache is not None:
        keys = [
            point_cache_key(
                spec.workload,
                spec.size,
                target,
                spec.seed,
                spec.layout,
                spec.routing,
                spec.optimization_level,
            )
            for spec, target in zip(specs, targets)
        ]
    records = runner.map(run_point, tasks, keys=keys)
    for spec, metrics in zip(specs, records):
        if metrics is None:
            # The runner's failure policy quarantined this point; answer a
            # clean failure instead of an AttributeError on None.
            raise RuntimeError(
                f"point {spec.workload}-{spec.size} on "
                f"{spec.topology}-{spec.basis} was quarantined by the "
                "failure policy"
            )
    return [metrics.as_dict() for metrics in records]


def run_transpile_job(specs: Sequence[PointSpec], runner: Any) -> Dict[str, Any]:
    """The ``/v1/transpile`` work item: execute and package one response body."""
    cache = runner.result_cache
    before = stats_snapshot(cache)
    start = time.perf_counter()
    results = execute_points(specs, runner)
    return {
        "results": results,
        "count": len(results),
        "elapsed_seconds": round(time.perf_counter() - start, 6),
        "cache": stats_delta(before, stats_snapshot(cache)),
    }


def run_sweep_job(
    specs: Sequence[PointSpec],
    chunk_size: int,
    runner: Any,
    emit: Callable[[Dict[str, Any]], None],
) -> int:
    """The ``/v1/sweep`` work item: execute chunk by chunk, streaming lines.

    ``emit`` receives one ``{"type": "start"}`` line, one
    ``{"type": "progress"}`` line per completed chunk and a final
    ``{"type": "result"}`` line carrying every record plus the
    per-request cache delta.  Returns the number of points executed.
    """
    cache = runner.result_cache
    before = stats_snapshot(cache)
    start = time.perf_counter()
    chunks = [specs[i : i + chunk_size] for i in range(0, len(specs), chunk_size)]
    emit({"type": "start", "total": len(specs), "chunks": len(chunks)})
    records: List[Dict[str, Any]] = []
    completed = 0
    for chunk in chunks:
        chunk_start = time.perf_counter()
        records.extend(execute_points(chunk, runner))
        completed += len(chunk)
        emit(
            {
                "type": "progress",
                "completed": completed,
                "total": len(specs),
                "chunk_seconds": round(time.perf_counter() - chunk_start, 6),
            }
        )
    emit(
        {
            "type": "result",
            "records": records,
            "count": len(records),
            "elapsed_seconds": round(time.perf_counter() - start, 6),
            "cache": stats_delta(before, stats_snapshot(cache)),
        }
    )
    return completed


def run_sweep_checkpoint_job(
    request: SweepRequest,
    checkpoint_dir: Any,
    runner: Any,
    emit: Callable[[Dict[str, Any]], None],
) -> int:
    """The checkpointed ``/v1/sweep`` work item (``run_id`` given).

    Runs the sweep through
    :func:`repro.core.pipeline.run_sweep_sharded`: deterministic shards
    persisted under ``checkpoint_dir``, restored shards skipped, one
    ``{"type": "shard"}`` progress line per shard.  Re-POSTing the same
    body with the same ``run_id`` after a crash recomputes only the
    missing shards; the final ``{"type": "result"}`` line always carries
    the complete record set.  Returns the number of points *computed*
    this time (restored points are free).
    """
    cache = runner.result_cache
    before = stats_snapshot(cache)
    start = time.perf_counter()
    total = len(request.specs)
    computed_points = 0

    def _shard_progress(index: int, shards: int, status: str, points: int) -> None:
        nonlocal computed_points
        # "retried" shards (previously failed points recomputed) count as
        # computed work too; only fully "restored" shards are free.
        if status in ("computed", "retried"):
            computed_points += points
        emit(
            {
                "type": "shard",
                "shard": index + 1,
                "shards": shards,
                "status": status,
                "points": points,
            }
        )

    shard_points = request.shard_points or request.chunk_size
    emit(
        {
            "type": "start",
            "total": total,
            "run_id": request.run_id,
            "shards": max(1, -(-total // shard_points)),
        }
    )
    result = run_sweep_sharded(
        request.workloads,
        request.sizes,
        request.targets,
        checkpoint_dir=checkpoint_dir,
        seed=request.seed,
        layout_method=request.layout,
        routing_method=request.routing,
        optimization_level=request.level,
        shard_points=shard_points,
        resume=True,
        shard_progress=_shard_progress,
        runner=runner,
    )
    emit(
        {
            "type": "result",
            "records": result.as_dicts(),
            "count": len(result),
            "computed": computed_points,
            "failed_points": list(result.failed_points),
            "elapsed_seconds": round(time.perf_counter() - start, 6),
            "cache": stats_delta(before, stats_snapshot(cache)),
        }
    )
    return computed_points
