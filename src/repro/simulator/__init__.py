"""State-vector and unitary simulators used for validation."""

from repro.simulator.statevector import (
    HARD_QUBIT_LIMIT,
    StatevectorSimulator,
    statevector,
)
from repro.simulator.unitary import circuit_unitary, circuits_equivalent

__all__ = [
    "HARD_QUBIT_LIMIT",
    "StatevectorSimulator",
    "statevector",
    "circuit_unitary",
    "circuits_equivalent",
]
