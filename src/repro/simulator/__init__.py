"""State-vector and unitary simulators used for validation."""

from repro.simulator.fusion import SingleQubitFusion, apply_matrix_to_axes
from repro.simulator.statevector import (
    HARD_QUBIT_LIMIT,
    StatevectorSimulator,
    sample_probability_counts,
    statevector,
)
from repro.simulator.unitary import circuit_unitary, circuits_equivalent

__all__ = [
    "HARD_QUBIT_LIMIT",
    "StatevectorSimulator",
    "statevector",
    "sample_probability_counts",
    "SingleQubitFusion",
    "apply_matrix_to_axes",
    "circuit_unitary",
    "circuits_equivalent",
]
