"""State-vector and unitary simulators used for validation."""

from repro.simulator.statevector import StatevectorSimulator, statevector
from repro.simulator.unitary import circuit_unitary, circuits_equivalent

__all__ = [
    "StatevectorSimulator",
    "statevector",
    "circuit_unitary",
    "circuits_equivalent",
]
