"""Shared contraction and gate-fusion helpers for the dense simulators.

Both dense simulators — the state-vector simulator and the density-matrix
engine — evolve a rank-``n`` (respectively rank-``2n``) tensor of local
dimension 2 by contracting small operator tensors into a subset of its
axes.  This module is the single home of that contraction primitive and of
the *single-qubit fusion* optimisation layered on top of it:

* :func:`apply_matrix_to_axes` contracts a ``2^k x 2^k`` matrix into ``k``
  chosen axes of a ``(2,) * m`` tensor — O(2^m * 2^k) instead of the
  O(4^m) full-operator embedding.
* :class:`SingleQubitFusion` accumulates runs of single-qubit gate
  matrices per qubit and hands back one fused 2x2 product per run, so a
  chain of ``k`` one-qubit gates costs one contraction instead of ``k``.
  Only commuting operations are reordered (single-qubit gates on distinct
  qubits), so fused evaluation matches unfused evaluation exactly up to
  floating-point associativity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np


def apply_matrix_to_axes(
    tensor: np.ndarray, matrix: np.ndarray, axes: Sequence[int]
) -> np.ndarray:
    """Contract ``matrix`` into the listed axes of a ``(2,) * m`` tensor.

    ``matrix`` is ``2^k x 2^k`` over the ordered basis of the ``k`` listed
    axes (first axis = most significant bit, matching the gate-matrix
    convention of :mod:`repro.circuits.gate`).  The matrix's column
    (input) indices are contracted with the listed tensor axes and the
    resulting output indices are moved back into their places, so the
    returned tensor has the same shape as the input.
    """
    axes = list(axes)
    arity = len(axes)
    op_tensor = np.asarray(matrix).reshape([2] * (2 * arity))
    moved = np.tensordot(
        op_tensor, tensor, axes=(list(range(arity, 2 * arity)), axes)
    )
    return np.moveaxis(moved, range(arity), axes)


class SingleQubitFusion:
    """Accumulates single-qubit gate matrices per qubit into fused products.

    Usage: :meth:`push` 2x2 matrices as single-qubit instructions stream
    by; before touching a qubit with a multi-qubit operation (or a noise
    channel), :meth:`drain` the pending product for the involved qubits
    and contract each returned matrix; :meth:`drain` with no argument at
    the end of the circuit.
    """

    def __init__(self) -> None:
        self._pending: Dict[int, np.ndarray] = {}

    def push(self, qubit: int, matrix: np.ndarray) -> None:
        """Append ``matrix`` to the pending product on ``qubit``."""
        previous = self._pending.get(qubit)
        if previous is None:
            self._pending[qubit] = np.asarray(matrix)
        else:
            self._pending[qubit] = matrix @ previous

    def drain(
        self, qubits: Optional[Iterable[int]] = None
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield and clear ``(qubit, fused_matrix)`` pairs.

        With ``qubits`` given, only those qubits are drained (in the given
        order); otherwise every pending qubit is drained in ascending
        qubit order so the flush order is deterministic.
        """
        if qubits is None:
            qubits = sorted(self._pending)
        for qubit in qubits:
            matrix = self._pending.pop(qubit, None)
            if matrix is not None:
                yield qubit, matrix

    def __bool__(self) -> bool:
        return bool(self._pending)
