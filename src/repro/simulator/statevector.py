"""Dense state-vector simulator.

The simulator uses the little-endian register convention (qubit 0 is the
least-significant bit of the computational-basis index), while gate matrices
use the argument-order convention of :mod:`repro.circuits.gate` (first
argument = most-significant bit of the gate matrix).  The translation
between the two is handled here so that callers never need to think about
it.

The simulator is used to *validate* circuit constructions and
decompositions (GHZ states, adders on basis states, QFT against the DFT
matrix, transpiled-circuit equivalence); it is not meant to scale past
~20 qubits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction


class StatevectorSimulator:
    """Applies circuits to dense state vectors."""

    def __init__(self, max_qubits: int = 24):
        self._max_qubits = int(max_qubits)

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Simulate ``circuit`` and return the final state vector."""
        num_qubits = circuit.num_qubits
        if num_qubits > self._max_qubits:
            raise ValueError(
                f"circuit has {num_qubits} qubits which exceeds the simulator "
                f"limit of {self._max_qubits}"
            )
        if initial_state is None:
            state = np.zeros(2 ** num_qubits, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2 ** num_qubits,):
                raise ValueError("initial state has the wrong dimension")
        tensor = state.reshape([2] * num_qubits)
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            tensor = _apply_instruction(tensor, instruction, num_qubits)
        return tensor.reshape(2 ** num_qubits)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Measurement probabilities in the computational basis."""
        amplitudes = self.run(circuit)
        return np.abs(amplitudes) ** 2

    def sample_counts(
        self, circuit: QuantumCircuit, shots: int, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Sample measurement outcomes; keys are little-endian bitstrings."""
        probabilities = self.probabilities(circuit)
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        counts: Dict[str, int] = {}
        width = circuit.num_qubits
        for outcome in outcomes:
            key = format(int(outcome), f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def expectation_z(self, circuit: QuantumCircuit, qubits: Sequence[int]) -> float:
        """Expectation value of the Z-string on ``qubits``."""
        probabilities = self.probabilities(circuit)
        total = 0.0
        for index, probability in enumerate(probabilities):
            parity = 1.0
            for qubit in qubits:
                if (index >> qubit) & 1:
                    parity = -parity
            total += parity * probability
        return float(total)


def _apply_instruction(
    tensor: np.ndarray, instruction: Instruction, num_qubits: int
) -> np.ndarray:
    """Apply one instruction to a state tensor of shape ``(2,) * n``."""
    gate_qubits = instruction.qubits
    arity = len(gate_qubits)
    matrix = instruction.gate.matrix()
    gate_tensor = matrix.reshape([2] * (2 * arity))
    # Axis of the state tensor that carries qubit ``q``.
    axes = [num_qubits - 1 - q for q in gate_qubits]
    moved = np.tensordot(
        gate_tensor, tensor, axes=(list(range(arity, 2 * arity)), axes)
    )
    return np.moveaxis(moved, range(arity), axes)


def statevector(circuit: QuantumCircuit) -> np.ndarray:
    """Convenience function: final state of ``circuit`` from ``|0...0>``."""
    return StatevectorSimulator().run(circuit)
