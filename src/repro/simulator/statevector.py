"""Dense state-vector simulator.

The simulator uses the little-endian register convention (qubit 0 is the
least-significant bit of the computational-basis index), while gate matrices
use the argument-order convention of :mod:`repro.circuits.gate` (first
argument = most-significant bit of the gate matrix).  The translation
between the two is handled here so that callers never need to think about
it.

The simulator is used to *validate* circuit constructions and
decompositions (GHZ states, adders on basis states, QFT against the DFT
matrix, transpiled-circuit equivalence); it is not meant to scale past
~20 qubits, and :data:`HARD_QUBIT_LIMIT` enforces an absolute ceiling so a
mistyped width fails with a clear error instead of a multi-gigabyte numpy
allocation attempt.

Two performance features keep validation runs fast:

* gate matrices are fetched through the process-global unitary cache
  (:meth:`~repro.circuits.gate.Gate.cached_matrix`);
* runs of single-qubit gates acting on the same qubit are *fused* into a
  single 2x2 matrix product before the tensor contraction, so a chain of
  ``k`` one-qubit gates costs one contraction instead of ``k``.  Fusion
  only reorders operations that commute (single-qubit gates on distinct
  qubits), so the result is identical up to floating-point rounding; pass
  ``fuse_single_qubit=False`` to disable it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.simulator.fusion import SingleQubitFusion, apply_matrix_to_axes

#: Absolute ceiling on the simulator width: a 2^28 complex state vector is
#: already 4 GiB, far beyond the validation-scale use-case documented above.
HARD_QUBIT_LIMIT = 26


class StatevectorSimulator:
    """Applies circuits to dense state vectors."""

    def __init__(self, max_qubits: int = 24, fuse_single_qubit: bool = True):
        max_qubits = int(max_qubits)
        if max_qubits < 1:
            raise ValueError("max_qubits must be at least 1")
        if max_qubits > HARD_QUBIT_LIMIT:
            raise ValueError(
                f"max_qubits={max_qubits} exceeds the dense-simulation limit of "
                f"{HARD_QUBIT_LIMIT} qubits (a 2**{max_qubits} state vector "
                "cannot be allocated); use a smaller width"
            )
        self._max_qubits = max_qubits
        self._fuse_single_qubit = bool(fuse_single_qubit)

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Simulate ``circuit`` and return the final state vector."""
        num_qubits = circuit.num_qubits
        if num_qubits > self._max_qubits:
            raise ValueError(
                f"circuit has {num_qubits} qubits which exceeds the simulator "
                f"limit of {self._max_qubits}"
            )
        if initial_state is None:
            state = np.zeros(2 ** num_qubits, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2 ** num_qubits,):
                raise ValueError("initial state has the wrong dimension")
        tensor = state.reshape([2] * num_qubits)
        if self._fuse_single_qubit:
            tensor = _run_fused(tensor, circuit, num_qubits)
        else:
            for instruction in circuit:
                if instruction.name == "barrier":
                    continue
                tensor = _apply_instruction(tensor, instruction, num_qubits)
        return tensor.reshape(2 ** num_qubits)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Measurement probabilities in the computational basis."""
        amplitudes = self.run(circuit)
        return np.abs(amplitudes) ** 2

    def sample_counts(
        self, circuit: QuantumCircuit, shots: int, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Sample measurement outcomes; keys are little-endian bitstrings."""
        return sample_probability_counts(
            self.probabilities(circuit), circuit.num_qubits, shots, seed=seed
        )

    def expectation_z(self, circuit: QuantumCircuit, qubits: Sequence[int]) -> float:
        """Expectation value of the Z-string on ``qubits``."""
        probabilities = self.probabilities(circuit)
        total = 0.0
        for index, probability in enumerate(probabilities):
            parity = 1.0
            for qubit in qubits:
                if (index >> qubit) & 1:
                    parity = -parity
            total += parity * probability
        return float(total)


def _run_fused(
    tensor: np.ndarray, circuit: QuantumCircuit, num_qubits: int
) -> np.ndarray:
    """Apply a circuit, fusing runs of single-qubit gates per qubit.

    Pending 2x2 matrices are accumulated per qubit and only contracted into
    the state when a multi-qubit gate touches that qubit (or at the end of
    the circuit).  Only commuting operations are reordered, so this matches
    the unfused evaluation exactly up to floating-point associativity.
    """
    fusion = SingleQubitFusion()
    for instruction in circuit:
        if instruction.name == "barrier":
            continue
        if instruction.num_qubits == 1:
            fusion.push(instruction.qubits[0], instruction.gate.cached_matrix())
        else:
            for qubit, matrix in fusion.drain(instruction.qubits):
                tensor = _apply_matrix(tensor, matrix, (qubit,), num_qubits)
            tensor = _apply_instruction(tensor, instruction, num_qubits)
    for qubit, matrix in fusion.drain():
        tensor = _apply_matrix(tensor, matrix, (qubit,), num_qubits)
    return tensor


def _apply_matrix(
    tensor: np.ndarray,
    matrix: np.ndarray,
    gate_qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Contract a gate matrix into a state tensor of shape ``(2,) * n``."""
    # Axis of the state tensor that carries qubit ``q``.
    axes = [num_qubits - 1 - q for q in gate_qubits]
    return apply_matrix_to_axes(tensor, matrix, axes)


def sample_probability_counts(
    probabilities: np.ndarray, width: int, shots: int, seed: Optional[int] = None
) -> Dict[str, int]:
    """Sample shots from a probability vector into a bitstring-count dict.

    Guards against an all-zero (or negative-sum) probability vector, which
    would otherwise turn into ``NaN`` probabilities inside ``rng.choice``;
    outcome counting is vectorised through :func:`numpy.unique`.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    total = probabilities.sum()
    if not total > 0.0:
        raise ValueError(
            "cannot sample from an all-zero probability vector (the state "
            "has no population; check the circuit and noise model)"
        )
    probabilities = probabilities / total
    rng = np.random.default_rng(seed)
    outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
    values, frequencies = np.unique(outcomes, return_counts=True)
    return {
        format(int(value), f"0{width}b"): int(count)
        for value, count in zip(values, frequencies)
    }


def _apply_instruction(
    tensor: np.ndarray, instruction: Instruction, num_qubits: int
) -> np.ndarray:
    """Apply one instruction to a state tensor of shape ``(2,) * n``."""
    return _apply_matrix(
        tensor, instruction.gate.cached_matrix(), instruction.qubits, num_qubits
    )


def statevector(circuit: QuantumCircuit) -> np.ndarray:
    """Convenience function: final state of ``circuit`` from ``|0...0>``."""
    return StatevectorSimulator().run(circuit)
