"""Unitary simulator: compute the full matrix implemented by a circuit."""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.simulator.statevector import _apply_instruction


def circuit_unitary(circuit: QuantumCircuit, max_qubits: int = 12) -> np.ndarray:
    """Return the unitary of ``circuit`` (little-endian register ordering).

    The cost is ``O(4^n)``; intended for verification of small circuits and
    decompositions.
    """
    num_qubits = circuit.num_qubits
    if num_qubits > max_qubits:
        raise ValueError(
            f"refusing to build a {2 ** num_qubits}-dimensional unitary "
            f"(limit is {max_qubits} qubits)"
        )
    dim = 2 ** num_qubits
    # Keep the input (column) index as a trailing axis and push every gate
    # through the row indices only.
    tensor = np.eye(dim, dtype=complex).reshape([2] * num_qubits + [dim])
    for instruction in circuit:
        if instruction.name == "barrier":
            continue
        tensor = _apply_instruction(tensor, instruction, num_qubits)
    return tensor.reshape(dim, dim)


def circuits_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    up_to_global_phase: bool = True,
    atol: float = 1e-6,
) -> bool:
    """Check whether two small circuits implement the same unitary."""
    from repro.linalg.matrices import matrices_equal

    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    return matrices_equal(
        circuit_unitary(circuit_a),
        circuit_unitary(circuit_b),
        up_to_global_phase=up_to_global_phase,
        atol=atol,
    )
