"""SNAIL device-level model (software twin of the paper's hardware prototype)."""

from repro.snailsim.device import SnailExchangeModel
from repro.snailsim.chevron import ChevronData, chevron_sweep, render_ascii_chevron
from repro.snailsim.module import PumpTone, SnailModule

__all__ = [
    "SnailExchangeModel",
    "ChevronData",
    "chevron_sweep",
    "render_ascii_chevron",
    "PumpTone",
    "SnailModule",
]
