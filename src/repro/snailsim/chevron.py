"""Chevron sweep: the software twin of paper Fig. 6.

The figure shows the parametrically driven exchange between two qubits of
the SNAIL module as a function of pulse length and pump detuning — the
characteristic "chevron" pattern whose on-resonance slice calibrates the
iSWAP-family gate.  :func:`chevron_sweep` regenerates that dataset from
the :class:`~repro.snailsim.device.SnailExchangeModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Tuple

import numpy as np

from repro.snailsim.device import SnailExchangeModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runner import ExperimentRunner


@dataclass(frozen=True)
class ChevronData:
    """Populations over a (pulse length x detuning) grid.

    Attributes:
        pulse_lengths_ns: swept pulse durations.
        detunings_mhz: swept pump detunings.
        source_population: ground-state population of the source qubit
            (Q2 in the paper's figure), shape (len(detunings), len(pulses)).
        target_population: ground-state population of the target qubit (Q4).
    """

    pulse_lengths_ns: Tuple[float, ...]
    detunings_mhz: Tuple[float, ...]
    source_population: np.ndarray
    target_population: np.ndarray

    def on_resonance_slice(self) -> Tuple[np.ndarray, np.ndarray]:
        """Populations at the detuning closest to zero (the calibration cut)."""
        index = int(np.argmin(np.abs(np.asarray(self.detunings_mhz))))
        return self.source_population[index], self.target_population[index]

    def oscillation_period_ns(self) -> float:
        """Estimated full-exchange period from the on-resonance slice.

        The first maximum of the target-qubit excitation marks half an
        exchange period (full transfer), so the period is twice that time.
        """
        _, target = self.on_resonance_slice()
        excited_target = 1.0 - target
        pulses = np.asarray(self.pulse_lengths_ns)
        half_period_index = int(np.argmax(excited_target))
        return 2.0 * float(pulses[half_period_index])


def _chevron_row(
    model: SnailExchangeModel, detuning: float, pulses: Tuple[float, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Populations along one detuning row (module-level for pickling)."""
    source = np.zeros(len(pulses))
    target = np.zeros(len(pulses))
    for col, pulse in enumerate(pulses):
        source[col], target[col] = model.populations(pulse, detuning)
    return source, target


def chevron_sweep(
    model: SnailExchangeModel = SnailExchangeModel(),
    pulse_lengths_ns: Sequence[float] = tuple(np.linspace(0.0, 2000.0, 201)),
    detunings_mhz: Sequence[float] = tuple(np.linspace(-1.5, 1.5, 61)),
    runner: "ExperimentRunner" = None,
) -> ChevronData:
    """Sweep pulse length and pump detuning (paper Fig. 6 axes).

    ``runner`` optionally fans the detuning rows out over worker processes;
    rows are independent, so the grid is identical either way.
    """
    pulses = tuple(float(p) for p in pulse_lengths_ns)
    detunings = tuple(float(d) for d in detunings_mhz)
    tasks = [(model, detuning, pulses) for detuning in detunings]
    if runner is None:
        from repro.runtime.runner import serial_runner

        runner = serial_runner()
    rows = runner.map(
        _chevron_row,
        tasks,
        labels=[f"detuning {detuning:+.3f} MHz" for detuning in detunings],
    )
    source = np.zeros((len(detunings), len(pulses)))
    target = np.zeros_like(source)
    for row, (source_row, target_row) in enumerate(rows):
        source[row] = source_row
        target[row] = target_row
    return ChevronData(
        pulse_lengths_ns=pulses,
        detunings_mhz=detunings,
        source_population=source,
        target_population=target,
    )


def render_ascii_chevron(data: ChevronData, width: int = 64, height: int = 21) -> str:
    """Coarse ASCII rendering of the target-qubit chevron (for the example)."""
    shades = " .:-=+*#%@"
    detunings = np.asarray(data.detunings_mhz)
    pulses = np.asarray(data.pulse_lengths_ns)
    rows = np.linspace(0, len(detunings) - 1, height).astype(int)
    cols = np.linspace(0, len(pulses) - 1, width).astype(int)
    lines = []
    for row in rows:
        populations = data.target_population[row, cols]
        excited = 1.0 - populations
        line = "".join(
            shades[min(len(shades) - 1, int(value * (len(shades) - 1) + 0.5))]
            for value in excited
        )
        lines.append(f"{detunings[row]:+5.2f} MHz |{line}|")
    footer = f"pulse length {pulses[0]:.0f} .. {pulses[-1]:.0f} ns ->"
    return "\n".join(lines + [footer])
