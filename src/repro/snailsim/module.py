"""Multi-mode SNAIL module: simultaneous pumps, parallel gates, ≥3-mode gates.

Paper Section 4.1 makes two claims about the SNAIL that go beyond the
single two-qubit exchange of :mod:`repro.snailsim.device`:

* because third-order parametric gates have very small static cross-Kerr,
  *multiple gates can run in parallel inside the same neighbourhood*, and
* *three- or more-mode gates* can be created by applying several
  simultaneous drives to one SNAIL.

This module provides a small Hamiltonian-level simulator of one SNAIL
module (up to ~6 qubits, dense ``2^n`` matrices) that lets the tests and
benchmarks check both claims quantitatively:

* each pump tone at the difference frequency ``|w_i - w_j|`` activates the
  exchange term ``g (s+_i s-_j + h.c.)`` (paper Eq. 8);
* a pump also drives every *other* qubit pair off-resonantly; the spurious
  strength falls off with a Lorentzian in the pump-to-transition detuning,
  which is how frequency crowding shows up dynamically;
* driving several pumps at once simply sums the activated terms, so
  disjoint pairs evolve as a tensor product of partial iSWAPs (parallel
  gates), while pumps sharing a qubit generate a genuine three-mode
  interaction.

Basis convention: the module unitary acts on the module's qubits with
qubit 0 as the *least-significant* bit of the computational-basis index
(the same little-endian convention as :mod:`repro.simulator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

Pair = Tuple[int, int]

_SIGMA_PLUS = np.array([[0.0, 0.0], [1.0, 0.0]], dtype=complex)  # |1><0|
_SIGMA_MINUS = _SIGMA_PLUS.conj().T


def _embed(op: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Embed a single-qubit operator at ``qubit`` (little-endian) into the register."""
    result = np.array([[1.0]], dtype=complex)
    for index in range(num_qubits):
        factor = op if index == qubit else np.eye(2, dtype=complex)
        # Little-endian: qubit 0 is the least-significant (rightmost) factor.
        result = np.kron(factor, result)
    return result


@dataclass(frozen=True)
class PumpTone:
    """One microwave pump applied to the SNAIL.

    Attributes:
        pair: the qubit pair whose difference frequency the pump targets.
        strength_mhz: effective exchange strength ``g_eff / 2 pi`` in MHz.
        detuning_mhz: offset of the pump from the exact difference frequency.
    """

    pair: Pair
    strength_mhz: float = 0.5
    detuning_mhz: float = 0.0


@dataclass
class SnailModule:
    """One SNAIL coupled to ``num_qubits`` qubits with fixed frequencies.

    Attributes:
        qubit_frequencies_ghz: transition frequency of every qubit; the
            defaults spread 4-qubit modules over ~1.5 GHz as in the
            prototype module of paper Fig. 5(c).
        crosstalk_linewidth_mhz: Lorentzian linewidth governing how strongly
            a pump drives transitions it is detuned from; smaller values
            mean better frequency selectivity.
        t1_us: common energy-relaxation time used for fidelity envelopes.
    """

    qubit_frequencies_ghz: Sequence[float] = (4.5, 5.0, 5.6, 6.3)
    crosstalk_linewidth_mhz: float = 1.0
    t1_us: float = 20.0

    def __post_init__(self) -> None:
        if len(self.qubit_frequencies_ghz) < 2:
            raise ValueError("a SNAIL module needs at least two qubits")
        if len(set(np.round(self.qubit_frequencies_ghz, 9))) != len(self.qubit_frequencies_ghz):
            raise ValueError("qubit frequencies must be distinct")
        if self.crosstalk_linewidth_mhz <= 0.0:
            raise ValueError("crosstalk linewidth must be positive")
        if self.t1_us <= 0.0:
            raise ValueError("T1 must be positive")

    # -- structure -------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits coupled to this SNAIL."""
        return len(self.qubit_frequencies_ghz)

    def pairs(self) -> List[Pair]:
        """Every unordered qubit pair of the module."""
        n = self.num_qubits
        return [(a, b) for a in range(n) for b in range(a + 1, n)]

    def difference_frequency_ghz(self, pair: Pair) -> float:
        """The |w_i - w_j| difference frequency a pump must hit to drive ``pair``."""
        a, b = pair
        return abs(self.qubit_frequencies_ghz[a] - self.qubit_frequencies_ghz[b])

    def minimum_difference_separation_mhz(self) -> float:
        """Smallest spacing between any two distinct difference frequencies.

        The SNAIL's addressability requirement (paper Section 4.1): every
        pair must own a unique difference frequency; this is the margin.
        """
        differences = sorted(self.difference_frequency_ghz(pair) for pair in self.pairs())
        gaps = [
            (b - a) * 1e3 for a, b in zip(differences, differences[1:])
        ]
        return float(min(gaps)) if gaps else np.inf

    # -- pump -> effective couplings ---------------------------------------------

    def effective_couplings(self, pumps: Sequence[PumpTone]) -> Dict[Pair, float]:
        """Exchange strength (MHz) on every pair induced by a set of pumps.

        Each pump drives its target pair at full strength (reduced by its
        own detuning) and every other pair with a Lorentzian suppression in
        the detuning between the pump frequency and that pair's difference
        frequency — the dynamical face of frequency crowding.
        """
        couplings: Dict[Pair, float] = {}
        linewidth = self.crosstalk_linewidth_mhz
        for pump in pumps:
            target = tuple(sorted(pump.pair))
            if target[0] < 0 or target[1] >= self.num_qubits:
                raise ValueError(f"pump pair {pump.pair} outside the module")
            pump_frequency_ghz = self.difference_frequency_ghz(target) + pump.detuning_mhz * 1e-3
            for pair in self.pairs():
                detuning_mhz = abs(
                    pump_frequency_ghz - self.difference_frequency_ghz(pair)
                ) * 1e3
                suppression = linewidth ** 2 / (linewidth ** 2 + detuning_mhz ** 2)
                strength = pump.strength_mhz * suppression
                if strength < 1e-6:
                    continue
                couplings[pair] = couplings.get(pair, 0.0) + strength
        return couplings

    # -- Hamiltonian and evolution ---------------------------------------------------

    def exchange_hamiltonian(self, couplings: Dict[Pair, float]) -> np.ndarray:
        """Module Hamiltonian (rad/ns) for the given pair -> strength (MHz) map."""
        dim = 2 ** self.num_qubits
        hamiltonian = np.zeros((dim, dim), dtype=complex)
        for (a, b), strength_mhz in couplings.items():
            g = 2.0 * np.pi * strength_mhz * 1e-3  # rad / ns
            term = _embed(_SIGMA_PLUS, a, self.num_qubits) @ _embed(
                _SIGMA_MINUS, b, self.num_qubits
            )
            hamiltonian += g * (term + term.conj().T)
        return hamiltonian

    def evolve(self, pumps: Sequence[PumpTone], duration_ns: float) -> np.ndarray:
        """Unitary generated by driving all ``pumps`` simultaneously.

        Uses the paper's sign convention ``U(t) = exp(+i H t)`` (Eq. 9), so
        that a single on-resonance pump of length ``pi / (2 n g)`` produces
        exactly the :class:`~repro.gates.NthRootISwapGate` matrix.
        """
        if duration_ns < 0.0:
            raise ValueError("duration must be non-negative")
        hamiltonian = self.exchange_hamiltonian(self.effective_couplings(pumps))
        eigenvalues, eigenvectors = np.linalg.eigh(hamiltonian)
        phases = np.exp(1j * eigenvalues * duration_ns)
        return (eigenvectors * phases) @ eigenvectors.conj().T

    # -- parallel gates ------------------------------------------------------------

    def pulse_length_for_root(self, root: int, strength_mhz: float = 0.5) -> float:
        """Pulse length (ns) for which one pump realises the ``root``-th root of iSWAP."""
        if root < 1:
            raise ValueError("root must be a positive integer")
        g = 2.0 * np.pi * strength_mhz * 1e-3
        return float((np.pi / (2.0 * root)) / g)

    def parallel_gate_unitary(
        self, pairs: Sequence[Pair], root: int = 2, strength_mhz: float = 0.5
    ) -> np.ndarray:
        """Drive one pump per pair simultaneously for an ``n``-root-iSWAP pulse."""
        pumps = [PumpTone(pair=tuple(sorted(pair)), strength_mhz=strength_mhz) for pair in pairs]
        duration = self.pulse_length_for_root(root, strength_mhz)
        return self.evolve(pumps, duration)

    def ideal_parallel_unitary(self, pairs: Sequence[Pair], root: int = 2) -> np.ndarray:
        """Product of ideal ``n``-root iSWAPs applied pair by pair (identity elsewhere).

        For disjoint pairs this equals the tensor product of the individual
        gates — the intended effect of driving the pumps in parallel.  For
        pairs sharing a qubit the gates do not commute, so the sequential
        product differs from the simultaneous drive; that gap is exactly
        what :meth:`parallel_gate_fidelity` measures.
        """
        angle = np.pi / (2.0 * root)
        dim = 2 ** self.num_qubits
        result = np.eye(dim, dtype=complex)
        for pair in pairs:
            a, b = tuple(sorted(pair))
            term = _embed(_SIGMA_PLUS, a, self.num_qubits) @ _embed(
                _SIGMA_MINUS, b, self.num_qubits
            )
            generator = term + term.conj().T
            eigenvalues, eigenvectors = np.linalg.eigh(generator)
            phases = np.exp(1j * eigenvalues * angle)
            gate = (eigenvectors * phases) @ eigenvectors.conj().T
            result = gate @ result
        return result

    def parallel_gate_fidelity(
        self, pairs: Sequence[Pair], root: int = 2, strength_mhz: float = 0.5
    ) -> float:
        """Process-style fidelity of the simultaneous drive against the ideal gates.

        Uses the phase-insensitive normalised Hilbert-Schmidt overlap
        |Tr(U_ideal^dagger U_driven)| / dim, the same measure as paper Eq. 11.
        """
        driven = self.parallel_gate_unitary(pairs, root=root, strength_mhz=strength_mhz)
        ideal = self.ideal_parallel_unitary(pairs, root=root)
        dim = driven.shape[0]
        return float(abs(np.trace(ideal.conj().T @ driven)) / dim)

    # -- three-mode gates --------------------------------------------------------------

    def three_mode_unitary(
        self, hub: int, partners: Tuple[int, int], strength_mhz: float = 0.5, duration_ns: Optional[float] = None
    ) -> np.ndarray:
        """Drive two pumps sharing ``hub`` simultaneously (a >=3-mode gate).

        With both exchanges active the single excitation on the hub spreads
        coherently over the two partners — the three-mode interaction the
        paper says the SNAIL can create with simultaneous drives.
        """
        a, b = partners
        if len({hub, a, b}) != 3:
            raise ValueError("hub and partners must be three distinct qubits")
        pumps = [
            PumpTone(pair=tuple(sorted((hub, a))), strength_mhz=strength_mhz),
            PumpTone(pair=tuple(sorted((hub, b))), strength_mhz=strength_mhz),
        ]
        if duration_ns is None:
            # With two equal drives the hub's excitation fully transfers to the
            # symmetric partner state after g_total t = pi / 2 with
            # g_total = sqrt(2) g.
            g = 2.0 * np.pi * strength_mhz * 1e-3
            duration_ns = (np.pi / 2.0) / (np.sqrt(2.0) * g)
        return self.evolve(pumps, duration_ns)

    def three_mode_excitation_spread(
        self, hub: int, partners: Tuple[int, int], strength_mhz: float = 0.5, duration_ns: Optional[float] = None
    ) -> Dict[int, float]:
        """Excitation probability per qubit after the three-mode drive from ``|1_hub>``."""
        unitary = self.three_mode_unitary(hub, partners, strength_mhz, duration_ns)
        dim = 2 ** self.num_qubits
        initial = np.zeros(dim, dtype=complex)
        initial[1 << hub] = 1.0
        final = unitary @ initial
        probabilities = np.abs(final) ** 2
        spread: Dict[int, float] = {}
        for qubit in range(self.num_qubits):
            mask = 1 << qubit
            spread[qubit] = float(
                sum(probabilities[index] for index in range(dim) if index & mask)
            )
        return spread

    # -- fidelity envelope ----------------------------------------------------------------

    def decoherence_envelope(self, duration_ns: float) -> float:
        """Common ``exp(-t / T1)`` envelope, as in the two-qubit device model."""
        return float(np.exp(-(duration_ns * 1e-3) / self.t1_us))
