"""Qubit coupling topologies: baselines, hypercubes and SNAIL machines."""

from repro.topology.coupling import CouplingMap
from repro.topology.lattices import (
    heavy_hex_lattice,
    hex_lattice,
    hypercube,
    square_lattice,
    square_lattice_alt_diagonals,
    trimmed_hypercube,
)
from repro.topology.snail import (
    SnailModule,
    corral_modules,
    corral_topology,
    modules_to_coupling_map,
    tree_modules,
    tree_round_robin_topology,
    tree_topology,
)
from repro.topology.snail_extensions import (
    corral_lattice_topology,
    heterogeneous_corral_topology,
)
from repro.topology.analysis import (
    TopologyProperties,
    format_properties_table,
    properties_table,
    topology_properties,
)
from repro.topology.registry import (
    available_topologies,
    get_topology,
    large_topologies,
    small_topologies,
)

__all__ = [
    "CouplingMap",
    "heavy_hex_lattice",
    "hex_lattice",
    "hypercube",
    "square_lattice",
    "square_lattice_alt_diagonals",
    "trimmed_hypercube",
    "SnailModule",
    "corral_modules",
    "corral_topology",
    "corral_lattice_topology",
    "heterogeneous_corral_topology",
    "modules_to_coupling_map",
    "tree_modules",
    "tree_round_robin_topology",
    "tree_topology",
    "TopologyProperties",
    "format_properties_table",
    "properties_table",
    "topology_properties",
    "available_topologies",
    "get_topology",
    "large_topologies",
    "small_topologies",
]
