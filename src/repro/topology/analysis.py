"""Graph-structural analysis of topologies (paper Tables 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from repro.topology.coupling import CouplingMap


@dataclass(frozen=True)
class TopologyProperties:
    """The row format of the paper's Tables 1 and 2."""

    name: str
    num_qubits: int
    diameter: float
    average_distance: float
    average_connectivity: float

    def as_row(self) -> Dict[str, float]:
        """Dictionary row used by the experiment harness and benchmarks."""
        return {
            "name": self.name,
            "qubits": self.num_qubits,
            "diameter": self.diameter,
            "avg_distance": round(self.average_distance, 2),
            "avg_connectivity": round(self.average_connectivity, 2),
        }


def topology_properties(coupling_map: CouplingMap) -> TopologyProperties:
    """Compute the Table-1/2 row for a topology."""
    return TopologyProperties(
        name=coupling_map.name,
        num_qubits=coupling_map.num_qubits,
        diameter=coupling_map.diameter(),
        average_distance=coupling_map.average_distance(),
        average_connectivity=coupling_map.average_connectivity(),
    )


def properties_table(
    coupling_maps: Mapping[str, CouplingMap]
) -> List[TopologyProperties]:
    """Compute properties for a named family of topologies."""
    return [
        TopologyProperties(
            name=name,
            num_qubits=cmap.num_qubits,
            diameter=cmap.diameter(),
            average_distance=cmap.average_distance(),
            average_connectivity=cmap.average_connectivity(),
        )
        for name, cmap in coupling_maps.items()
    ]


def format_properties_table(rows: Iterable[TopologyProperties]) -> str:
    """Render a list of topology properties as a fixed-width text table."""
    header = f"{'Topology':<24}{'Qubits':>8}{'Dia.':>8}{'AvgD':>8}{'AvgC':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<24}{row.num_qubits:>8}{row.diameter:>8.1f}"
            f"{row.average_distance:>8.2f}{row.average_connectivity:>8.2f}"
        )
    return "\n".join(lines)
