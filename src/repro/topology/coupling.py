"""Coupling map: the qubit-connectivity graph of a quantum computer.

The paper models a machine as a graph ``G = {V, E}`` whose vertices are
physical qubits and whose edges are pairs that can host a two-qubit gate
(Section 2.4).  :class:`CouplingMap` wraps a :class:`networkx.Graph` with
the analysis helpers the evaluation needs (distance matrix, diameter,
average distance, average connectivity).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

try:  # pragma: no cover - exercised implicitly on import
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path as _csgraph_shortest_path
except ImportError:  # pragma: no cover - scipy ships with the toolchain
    csr_matrix = None
    _csgraph_shortest_path = None


def _bfs_distance_matrix(adjacency: np.ndarray) -> np.ndarray:
    """All-pairs hop distances by frontier BFS on a boolean adjacency matrix.

    Fallback used when scipy is unavailable: each iteration advances every
    source's frontier one hop via a single boolean matrix product, so the
    loop runs ``diameter`` times rather than ``n**2``.
    """
    n = adjacency.shape[0]
    distance = np.full((n, n), np.inf)
    np.fill_diagonal(distance, 0.0)
    frontier = np.eye(n, dtype=bool)
    visited = frontier.copy()
    hops = 0
    while frontier.any():
        hops += 1
        reached = (frontier @ adjacency) & ~visited
        if not reached.any():
            break
        distance[reached] = hops
        visited |= reached
        frontier = reached
    return distance


class CouplingMap:
    """Undirected qubit-connectivity graph with cached distance queries."""

    def __init__(
        self,
        edges: Iterable[Tuple[int, int]],
        num_qubits: Optional[int] = None,
        name: str = "coupling",
    ):
        edge_list = [(int(a), int(b)) for a, b in edges]
        for a, b in edge_list:
            if a == b:
                raise ValueError("self-loops are not valid couplings")
        if num_qubits is None:
            num_qubits = max((max(a, b) for a, b in edge_list), default=-1) + 1
        self._num_qubits = int(num_qubits)
        self._name = name
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(self._num_qubits))
        self._graph.add_edges_from(edge_list)
        self._distance: Optional[np.ndarray] = None
        self._adjacency: Optional[np.ndarray] = None
        self._neighbor_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._edge_index: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._densest_cache: Dict[Tuple[int, str], List[int]] = {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: nx.Graph, name: str = "coupling") -> "CouplingMap":
        """Build from an arbitrary networkx graph (nodes are relabelled 0..n-1)."""
        mapping = {
            node: index
            for index, node in enumerate(sorted(graph.nodes(), key=str))
        }
        edges = [(mapping[a], mapping[b]) for a, b in graph.edges()]
        return cls(edges, num_qubits=len(mapping), name=name)

    @classmethod
    def full(cls, num_qubits: int, name: str = "full") -> "CouplingMap":
        """All-to-all connectivity (useful as an idealised baseline)."""
        edges = [
            (a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
        ]
        return cls(edges, num_qubits=num_qubits, name=name)

    @classmethod
    def line(cls, num_qubits: int, name: str = "line") -> "CouplingMap":
        """A 1-D chain of qubits."""
        edges = [(i, i + 1) for i in range(num_qubits - 1)]
        return cls(edges, num_qubits=num_qubits, name=name)

    @classmethod
    def ring(cls, num_qubits: int, name: str = "ring") -> "CouplingMap":
        """A 1-D ring of qubits."""
        edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
        return cls(edges, num_qubits=num_qubits, name=name)

    # -- basic structure -------------------------------------------------------

    @property
    def name(self) -> str:
        """Topology name used in reports."""
        return self._name

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return self._num_qubits

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (treat as read-only)."""
        return self._graph

    def edges(self) -> List[Tuple[int, int]]:
        """Sorted list of couplings."""
        return sorted(tuple(sorted(edge)) for edge in self._graph.edges())

    def num_edges(self) -> int:
        """Number of couplings."""
        return self._graph.number_of_edges()

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        """Physical qubits coupled to ``qubit``."""
        return tuple(sorted(self._graph.neighbors(qubit)))

    def degree(self, qubit: int) -> int:
        """Number of couplings incident on ``qubit``."""
        return int(self._graph.degree[qubit])

    def has_edge(self, qubit_a: int, qubit_b: int) -> bool:
        """True if the two qubits are directly coupled."""
        return self._graph.has_edge(qubit_a, qubit_b)

    def is_connected(self) -> bool:
        """True if every qubit can reach every other qubit."""
        return nx.is_connected(self._graph)

    # -- metrics ---------------------------------------------------------------

    def adjacency_matrix(self) -> np.ndarray:
        """Boolean adjacency matrix (cached, read-only).

        ``adjacency_matrix()[a, b]`` answers :meth:`has_edge` without a
        graph lookup — the form the vectorized routers consume.
        """
        if self._adjacency is None:
            n = self._num_qubits
            adjacency = np.zeros((n, n), dtype=bool)
            for a, b in self._graph.edges():
                adjacency[a, b] = True
                adjacency[b, a] = True
            adjacency.setflags(write=False)
            self._adjacency = adjacency
        return self._adjacency

    def neighbor_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR neighbor lists ``(indptr, indices)`` (cached, read-only).

        The neighbors of qubit ``q`` are
        ``indices[indptr[q]:indptr[q + 1]]``, sorted ascending — the same
        order :meth:`neighbors` returns.
        """
        if self._neighbor_csr is None:
            adjacency = self.adjacency_matrix()
            counts = adjacency.sum(axis=1)
            indptr = np.zeros(self._num_qubits + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.nonzero(adjacency)[1].astype(np.int64)
            indptr.setflags(write=False)
            indices.setflags(write=False)
            self._neighbor_csr = (indptr, indices)
        return self._neighbor_csr

    def edge_index_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edge table + per-qubit incidence ``(edge_pairs, indptr, edge_ids)``.

        ``edge_pairs`` is the (E, 2) array of couplings in lexicographic
        ``(min, max)`` order (edge id = row index); the edges incident to
        qubit ``q`` are ``edge_ids[indptr[q]:indptr[q + 1]]``.  Cached and
        read-only — the routers mark incident edges in an edge-id mask
        instead of deduplicating candidate tuples per SWAP decision.
        """
        if self._edge_index is None:
            edge_pairs = np.asarray(self.edges(), dtype=np.int64).reshape(-1, 2)
            num_edges = len(edge_pairs)
            endpoints = np.concatenate((edge_pairs[:, 0], edge_pairs[:, 1]))
            ids = np.tile(np.arange(num_edges, dtype=np.int64), 2)
            order = np.argsort(endpoints, kind="stable")
            counts = np.bincount(endpoints, minlength=self._num_qubits)
            indptr = np.zeros(self._num_qubits + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            edge_ids = ids[order]
            for array in (edge_pairs, indptr, edge_ids):
                array.setflags(write=False)
            self._edge_index = (edge_pairs, indptr, edge_ids)
        return self._edge_index

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (hops); cached, read-only.

        Computed via ``scipy.sparse.csgraph`` (vectorized BFS fallback when
        scipy is absent) instead of networkx dict-of-dicts.  Connected
        graphs are stored as compact ``uint16`` — the form every router
        gathers from millions of times per sweep; a disconnected graph
        keeps the float matrix so unreachable pairs stay ``inf``.
        """
        if self._distance is None:
            n = self._num_qubits
            if n == 0:
                matrix = np.zeros((0, 0))
            elif _csgraph_shortest_path is not None:
                sparse = csr_matrix(
                    self.adjacency_matrix().astype(np.int8), shape=(n, n)
                )
                matrix = _csgraph_shortest_path(
                    sparse, method="D", directed=False, unweighted=True
                )
            else:
                matrix = _bfs_distance_matrix(self.adjacency_matrix())
            if matrix.size and np.all(np.isfinite(matrix)) and matrix.max() < 2**16:
                matrix = matrix.astype(np.uint16)
            matrix.setflags(write=False)
            self._distance = matrix
        return self._distance

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Shortest-path distance between two qubits."""
        return int(self.distance_matrix()[qubit_a, qubit_b])

    def diameter(self) -> float:
        """Largest shortest-path distance (paper Tables 1-2, "Dia.")."""
        return float(np.max(self.distance_matrix()))

    def average_distance(self) -> float:
        """Mean pairwise distance (Tables 1-2, "AvgD").

        Follows the paper's convention of averaging over *all* ordered
        pairs including a qubit with itself (denominator ``n^2``); with the
        more common ``n (n - 1)`` denominator the published Table-1 values
        (e.g. 2.5 for the 4x4 Square-Lattice) are not reproduced.
        """
        matrix = self.distance_matrix()
        n = self._num_qubits
        if n < 1:
            return 0.0
        total = np.sum(matrix) - np.trace(matrix)
        return float(total / (n * n))

    def average_connectivity(self) -> float:
        """Mean qubit degree (Tables 1-2, "AvgC")."""
        degrees = [d for _, d in self._graph.degree()]
        return float(np.mean(degrees)) if degrees else 0.0

    def shortest_path(self, qubit_a: int, qubit_b: int) -> List[int]:
        """One shortest path between two qubits (inclusive)."""
        return nx.shortest_path(self._graph, qubit_a, qubit_b)

    def subgraph(self, qubits: Sequence[int], name: Optional[str] = None) -> "CouplingMap":
        """Induced subgraph on the given qubits (relabelled 0..k-1)."""
        qubits = list(qubits)
        index = {q: i for i, q in enumerate(qubits)}
        edges = [
            (index[a], index[b])
            for a, b in self._graph.edges()
            if a in index and b in index
        ]
        return CouplingMap(edges, num_qubits=len(qubits), name=name or f"{self._name}_sub")

    def densest_subset(self, size: int, engine: str = "vector") -> List[int]:
        """Greedy densest connected subset of ``size`` qubits.

        Used by the dense layout pass: starting from the highest-degree
        qubit, repeatedly add the frontier qubit with the most neighbours
        already inside the subset.

        ``engine="vector"`` grows every candidate subset with incremental
        NumPy inside-neighbour counters over :meth:`adjacency_matrix`;
        ``engine="reference"`` is the original per-candidate Python loop.
        Both engines select bit-identical subsets (the greedy tie-break key
        ends in ``-q``, so every choice is unique); results are memoized
        per ``(size, engine)`` — the subset for a device is a pure function
        of its topology, and one sweep asks for the same few sizes
        thousands of times.
        """
        if engine not in ("vector", "reference"):
            raise ValueError(f"unknown engine {engine!r}; engines are ('vector', 'reference')")
        if size > self._num_qubits:
            raise ValueError("requested subset larger than the device")
        if size == self._num_qubits:
            return list(range(self._num_qubits))
        cached = self._densest_cache.get((size, engine))
        if cached is not None:
            return list(cached)
        if engine == "vector":
            subset = self._densest_subset_vector(size)
        else:
            subset = self._densest_subset_reference(size)
        self._densest_cache[(size, engine)] = subset
        return list(subset)

    def _densest_subset_vector(self, size: int) -> List[int]:
        """Vectorized greedy growth: one argmax over the frontier per step.

        The greedy choice maximises ``(inside_neighbours, degree, -q)``;
        the three integer keys are packed into a single int64 score so the
        whole frontier is compared in one reduction.
        """
        n = self._num_qubits
        adjacency = self.adjacency_matrix().astype(np.int64)
        degrees = adjacency.sum(axis=1)
        seeds = np.argsort(-degrees, kind="stable")[: max(4, n // 8)]
        # Pack (inside, degree, n - q) lexicographically; every component
        # is bounded by n, so base n + 1 keeps the packing collision-free.
        base = np.int64(n + 1)
        degree_and_index = degrees * base + (np.int64(n) - np.arange(n, dtype=np.int64))
        best_subset: Optional[np.ndarray] = None
        best_internal = -1
        for seed in seeds:
            in_subset = np.zeros(n, dtype=bool)
            inside = np.zeros(n, dtype=np.int64)
            in_subset[seed] = True
            inside += adjacency[seed]
            internal = 0
            for _ in range(size - 1):
                frontier = np.flatnonzero((inside > 0) & ~in_subset)
                if not len(frontier):
                    remaining = np.flatnonzero(~in_subset)
                    if not len(remaining):
                        break
                    frontier = remaining[:1]
                scores = inside[frontier] * (base * base) + degree_and_index[frontier]
                choice = int(frontier[np.argmax(scores)])
                internal += int(inside[choice])
                in_subset[choice] = True
                inside += adjacency[choice]
            if internal > best_internal:
                best_internal = internal
                best_subset = np.flatnonzero(in_subset)
        assert best_subset is not None
        return [int(q) for q in best_subset]

    def _densest_subset_reference(self, size: int) -> List[int]:
        """The original per-candidate Python-loop growth (parity oracle)."""
        best_subset: List[int] = []
        best_internal = -1
        degrees = dict(self._graph.degree())
        seeds = sorted(degrees, key=lambda q: -degrees[q])[: max(4, self._num_qubits // 8)]
        for seed in seeds:
            subset = {seed}
            while len(subset) < size:
                frontier = {
                    neighbor
                    for node in subset
                    for neighbor in self._graph.neighbors(node)
                } - subset
                if not frontier:
                    remaining = [q for q in range(self._num_qubits) if q not in subset]
                    frontier = set(remaining[:1])
                    if not frontier:
                        break
                choice = max(
                    frontier,
                    key=lambda q: (
                        sum(1 for nb in self._graph.neighbors(q) if nb in subset),
                        degrees[q],
                        -q,
                    ),
                )
                subset.add(choice)
            internal = sum(
                1 for a, b in self._graph.edges() if a in subset and b in subset
            )
            if internal > best_internal:
                best_internal = internal
                best_subset = sorted(subset)
        return best_subset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CouplingMap(name={self._name!r}, qubits={self._num_qubits}, "
            f"edges={self.num_edges()})"
        )
