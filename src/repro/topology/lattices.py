"""Planar lattice topologies used by today's commercial machines.

These are the comparison baselines of the paper (Section 2.4.4, Fig. 2):

* Square-Lattice — Google-style nearest-neighbour grid;
* Hex-Lattice — hexagonal (degree-3) lattice;
* Heavy-Hex — IBM's current topology: a hexagonal lattice with an extra
  qubit inserted on every edge;
* Lattice + alternating diagonals — IBM's early "Penguin"-era attempt at a
  denser planar lattice.

The 16/20-qubit and 84-qubit instances used in the paper's Tables 1 and 2
are provided by :mod:`repro.topology.registry`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.topology.coupling import CouplingMap


def _grid_index(row: int, col: int, cols: int) -> int:
    return row * cols + col


def square_lattice(rows: int, cols: int, name: Optional[str] = None) -> CouplingMap:
    """Nearest-neighbour square lattice of ``rows x cols`` qubits."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges: List[Tuple[int, int]] = []
    for row in range(rows):
        for col in range(cols):
            here = _grid_index(row, col, cols)
            if col + 1 < cols:
                edges.append((here, _grid_index(row, col + 1, cols)))
            if row + 1 < rows:
                edges.append((here, _grid_index(row + 1, col, cols)))
    return CouplingMap(
        edges, num_qubits=rows * cols, name=name or f"square-lattice-{rows}x{cols}"
    )


def square_lattice_alt_diagonals(
    rows: int, cols: int, name: Optional[str] = None
) -> CouplingMap:
    """Square lattice with both diagonals added on alternating tiles.

    Mirrors IBM's early "Penguin" layouts (paper Fig. 2c): every other unit
    cell of the grid (checkerboard pattern) receives its two diagonal
    couplings.
    """
    base = square_lattice(rows, cols)
    edges = list(base.edges())
    for row in range(rows - 1):
        for col in range(cols - 1):
            if (row + col) % 2 == 0:
                a = _grid_index(row, col, cols)
                b = _grid_index(row + 1, col + 1, cols)
                c = _grid_index(row, col + 1, cols)
                d = _grid_index(row + 1, col, cols)
                edges.append((a, b))
                edges.append((c, d))
    return CouplingMap(
        edges,
        num_qubits=rows * cols,
        name=name or f"lattice-altdiag-{rows}x{cols}",
    )


def _trim_to_size(graph: nx.Graph, num_qubits: int) -> nx.Graph:
    """Keep ``num_qubits`` nodes forming a compact connected patch.

    Nodes are taken in BFS order from a graph centre (a node of minimum
    eccentricity), which yields a roughly round patch instead of a long
    strip and therefore keeps the trimmed lattice's diameter close to that
    of an ideally shaped instance.
    """
    if graph.number_of_nodes() < num_qubits:
        raise ValueError(
            f"parent lattice has only {graph.number_of_nodes()} nodes, "
            f"cannot trim to {num_qubits}"
        )
    eccentricity = nx.eccentricity(graph)
    start = min(sorted(graph.nodes(), key=str), key=lambda n: eccentricity[n])
    order = [start] + [v for _, v in nx.bfs_edges(graph, start)]
    keep = order[:num_qubits]
    return graph.subgraph(keep).copy()


def hex_lattice(num_qubits: int, name: Optional[str] = None) -> CouplingMap:
    """Hexagonal (degree-<=3) lattice trimmed to ``num_qubits`` qubits."""
    rows = cols = 1
    while True:
        candidate = nx.hexagonal_lattice_graph(rows, cols)
        if candidate.number_of_nodes() >= num_qubits:
            break
        if rows <= cols:
            rows += 1
        else:
            cols += 1
    trimmed = _trim_to_size(candidate, num_qubits)
    return CouplingMap.from_graph(trimmed, name=name or f"hex-lattice-{num_qubits}")


def heavy_hex_lattice(num_qubits: int, name: Optional[str] = None) -> CouplingMap:
    """Heavy-hex lattice (hexagonal lattice with edge qubits), trimmed.

    The "heavy" construction inserts one additional qubit on every edge of
    a hexagonal lattice, which is how IBM describes its current topology
    [Chamberland et al., PRX 10, 011022 (2020)].
    """
    rows = cols = 1
    while True:
        base = nx.hexagonal_lattice_graph(rows, cols)
        heavy = _subdivide_edges(base)
        if heavy.number_of_nodes() >= num_qubits:
            break
        if rows <= cols:
            rows += 1
        else:
            cols += 1
    trimmed = _trim_to_size(heavy, num_qubits)
    return CouplingMap.from_graph(trimmed, name=name or f"heavy-hex-{num_qubits}")


def _subdivide_edges(graph: nx.Graph) -> nx.Graph:
    """Insert one new node in the middle of every edge of ``graph``."""
    heavy = nx.Graph()
    heavy.add_nodes_from(graph.nodes())
    for index, (a, b) in enumerate(sorted(graph.edges(), key=str)):
        middle = ("edge", index)
        heavy.add_node(middle)
        heavy.add_edge(a, middle)
        heavy.add_edge(middle, b)
    return heavy


def hypercube(dimension: int, name: Optional[str] = None) -> CouplingMap:
    """The ``dimension``-dimensional hypercube of ``2**dimension`` qubits."""
    if dimension < 1:
        raise ValueError("hypercube dimension must be >= 1")
    num_qubits = 2 ** dimension
    edges = []
    for node in range(num_qubits):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if other > node:
                edges.append((node, other))
    return CouplingMap(edges, num_qubits=num_qubits, name=name or f"hypercube-{dimension}d")


def trimmed_hypercube(num_qubits: int, name: Optional[str] = None) -> CouplingMap:
    """A hypercube reduced to ``num_qubits`` nodes.

    The paper scales the hypercube down to 84 qubits while "maintaining the
    regular structure".  We keep the ``num_qubits`` smallest binary codes of
    the enclosing hypercube and the edges between them, which preserves the
    recursive sub-cube structure (codes 0..2^k-1 always form a full
    k-dimensional sub-cube) and keeps the graph connected.
    """
    dimension = 1
    while 2 ** dimension < num_qubits:
        dimension += 1
    edges = []
    for node in range(num_qubits):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if node < other < num_qubits:
                edges.append((node, other))
    return CouplingMap(
        edges, num_qubits=num_qubits, name=name or f"hypercube-{num_qubits}"
    )
