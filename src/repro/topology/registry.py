"""Named topology instances used throughout the paper's evaluation.

Two machine scales are studied (paper Section 5):

* the *small* machines of Table 1 (16-20 qubits, the scale of the physical
  SNAIL prototype), and
* the *scaled* machines of Table 2 (84 qubits).

The constructors here pin down the concrete instances — grid shapes, trim
sizes, tree depths — so that every experiment in
:mod:`repro.experiments` refers to the same graphs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.topology.coupling import CouplingMap
from repro.topology.lattices import (
    heavy_hex_lattice,
    hex_lattice,
    hypercube,
    square_lattice,
    square_lattice_alt_diagonals,
    trimmed_hypercube,
)
from repro.topology.snail import (
    corral_topology,
    tree_round_robin_topology,
    tree_topology,
)

#: Canonical topology names (matching the paper's figure legends).
HEAVY_HEX = "Heavy-Hex"
HEX_LATTICE = "Hex-Lattice"
SQUARE_LATTICE = "Square-Lattice"
LATTICE_ALT_DIAG = "Lattice+AltDiagonals"
HYPERCUBE = "Hypercube"
TREE = "Tree"
TREE_RR = "Tree-RR"
CORRAL_1_1 = "Corral1,1"
CORRAL_1_2 = "Corral1,2"


def small_topologies() -> Dict[str, CouplingMap]:
    """The 16-20 qubit machines of paper Table 1 / Figs. 11 and 13."""
    return {
        HEAVY_HEX: heavy_hex_lattice(20, name=HEAVY_HEX),
        HEX_LATTICE: hex_lattice(20, name=HEX_LATTICE),
        SQUARE_LATTICE: square_lattice(4, 4, name=SQUARE_LATTICE),
        TREE: tree_topology(levels=2, arity=4, name=TREE),
        TREE_RR: tree_round_robin_topology(levels=2, arity=4, name=TREE_RR),
        CORRAL_1_1: corral_topology(8, (1, 1), name=CORRAL_1_1),
        # The published Corral(1,2) properties (diameter 2, AvgD 1.5,
        # AvgC 6.0 — paper Table 1) are reproduced when the second rail
        # spans three posts; a literal stride of two yields diameter 3.
        CORRAL_1_2: corral_topology(8, (1, 3), name=CORRAL_1_2),
        HYPERCUBE: hypercube(4, name=HYPERCUBE),
    }


def large_topologies() -> Dict[str, CouplingMap]:
    """The 84-qubit machines of paper Table 2 / Figs. 4, 12 and 14."""
    return {
        HEAVY_HEX: heavy_hex_lattice(84, name=HEAVY_HEX),
        HEX_LATTICE: hex_lattice(84, name=HEX_LATTICE),
        SQUARE_LATTICE: square_lattice(7, 12, name=SQUARE_LATTICE),
        LATTICE_ALT_DIAG: square_lattice_alt_diagonals(7, 12, name=LATTICE_ALT_DIAG),
        TREE: tree_topology(levels=3, arity=4, name=TREE),
        TREE_RR: tree_round_robin_topology(levels=3, arity=4, name=TREE_RR),
        HYPERCUBE: trimmed_hypercube(84, name=HYPERCUBE),
    }


def get_topology(name: str, scale: str = "small") -> CouplingMap:
    """Look up a named topology at the requested scale ("small" or "large")."""
    registry = small_topologies() if scale == "small" else large_topologies()
    if name not in registry:
        raise KeyError(
            f"unknown topology {name!r} at scale {scale!r}; "
            f"available: {sorted(registry)}"
        )
    return registry[name]


def available_topologies(scale: str = "small") -> List[str]:
    """Names available at a given scale."""
    registry = small_topologies() if scale == "small" else large_topologies()
    return sorted(registry)
