"""SNAIL-enabled modular topologies: 4-ary Trees and Corrals.

The construction rule shared by all SNAIL topologies (paper Section 4) is:
every SNAIL modulator couples a small set of qubits (at most six, to avoid
frequency crowding), and any pair of qubits sharing a SNAIL can perform a
two-qubit gate.  In graph terms **each SNAIL contributes a clique over the
qubits it couples**, and a topology is the union of those cliques.

* :func:`tree_topology` — the modular 4-ary Tree of Fig. 7a / Fig. 8:
  a router SNAIL couples the four level-1 router qubits; each router qubit
  is also part of its module's SNAIL together with its four children, and
  so on for deeper levels.
* :func:`tree_round_robin_topology` — the Round-Robin Tree of Fig. 7b:
  module qubits attach to *different* router qubits so no single router
  qubit becomes a bottleneck.
* :func:`corral_topology` — the hypercube-inspired Corral of Fig. 9: a ring
  of SNAIL "fence posts", each coupling the rail qubits that terminate on
  it; the two rails may use different strides around the ring
  (Corral(1,1) and Corral(1,2) in the paper).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.topology.coupling import CouplingMap


def _clique_edges(qubits: Sequence[int]) -> List[Tuple[int, int]]:
    """All pairs among ``qubits`` (one SNAIL's contribution)."""
    return [tuple(sorted(pair)) for pair in itertools.combinations(qubits, 2)]


class SnailModule:
    """One SNAIL modulator and the qubits it couples.

    Exposed so that users can assemble custom modular machines; the
    prebuilt Tree/Corral constructors below are unions of these modules.
    """

    def __init__(self, qubits: Sequence[int], label: str = "module"):
        qubits = tuple(int(q) for q in qubits)
        if len(set(qubits)) != len(qubits):
            raise ValueError("a SNAIL module cannot couple a qubit to itself")
        if len(qubits) < 2:
            raise ValueError("a SNAIL module must couple at least two qubits")
        if len(qubits) > 6:
            raise ValueError(
                "a SNAIL can couple at most six qubits without frequency crowding"
            )
        self.qubits = qubits
        self.label = label

    def edges(self) -> List[Tuple[int, int]]:
        """The clique of couplings contributed by this SNAIL."""
        return _clique_edges(self.qubits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnailModule({self.label!r}, qubits={self.qubits})"


def modules_to_coupling_map(
    modules: Iterable[SnailModule], name: str = "snail-machine"
) -> CouplingMap:
    """Union of SNAIL-module cliques as a :class:`CouplingMap`."""
    edge_set: Set[Tuple[int, int]] = set()
    num_qubits = 0
    for module in modules:
        edge_set.update(module.edges())
        num_qubits = max(num_qubits, max(module.qubits) + 1)
    return CouplingMap(sorted(edge_set), num_qubits=num_qubits, name=name)


# -- 4-ary tree -----------------------------------------------------------------


def _tree_level_sizes(levels: int, arity: int) -> List[int]:
    """Number of qubits at each level: arity, arity^2, ... arity^levels."""
    return [arity ** (level + 1) for level in range(levels)]


def tree_modules(levels: int = 2, arity: int = 4) -> List[SnailModule]:
    """SNAIL modules of a ``levels``-deep ``arity``-ary tree.

    Level-1 holds the ``arity`` router qubits coupled by the root SNAIL;
    every qubit at level ``k`` owns a module SNAIL coupling it with its
    ``arity`` children at level ``k + 1`` (for ``k < levels``).

    ``levels=2, arity=4`` gives the 20-qubit Tree of paper Fig. 7a;
    ``levels=3, arity=4`` gives the 84-qubit Tree of paper Fig. 8.
    """
    if levels < 1:
        raise ValueError("a tree needs at least one level")
    if arity < 2:
        raise ValueError("tree arity must be at least two")
    sizes = _tree_level_sizes(levels, arity)
    offsets = [0]
    for size in sizes[:-1]:
        offsets.append(offsets[-1] + size)
    modules = [SnailModule(tuple(range(arity)), label="router")]
    for level in range(levels - 1):
        parent_offset = offsets[level]
        child_offset = offsets[level + 1]
        for parent_index in range(sizes[level]):
            parent = parent_offset + parent_index
            children = [
                child_offset + parent_index * arity + child
                for child in range(arity)
            ]
            modules.append(
                SnailModule(
                    (parent, *children), label=f"module-L{level + 1}-{parent_index}"
                )
            )
    return modules


def tree_topology(levels: int = 2, arity: int = 4, name: Optional[str] = None) -> CouplingMap:
    """The modular 4-ary Tree topology (paper Fig. 7a / Fig. 8)."""
    modules = tree_modules(levels, arity)
    total = sum(_tree_level_sizes(levels, arity))
    coupling = modules_to_coupling_map(
        modules, name=name or f"tree-{arity}ary-{total}q"
    )
    return coupling


def tree_round_robin_modules(levels: int = 2, arity: int = 4) -> List[SnailModule]:
    """SNAIL modules of the Round-Robin Tree (paper Fig. 7b).

    The router SNAIL still couples the ``arity`` router qubits, and each
    group of ``arity`` sibling qubits still shares a module SNAIL, but the
    ``j``-th qubit of module ``k`` attaches to router qubit ``j`` (not to
    router qubit ``k``), eliminating the per-module router bottleneck.
    """
    if levels < 1:
        raise ValueError("a tree needs at least one level")
    if arity < 2:
        raise ValueError("tree arity must be at least two")
    sizes = _tree_level_sizes(levels, arity)
    offsets = [0]
    for size in sizes[:-1]:
        offsets.append(offsets[-1] + size)
    modules = [SnailModule(tuple(range(arity)), label="router")]
    for level in range(levels - 1):
        parent_offset = offsets[level]
        child_offset = offsets[level + 1]
        for group_index in range(sizes[level]):
            children = [
                child_offset + group_index * arity + child for child in range(arity)
            ]
            # The sibling group shares one SNAIL...
            modules.append(
                SnailModule(tuple(children), label=f"group-L{level + 1}-{group_index}")
            )
            # ...and child j attaches round-robin to parent-level qubit j of
            # its parent's sibling group.
            parent_group_start = parent_offset + (group_index // arity) * arity
            for child_position, child in enumerate(children):
                parent = parent_group_start + child_position
                if parent >= parent_offset + sizes[level]:
                    parent = parent_offset + group_index
                modules.append(
                    SnailModule(
                        (parent, child),
                        label=f"link-L{level + 1}-{group_index}-{child_position}",
                    )
                )
    return modules


def tree_round_robin_topology(
    levels: int = 2, arity: int = 4, name: Optional[str] = None
) -> CouplingMap:
    """The Round-Robin 4-ary Tree topology (paper Fig. 7b)."""
    modules = tree_round_robin_modules(levels, arity)
    total = sum(_tree_level_sizes(levels, arity))
    return modules_to_coupling_map(
        modules, name=name or f"tree-rr-{arity}ary-{total}q"
    )


# -- corral ----------------------------------------------------------------------


def corral_modules(
    num_posts: int = 8, strides: Tuple[int, int] = (1, 1)
) -> List[SnailModule]:
    """SNAIL modules of a Corral with ``num_posts`` fence posts.

    Each post ``k`` is a SNAIL.  There are two "rails" of qubits: rail-0
    qubit ``k`` spans posts ``k`` and ``k + strides[0]`` (mod the ring), and
    rail-1 qubit ``k`` spans posts ``k`` and ``k + strides[1]``.  Each post
    couples every rail qubit that terminates on it.

    ``strides=(1, 1)`` gives Corral(1,1) (paper Fig. 9a/b);
    ``strides=(1, 2)`` gives Corral(1,2) (paper Fig. 9c/d).
    """
    if num_posts < 3:
        raise ValueError("a corral needs at least three posts")
    stride_a, stride_b = strides
    if stride_a < 1 or stride_b < 1:
        raise ValueError("corral strides must be positive")
    if stride_a >= num_posts or stride_b >= num_posts:
        raise ValueError("corral strides must be smaller than the number of posts")

    def rail0(k: int) -> int:
        return k

    def rail1(k: int) -> int:
        return num_posts + k

    modules = []
    for post in range(num_posts):
        coupled = [
            rail0(post),
            rail0((post - stride_a) % num_posts),
            rail1(post),
            rail1((post - stride_b) % num_posts),
        ]
        # Remove duplicates while keeping order (possible for tiny rings).
        unique = list(dict.fromkeys(coupled))
        modules.append(SnailModule(tuple(unique), label=f"post-{post}"))
    return modules


def corral_topology(
    num_posts: int = 8,
    strides: Tuple[int, int] = (1, 1),
    name: Optional[str] = None,
) -> CouplingMap:
    """Corral topology with ``2 * num_posts`` qubits (paper Fig. 9)."""
    modules = corral_modules(num_posts, strides)
    label = name or f"corral{strides[0]},{strides[1]}-{2 * num_posts}q"
    return modules_to_coupling_map(modules, name=label)
