"""Future-work SNAIL topologies sketched in the paper but not evaluated there.

Paper Section 4.3 and the conclusion list several ways a Corral could be
scaled beyond a single ring: "create heterogeneous modules where one module
contains a SNAIL and four qubits, and another contains only a SNAIL that
forms the boundary between two", and "lay out Corrals in a lattice
pattern".  These constructors realise both sketches with the same
clique-per-SNAIL rule as :mod:`repro.topology.snail`, so they can be
dropped into every experiment (the corral-scaling benchmark and the
frequency-crowding study accept any :class:`~repro.topology.coupling.CouplingMap`).

* :func:`heterogeneous_corral_topology` — a ring of four-qubit modules
  whose neighbouring modules are bridged by boundary SNAILs.
* :func:`corral_lattice_topology` — a 2-D torus of fence posts; every post
  couples the horizontal and vertical "rail" qubits that terminate on it,
  which keeps the per-SNAIL mode count at four while the machine grows in
  two dimensions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.topology.coupling import CouplingMap
from repro.topology.snail import SnailModule, modules_to_coupling_map


def heterogeneous_corral_modules(
    num_modules: int = 4, qubits_per_module: int = 4, boundary_span: int = 2
) -> List[SnailModule]:
    """SNAIL modules of the heterogeneous Corral (paper Section 4.3 sketch).

    ``num_modules`` four-qubit modules sit on a ring.  Each module's own
    SNAIL couples its ``qubits_per_module`` qubits all-to-all; between every
    pair of neighbouring modules a *boundary* SNAIL couples the last
    ``boundary_span`` qubits of one module with the first ``boundary_span``
    qubits of the next.
    """
    if num_modules < 2:
        raise ValueError("a heterogeneous corral needs at least two modules")
    if not 2 <= qubits_per_module <= 6:
        raise ValueError("a SNAIL module couples between two and six qubits")
    if not 1 <= boundary_span <= qubits_per_module:
        raise ValueError("boundary_span must be between 1 and qubits_per_module")
    if 2 * boundary_span > 6:
        raise ValueError("a boundary SNAIL cannot couple more than six qubits")
    modules: List[SnailModule] = []
    for index in range(num_modules):
        start = index * qubits_per_module
        qubits = tuple(range(start, start + qubits_per_module))
        modules.append(SnailModule(qubits, label=f"mod1-{index}"))
    for index in range(num_modules):
        neighbor = (index + 1) % num_modules
        left = [
            index * qubits_per_module + offset
            for offset in range(qubits_per_module - boundary_span, qubits_per_module)
        ]
        right = [
            neighbor * qubits_per_module + offset for offset in range(boundary_span)
        ]
        modules.append(SnailModule(tuple(left + right), label=f"mod2-{index}"))
    return modules


def heterogeneous_corral_topology(
    num_modules: int = 4,
    qubits_per_module: int = 4,
    boundary_span: int = 2,
    name: Optional[str] = None,
) -> CouplingMap:
    """Heterogeneous Corral: four-qubit modules bridged by boundary SNAILs."""
    modules = heterogeneous_corral_modules(num_modules, qubits_per_module, boundary_span)
    total = num_modules * qubits_per_module
    return modules_to_coupling_map(
        modules, name=name or f"hetero-corral-{num_modules}x{qubits_per_module}q"
    )


def corral_lattice_modules(rows: int = 3, cols: int = 3) -> List[SnailModule]:
    """SNAIL modules of a Corral laid out as a 2-D torus of fence posts.

    Post ``(r, c)`` owns two rail qubits: a horizontal one spanning posts
    ``(r, c)`` and ``(r, c+1)``, and a vertical one spanning ``(r, c)`` and
    ``(r+1, c)`` (both wrapping around).  Each post's SNAIL couples the
    four rails that terminate on it, so every SNAIL stays at four modes
    regardless of machine size — the property that lets the Corral scale.
    """
    if rows < 2 or cols < 2:
        raise ValueError("a corral lattice needs at least two rows and two columns")

    def horizontal(r: int, c: int) -> int:
        return (r * cols + c) * 2

    def vertical(r: int, c: int) -> int:
        return (r * cols + c) * 2 + 1

    modules: List[SnailModule] = []
    for r in range(rows):
        for c in range(cols):
            coupled = (
                horizontal(r, c),
                horizontal(r, (c - 1) % cols),
                vertical(r, c),
                vertical((r - 1) % rows, c),
            )
            unique = tuple(dict.fromkeys(coupled))
            modules.append(SnailModule(unique, label=f"post-{r},{c}"))
    return modules


def corral_lattice_topology(
    rows: int = 3, cols: int = 3, name: Optional[str] = None
) -> CouplingMap:
    """Corral-in-a-lattice topology with ``2 * rows * cols`` qubits."""
    modules = corral_lattice_modules(rows, cols)
    return modules_to_coupling_map(
        modules, name=name or f"corral-lattice-{rows}x{cols}"
    )
