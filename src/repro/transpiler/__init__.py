"""Transpiler: layout, routing, basis translation and metric collection."""

from repro.transpiler.layout import Layout
from repro.transpiler.metrics import TranspileMetrics, format_metrics_table
from repro.transpiler.passmanager import (
    STAGES,
    PassManager,
    PropertySet,
    StagedPassManager,
    TranspilerPass,
)
from repro.transpiler.target import Target, make_target
from repro.transpiler.passes.basis_translation import (
    BasisTranslation,
    BasisTranslationError,
)
from repro.transpiler.passes.cancellation import CancelAdjacentInverses
from repro.transpiler.passes.commutation import CommutativeCancellation
from repro.transpiler.passes.decompose_multi import DecomposeMultiQubit
from repro.transpiler.passes.layout_passes import (
    DenseLayout,
    InteractionGraphLayout,
    TrivialLayout,
)
from repro.transpiler.passes.optimize import Optimize1qGates, RemoveBarriers
from repro.transpiler.passes.routing import (
    RoutingError,
    SabreRouting,
    StochasticRouting,
)
from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout, NoiseAwareRouting
from repro.transpiler.passes.routing_extra import BasicRouting
from repro.transpiler.passes.vf2_layout import VF2Layout
from repro.transpiler.scheduling import (
    GateDurations,
    Schedule,
    TimedInstruction,
    critical_path_duration,
    schedule_alap,
    schedule_asap,
)
from repro.transpiler.passes.schedule_analysis import ScheduleAnalysis
from repro.transpiler.registry import available_passes, make_pass, register_pass
from repro.transpiler.compile import (
    TranspileResult,
    available_levels,
    build_pass_manager,
    build_staged_pass_manager,
    transpile,
)
from repro.transpiler.batch import circuit_fingerprint, transpile_batch

__all__ = [
    "Layout",
    "TranspileMetrics",
    "format_metrics_table",
    "STAGES",
    "PassManager",
    "PropertySet",
    "StagedPassManager",
    "TranspilerPass",
    "Target",
    "make_target",
    "available_passes",
    "make_pass",
    "register_pass",
    "ScheduleAnalysis",
    "BasisTranslation",
    "BasisTranslationError",
    "CancelAdjacentInverses",
    "CommutativeCancellation",
    "DecomposeMultiQubit",
    "DenseLayout",
    "InteractionGraphLayout",
    "TrivialLayout",
    "Optimize1qGates",
    "RemoveBarriers",
    "RoutingError",
    "SabreRouting",
    "StochasticRouting",
    "BasicRouting",
    "NoiseAwareLayout",
    "NoiseAwareRouting",
    "VF2Layout",
    "GateDurations",
    "Schedule",
    "TimedInstruction",
    "critical_path_duration",
    "schedule_alap",
    "schedule_asap",
    "TranspileResult",
    "available_levels",
    "build_pass_manager",
    "build_staged_pass_manager",
    "transpile",
    "transpile_batch",
    "circuit_fingerprint",
]
