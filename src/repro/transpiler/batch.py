"""Batch transpilation through the experiment runtime.

``transpile_batch`` compiles many circuits onto one target by fanning the
independent compilations out through a
:class:`repro.runtime.runner.ExperimentRunner` (process-pool parallelism
with ordered collection and a serial twin) and memoizing repeated
(circuit, target, schedule) points in a
:class:`repro.runtime.cache.ResultCache`.  It is the bulk counterpart of
:func:`repro.transpiler.compile.transpile`: same results, less wall-clock
on multi-circuit workloads (a sweep's worth of QV instances, a QASM corpus,
a levels ablation).
"""

from __future__ import annotations

import hashlib
from typing import Hashable, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.compile import TranspileResult, transpile
from repro.transpiler.target import Target


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable content digest of a circuit (name, width, every instruction).

    Two circuits with identical gate sequences fingerprint identically
    across processes and sessions (unlike ``id``/``hash``), which makes the
    digest usable in result-cache keys.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{circuit.name}|{circuit.num_qubits}".encode("utf-8"))
    for instruction in circuit:
        token = (
            instruction.name,
            tuple(instruction.qubits),
            tuple(getattr(instruction.gate, "params", ())),
            bool(instruction.induced),
        )
        hasher.update(repr(token).encode("utf-8"))
    return hasher.hexdigest()


def batch_cache_key(
    circuit: QuantumCircuit,
    target: Target,
    optimization_level: int,
    layout_method: Optional[str],
    routing_method: Optional[str],
    translation_mode: Optional[str],
    seed: int,
) -> Hashable:
    """Full cache key of one batch compilation point."""
    return (
        "transpile",
        circuit_fingerprint(circuit),
        target.cache_key(),
        int(optimization_level),
        layout_method,
        routing_method,
        translation_mode,
        int(seed),
    )


def _transpile_task(
    circuit: QuantumCircuit,
    target: Target,
    optimization_level: int,
    layout_method: Optional[str],
    routing_method: Optional[str],
    translation_mode: Optional[str],
    seed: int,
) -> TranspileResult:
    """One batch element (module-level so it pickles to worker processes)."""
    return transpile(
        circuit,
        target,
        layout_method=layout_method,
        routing_method=routing_method,
        translation_mode=translation_mode,
        seed=seed,
        optimization_level=optimization_level,
    )


def transpile_batch(
    circuits: Sequence[QuantumCircuit],
    target: Target,
    optimization_level: int = 1,
    layout_method: Optional[str] = None,
    routing_method: Optional[str] = None,
    translation_mode: Optional[str] = None,
    seed: int = 0,
    runner: Optional[object] = None,
    progress: Optional[callable] = None,
    cache_dir: Optional[str] = None,
    parallel: bool = False,
    workers: Optional[int] = None,
) -> List[TranspileResult]:
    """Transpile every circuit onto ``target``, in input order.

    Args:
        circuits: the algorithm circuits.
        target: the design point (a :class:`Target`; legacy ``Backend``
            objects are adapted via :meth:`Target.from_backend`).
        optimization_level / layout_method / routing_method /
        translation_mode / seed: forwarded to :func:`transpile` for every
            circuit.
        runner: optional :class:`repro.runtime.ExperimentRunner`; when
            given, compilations fan out over its process pool and repeated
            points hit its result cache.  ``None`` builds a private runner
            from ``parallel`` / ``workers`` / ``cache_dir`` (serial by
            default) and shuts it down afterwards.
        progress: optional callable invoked with a status string per
            circuit.
        cache_dir: directory for a disk-backed result cache shared across
            processes (only used when ``runner`` is ``None``; a provided
            runner brings its own cache).  ``REPRO_CACHE_DIR`` supplies a
            default.  With ``parallel=True`` the cache dir is plumbed into
            every pool worker, which consults and populates it directly.
        parallel / workers: fan the batch out over a process pool when no
            ``runner`` is given (ignored otherwise).

    Returns:
        One :class:`TranspileResult` per circuit, aligned with the input.
    """
    target = Target.from_backend(target)
    circuits = list(circuits)
    owns_runner = False
    if runner is None:
        # Imported lazily: the runtime package builds on core, which builds
        # on this package, so a module-level import would be cyclic.
        from repro.runtime.disk_cache import cache_dir_from_env, resolve_result_cache
        from repro.runtime.runner import ExperimentRunner

        directory = cache_dir if cache_dir is not None else cache_dir_from_env()
        cache = resolve_result_cache(directory) if directory is not None else None
        runner = ExperimentRunner(
            parallel=parallel, max_workers=workers, result_cache=cache
        )
        owns_runner = True
    tasks = [
        (
            circuit,
            target,
            int(optimization_level),
            layout_method,
            routing_method,
            translation_mode,
            int(seed),
        )
        for circuit in circuits
    ]
    keys = None
    if getattr(runner, "result_cache", None) is not None:
        keys = [
            batch_cache_key(
                circuit,
                target,
                optimization_level,
                layout_method,
                routing_method,
                translation_mode,
                seed,
            )
            for circuit in circuits
        ]
    labels = [f"{circuit.name} on {target.name}" for circuit in circuits]
    try:
        return runner.map(
            _transpile_task, tasks, keys=keys, labels=labels, progress=progress
        )
    finally:
        if owns_runner:
            runner.close()
