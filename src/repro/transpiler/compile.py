"""Top-level transpilation entry point (paper Fig. 10).

``transpile`` runs the full flow — multi-qubit expansion, layout, routing,
basis translation — against a coupling map and a basis-gate spec, and
collects the four counter sets the paper reports:

1. total induced SWAPs and critical-path SWAPs (after routing),
2. total 2Q basis gates and critical-path 2Q basis gates (after
   translation), plus the pulse-duration-weighted critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.decomposition.basis import BasisGateSpec, get_basis
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.metrics import TranspileMetrics
from repro.transpiler.passmanager import PassManager, PropertySet
from repro.transpiler.passes.basis_translation import BasisTranslation
from repro.transpiler.passes.decompose_multi import DecomposeMultiQubit
from repro.transpiler.passes.layout_passes import (
    DenseLayout,
    InteractionGraphLayout,
    TrivialLayout,
)
from repro.transpiler.passes.routing import SabreRouting, StochasticRouting
from repro.transpiler.passes.routing_extra import BasicRouting
from repro.transpiler.passes.vf2_layout import VF2Layout


@dataclass
class TranspileResult:
    """Everything produced by one transpilation run."""

    circuit: QuantumCircuit
    routed_circuit: QuantumCircuit
    metrics: TranspileMetrics
    initial_layout: Layout
    final_layout: Layout
    properties: PropertySet


def build_pass_manager(
    coupling_map: CouplingMap,
    basis: BasisGateSpec,
    layout_method: str = "dense",
    routing_method: str = "sabre",
    translation_mode: str = "count",
    seed: int = 0,
) -> PassManager:
    """Assemble the standard pass schedule used by the paper's evaluation."""
    layout_passes = {
        "trivial": lambda: TrivialLayout(coupling_map),
        "dense": lambda: DenseLayout(coupling_map),
        "interaction": lambda: InteractionGraphLayout(coupling_map, seed=seed),
        "vf2": lambda: VF2Layout(coupling_map, fallback=DenseLayout(coupling_map)),
    }
    routing_passes = {
        "sabre": lambda: SabreRouting(coupling_map, seed=seed),
        "stochastic": lambda: StochasticRouting(coupling_map, seed=seed),
        "basic": lambda: BasicRouting(coupling_map),
    }
    if layout_method not in layout_passes:
        raise ValueError(
            f"unknown layout method {layout_method!r}; options: {sorted(layout_passes)}"
        )
    if routing_method not in routing_passes:
        raise ValueError(
            f"unknown routing method {routing_method!r}; options: {sorted(routing_passes)}"
        )
    manager = PassManager()
    manager.append(DecomposeMultiQubit())
    manager.append(layout_passes[layout_method]())
    manager.append(routing_passes[routing_method]())
    manager.append(BasisTranslation(basis, mode=translation_mode))
    return manager


def transpile(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    basis: Optional[BasisGateSpec] = None,
    basis_name: str = "cx",
    layout_method: str = "dense",
    routing_method: str = "sabre",
    translation_mode: str = "count",
    seed: int = 0,
) -> TranspileResult:
    """Transpile ``circuit`` onto a device and collect the paper's metrics.

    Args:
        circuit: the algorithm circuit (virtual qubits ``0..n-1``).
        coupling_map: the device topology.
        basis: the native two-qubit basis; if omitted, looked up from
            ``basis_name``.
        basis_name: convenience name when ``basis`` is not given.
        layout_method: "dense" (paper default), "trivial", "interaction" or
            "vf2" (SWAP-free embedding search with a dense fallback).
        routing_method: "sabre" (default), "stochastic" or "basic".
        translation_mode: "count" (paper default) or "synthesis".
        seed: routing / layout RNG seed.

    Returns:
        A :class:`TranspileResult` with the translated circuit, the routed
        (pre-translation) circuit, both layouts and a
        :class:`~repro.transpiler.metrics.TranspileMetrics` record.
    """
    if circuit.num_qubits > coupling_map.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but topology "
            f"{coupling_map.name!r} has only {coupling_map.num_qubits}"
        )
    basis = basis or get_basis(basis_name)
    manager = build_pass_manager(
        coupling_map,
        basis,
        layout_method=layout_method,
        routing_method=routing_method,
        translation_mode=translation_mode,
        seed=seed,
    )
    properties = PropertySet()
    final_circuit = manager.run(circuit, properties)
    routed = properties.require("routed_circuit")
    metrics = TranspileMetrics(
        circuit_name=circuit.name,
        circuit_qubits=circuit.num_qubits,
        topology=coupling_map.name,
        basis=basis.name,
        total_swaps=routed.swap_count(induced_only=True),
        critical_swaps=routed.critical_path_swaps(induced_only=True),
        total_2q=final_circuit.two_qubit_gate_count(),
        critical_2q=final_circuit.critical_path_two_qubit(),
        weighted_duration=final_circuit.weighted_duration(),
        total_gates=final_circuit.size(),
        depth=int(final_circuit.depth()),
        routing_method=routing_method,
        layout_method=layout_method,
        seed=seed,
    )
    return TranspileResult(
        circuit=final_circuit,
        routed_circuit=routed,
        metrics=metrics,
        initial_layout=properties.require("layout"),
        final_layout=properties.require("final_layout"),
        properties=properties,
    )
