"""Staged transpilation entry point (paper Fig. 10, generalised).

``transpile`` compiles a circuit onto a :class:`~repro.transpiler.target.
Target` through the staged pipeline ``init -> layout -> routing ->
translation -> optimization -> scheduling``, with ``optimization_level``
selecting a preset stage schedule:

* **0** — fastest: dense layout, basic shortest-path routing, basis
  translation.  No optimization.
* **1** — the paper's evaluation flow (the default): dense layout, SABRE
  routing, counting translation.  Reproduces Fig. 10 exactly.
* **2** — level 1 plus gate optimization on the routed circuit:
  adjacent-inverse and commutation-aware cancellation (removing
  back-to-back routing SWAPs before translation multiplies them into
  basis pulses), plus post-translation cancellation and 1Q-gate merging
  in ``synthesis`` mode.  Never increases any 2Q metric relative to
  level 1.
* **3** — level 2 with a SWAP-free VF2 embedding attempt (dense
  fallback), noise-aware routing whenever the target carries a noise
  model, and duration-aware ASAP scheduling whose makespan is reported in
  ``metrics.extra["duration_ns"]``.

Every stage is fed from the name-based pass registry
(:mod:`repro.transpiler.registry`), so ``layout_method="vf2"`` or a newly
``@register_pass``-ed router are equally addressable.  The collected
metrics are the paper's four counter sets (SWAPs and 2Q gates, total and
critical-path) plus scheduling aggregates when a scheduling stage ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import SHARED_DAG_PROPERTY
from repro.decomposition.basis import BasisGateSpec, get_basis
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.metrics import TranspileMetrics
from repro.transpiler.passmanager import PassManager, PropertySet, StagedPassManager
from repro.transpiler.registry import make_pass
from repro.transpiler.target import Target

#: Preset stage schedules, one per optimization level.  ``None`` routing at
#: level 3 resolves to "noise_aware" when the target carries a noise model
#: (the paper's uniform-fidelity assumption makes it pure overhead
#: otherwise, so it falls back to SABRE).
#:
#: The routing-stage cleanup operates on the *routed* circuit — original
#: gates plus induced SWAPs, a semantically faithful circuit — so inverse
#: cancellation there is always sound and every downstream 2Q metric can
#: only shrink.  The post-translation optimization stage, in contrast, only
#: runs in ``synthesis`` mode: "count" mode stands each 2Q gate in for
#: ``k`` bare basis-gate copies without the interleaved 1Q gates, where
#: adjacent-inverse cancellation would be a counting artifact, not an
#: optimization.
_CLEANUP = ("cancel_inverses", "commutative_cancellation")
_SYNTHESIS_OPTIMIZATION = ("cancel_inverses", "commutative_cancellation", "merge_1q")

_LEVEL_PRESETS: Dict[int, Dict[str, object]] = {
    0: {
        "layout": "dense",
        "routing": "basic",
        "routing_cleanup": (),
        "optimize": False,
        "scheduling": None,
    },
    1: {
        "layout": "dense",
        "routing": "sabre",
        "routing_cleanup": (),
        "optimize": False,
        "scheduling": None,
    },
    2: {
        "layout": "dense",
        "routing": "sabre",
        "routing_cleanup": _CLEANUP,
        "optimize": True,
        "scheduling": None,
    },
    3: {
        "layout": "vf2",
        "routing": None,
        "routing_cleanup": _CLEANUP,
        "optimize": True,
        "scheduling": "asap",
    },
}


@dataclass
class TranspileResult:
    """Everything produced by one transpilation run."""

    circuit: QuantumCircuit
    routed_circuit: QuantumCircuit
    metrics: TranspileMetrics
    initial_layout: Layout
    final_layout: Layout
    properties: PropertySet

    @property
    def schedule(self):
        """The duration-aware schedule, when a scheduling stage ran."""
        return self.properties.get("schedule")


def _resolve_target(
    target: Union[Target, CouplingMap],
    basis: Optional[BasisGateSpec],
    basis_name: Optional[str],
) -> Target:
    """Accept a Target directly or a bare CouplingMap plus basis spec/name."""
    if isinstance(target, Target):
        if basis is not None or basis_name is not None:
            raise ValueError("pass the basis inside the Target, not alongside it")
        return target
    if isinstance(target, CouplingMap):
        return Target(coupling_map=target, basis=basis or get_basis(basis_name or "cx"))
    raise TypeError(
        f"expected a Target or CouplingMap, got {type(target).__name__}"
    )


def available_levels() -> List[int]:
    """The optimization levels the preset table defines (0..3 today)."""
    return sorted(_LEVEL_PRESETS)


def resolve_level(
    target: Target,
    optimization_level: int,
    layout_method: Optional[str] = None,
    routing_method: Optional[str] = None,
    translation_mode: Optional[str] = None,
    scheduling_method: Optional[str] = None,
) -> Dict[str, object]:
    """The effective stage schedule for a level, with explicit overrides."""
    if optimization_level not in _LEVEL_PRESETS:
        raise ValueError(
            f"unknown optimization level {optimization_level!r}; "
            f"levels are {sorted(_LEVEL_PRESETS)}"
        )
    preset = dict(_LEVEL_PRESETS[optimization_level])
    if preset["routing"] is None:
        preset["routing"] = "noise_aware" if target.noise_model is not None else "sabre"
    if layout_method is not None:
        preset["layout"] = layout_method
    if routing_method is not None:
        preset["routing"] = routing_method
    preset["translation"] = translation_mode or "count"
    # Post-translation optimization only makes sense on explicit circuits.
    preset["optimization"] = (
        _SYNTHESIS_OPTIMIZATION
        if preset["optimize"] and preset["translation"] == "synthesis"
        else ()
    )
    if scheduling_method is not None:
        preset["scheduling"] = scheduling_method
    return preset


def _manager_from_schedule(
    target: Target, schedule: Dict[str, object], seed: int
) -> StagedPassManager:
    """Build the staged manager for an already-resolved stage schedule."""
    stages: Dict[str, List] = {
        "init": [make_pass("init", "decompose_multi", target, seed=seed)],
        "layout": [make_pass("layout", schedule["layout"], target, seed=seed)],
        "routing": [make_pass("routing", schedule["routing"], target, seed=seed)]
        + [
            make_pass("optimization", name, target, seed=seed)
            for name in schedule["routing_cleanup"]
        ],
        "translation": [
            make_pass("translation", schedule["translation"], target, seed=seed)
        ],
        "optimization": [
            make_pass("optimization", name, target, seed=seed)
            for name in schedule["optimization"]
        ],
        "scheduling": (
            [make_pass("scheduling", schedule["scheduling"], target, seed=seed)]
            if schedule["scheduling"]
            else []
        ),
    }
    return StagedPassManager(stages)


def build_staged_pass_manager(
    target: Target,
    optimization_level: int = 1,
    layout_method: Optional[str] = None,
    routing_method: Optional[str] = None,
    translation_mode: Optional[str] = None,
    scheduling_method: Optional[str] = None,
    seed: int = 0,
) -> StagedPassManager:
    """Assemble the staged schedule for one level from the pass registry."""
    schedule = resolve_level(
        target,
        optimization_level,
        layout_method=layout_method,
        routing_method=routing_method,
        translation_mode=translation_mode,
        scheduling_method=scheduling_method,
    )
    return _manager_from_schedule(target, schedule, seed)


def build_pass_manager(
    coupling_map: CouplingMap,
    basis: BasisGateSpec,
    layout_method: str = "dense",
    routing_method: str = "sabre",
    translation_mode: str = "count",
    seed: int = 0,
) -> PassManager:
    """Assemble the paper's standard four-pass schedule (legacy entry point).

    Equivalent to the level-1 staged schedule; kept for callers that
    address a bare (coupling map, basis) pair.  New code should build a
    :class:`~repro.transpiler.target.Target` and use
    :func:`build_staged_pass_manager`.
    """
    target = Target(coupling_map=coupling_map, basis=basis)
    return build_staged_pass_manager(
        target,
        optimization_level=1,
        layout_method=layout_method,
        routing_method=routing_method,
        translation_mode=translation_mode,
        seed=seed,
    )


def transpile(
    circuit: QuantumCircuit,
    target: Union[Target, CouplingMap],
    basis: Optional[BasisGateSpec] = None,
    basis_name: Optional[str] = None,
    layout_method: Optional[str] = None,
    routing_method: Optional[str] = None,
    translation_mode: Optional[str] = None,
    seed: int = 0,
    optimization_level: int = 1,
    scheduling_method: Optional[str] = None,
) -> TranspileResult:
    """Transpile ``circuit`` onto a target and collect the paper's metrics.

    Args:
        circuit: the algorithm circuit (virtual qubits ``0..n-1``).
        target: the design point — a :class:`Target`, or a bare
            :class:`CouplingMap` (then ``basis`` / ``basis_name`` supply
            the native gate, as in the legacy API).
        basis: the native two-qubit basis when ``target`` is a coupling
            map; if omitted, looked up from ``basis_name``.
        basis_name: convenience name when ``basis`` is not given
            (defaults to "cx"); like ``basis``, rejected alongside a
            Target, whose own basis always wins.
        layout_method / routing_method: registry pass names overriding the
            level preset (see ``available_passes("layout")`` /
            ``available_passes("routing")``).
        translation_mode: "count" (paper default) or "synthesis".
        seed: routing / layout RNG seed.
        optimization_level: preset schedule 0..3 (see module docstring);
            level 1 is the paper's evaluation flow.
        scheduling_method: "asap" / "alap" to force a scheduling stage at
            any level (level 3 schedules by default).

    Returns:
        A :class:`TranspileResult` with the final circuit, the routed
        (post-cleanup, pre-translation) circuit, both layouts and a
        :class:`~repro.transpiler.metrics.TranspileMetrics` record.
    """
    resolved = _resolve_target(target, basis, basis_name)
    if circuit.num_qubits > resolved.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but topology "
            f"{resolved.coupling_map.name!r} has only {resolved.num_qubits}"
        )
    schedule = resolve_level(
        resolved,
        optimization_level,
        layout_method=layout_method,
        routing_method=routing_method,
        translation_mode=translation_mode,
        scheduling_method=scheduling_method,
    )
    # The metrics' provenance (layout/routing names) and the executed
    # passes come from the same resolved schedule, so they cannot drift.
    manager = _manager_from_schedule(resolved, schedule, seed)
    properties = PropertySet()
    if resolved.noise_model is not None:
        properties["noise_model"] = resolved.noise_model
    final_circuit = manager.run(circuit, properties)
    # The shared DAG only serves passes *within* this compilation; dropping
    # it keeps TranspileResult lean for pickling (worker IPC, disk cache).
    properties.pop(SHARED_DAG_PROPERTY, None)
    # The routing *stage* output includes post-routing cleanup (levels 2+),
    # so SWAP metrics reflect what translation actually consumes.  Custom
    # registered routers may not set the "routed_circuit" property, so it
    # is only required when the stage record is missing.
    routed = properties["stage_circuits"].get("routing")
    if routed is None:
        routed = properties.require("routed_circuit")
    extra: Dict[str, object] = {}
    for source_key, extra_key in (
        ("cancelled_gates", "cancelled_gates"),
        ("commutative_cancelled", "commutative_cancelled"),
        ("scheduled_duration_ns", "duration_ns"),
        ("scheduled_idle_ns", "idle_ns"),
        ("scheduled_parallelism", "parallelism"),
    ):
        if source_key in properties:
            extra[extra_key] = float(properties[source_key])
    if properties.get("stage_times"):
        # Wall-time per compilation stage, surfaced by the CLI's --timing
        # report and the routing benchmarks.
        extra["stage_times"] = {
            stage: float(elapsed)
            for stage, elapsed in properties["stage_times"].items()
        }
    metrics = TranspileMetrics(
        circuit_name=circuit.name,
        circuit_qubits=circuit.num_qubits,
        topology=resolved.coupling_map.name,
        basis=resolved.basis.name,
        total_swaps=routed.swap_count(induced_only=True),
        critical_swaps=routed.critical_path_swaps(induced_only=True),
        total_2q=final_circuit.two_qubit_gate_count(),
        critical_2q=final_circuit.critical_path_two_qubit(),
        weighted_duration=final_circuit.weighted_duration(),
        total_gates=final_circuit.size(),
        depth=int(final_circuit.depth()),
        routing_method=str(schedule["routing"]),
        layout_method=str(schedule["layout"]),
        seed=seed,
        optimization_level=optimization_level,
        extra=extra,
    )
    return TranspileResult(
        circuit=final_circuit,
        routed_circuit=routed,
        metrics=metrics,
        initial_layout=properties.require("layout"),
        final_layout=properties.require("final_layout"),
        properties=properties,
    )
