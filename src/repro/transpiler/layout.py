"""Layout: the mapping between virtual (algorithm) and physical qubits."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class Layout:
    """A bijective partial mapping virtual qubit -> physical qubit."""

    def __init__(self, mapping: Optional[Dict[int, int]] = None):
        self._v2p: Dict[int, int] = {}
        self._p2v: Dict[int, int] = {}
        if mapping:
            for virtual, physical in mapping.items():
                self.assign(virtual, physical)

    # -- construction --------------------------------------------------------

    @classmethod
    def trivial(cls, num_virtual: int) -> "Layout":
        """Identity layout on the first ``num_virtual`` physical qubits."""
        return cls({v: v for v in range(num_virtual)})

    @classmethod
    def from_physical_list(cls, physical_qubits: Sequence[int]) -> "Layout":
        """Virtual qubit ``i`` maps to ``physical_qubits[i]``."""
        return cls({v: p for v, p in enumerate(physical_qubits)})

    def assign(self, virtual: int, physical: int) -> None:
        """Add or move a virtual -> physical assignment."""
        if physical in self._p2v and self._p2v[physical] != virtual:
            raise ValueError(f"physical qubit {physical} is already occupied")
        if virtual in self._v2p:
            del self._p2v[self._v2p[virtual]]
        self._v2p[virtual] = physical
        self._p2v[physical] = virtual

    def copy(self) -> "Layout":
        """Independent copy."""
        return Layout(dict(self._v2p))

    # -- queries ---------------------------------------------------------------

    def physical(self, virtual: int) -> int:
        """Physical qubit holding ``virtual``."""
        return self._v2p[virtual]

    def virtual(self, physical: int) -> Optional[int]:
        """Virtual qubit stored on ``physical`` (None if unoccupied)."""
        return self._p2v.get(physical)

    def __getitem__(self, virtual: int) -> int:
        return self._v2p[virtual]

    def __len__(self) -> int:
        return len(self._v2p)

    def __contains__(self, virtual: int) -> bool:
        return virtual in self._v2p

    def virtual_qubits(self) -> List[int]:
        """All mapped virtual qubits."""
        return sorted(self._v2p)

    def physical_qubits(self) -> List[int]:
        """All occupied physical qubits."""
        return sorted(self._p2v)

    def to_dict(self) -> Dict[int, int]:
        """Plain virtual -> physical dictionary."""
        return dict(self._v2p)

    # -- updates during routing --------------------------------------------------

    def swap_physical(self, physical_a: int, physical_b: int) -> None:
        """Exchange whatever virtual qubits live on two physical qubits."""
        virtual_a = self._p2v.get(physical_a)
        virtual_b = self._p2v.get(physical_b)
        if virtual_a is not None:
            del self._p2v[physical_a]
        if virtual_b is not None:
            del self._p2v[physical_b]
        if virtual_a is not None:
            self._v2p[virtual_a] = physical_b
            self._p2v[physical_b] = virtual_a
        if virtual_b is not None:
            self._v2p[virtual_b] = physical_a
            self._p2v[physical_a] = virtual_b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout({self._v2p})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._v2p == other._v2p
