"""Metric records collected during transpilation (paper Fig. 10 data flow)."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict

#: ``extra`` keys that describe the *run* (wall-clock diagnostics) rather
#: than the *result*.  They are excluded from equality and ``as_dict`` so
#: that serial/parallel/cached executions of the same point stay
#: bit-identical — the determinism contract every parity test rests on.
DIAGNOSTIC_EXTRAS = ("stage_times",)


@dataclass(frozen=True, eq=False)
class TranspileMetrics:
    """All counters the paper reports for one (circuit, topology, basis) point.

    Attributes:
        circuit_name: workload instance name.
        circuit_qubits: number of algorithm (virtual) qubits.
        topology: device topology name.
        basis: native basis-gate name ("cx", "siswap", "syc", ...).
        total_swaps: SWAP gates present after routing (induced by routing).
        critical_swaps: SWAPs on the longest dependency path after routing.
        total_2q: two-qubit basis gates after translation (paper
            Figs. 13/14 top).
        critical_2q: two-qubit basis gates on the critical path — the
            paper's "pulse duration" proxy (Figs. 13/14 bottom).
        weighted_duration: critical-path duration weighting each basis gate
            by its relative pulse length (1/n for an n-th-root iSWAP).
        total_gates: all gates after translation (excluding barriers).
        depth: plain circuit depth after translation.
        routing_method / layout_method / seed: provenance of the run.
        optimization_level: preset schedule (0..3) the run used.
        extra: additional per-point values (``workload``, ``backend``,
            ``duration_ns``, ...).  Keys in :data:`DIAGNOSTIC_EXTRAS`
            (currently the per-stage ``stage_times`` mapping) are
            wall-clock diagnostics: readable from ``extra`` but ignored by
            ``==`` and absent from :meth:`as_dict`.
    """

    circuit_name: str
    circuit_qubits: int
    topology: str
    basis: str
    total_swaps: int
    critical_swaps: int
    total_2q: int
    critical_2q: int
    weighted_duration: float
    total_gates: int
    depth: int
    routing_method: str = "sabre"
    layout_method: str = "dense"
    seed: int = 0
    optimization_level: int = 1
    extra: Dict[str, float] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TranspileMetrics):
            return NotImplemented
        return self._comparable() == other._comparable()

    def __hash__(self) -> int:
        name_fields = tuple(
            getattr(self, spec.name) for spec in fields(self) if spec.name != "extra"
        )
        return hash(name_fields)

    def _comparable(self):
        extra = {
            key: value
            for key, value in self.extra.items()
            if key not in DIAGNOSTIC_EXTRAS
        }
        values = [
            getattr(self, spec.name) for spec in fields(self) if spec.name != "extra"
        ]
        values.append(extra)
        return values

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary (used by the experiment harness and benchmarks).

        Diagnostic extras (see :data:`DIAGNOSTIC_EXTRAS`) are omitted, so
        serialized records of one point are identical run-to-run.
        """
        record = asdict(self)
        extra = record.pop("extra")
        record.update(extra)
        for key in DIAGNOSTIC_EXTRAS:
            record.pop(key, None)
        return record


def format_metrics_table(rows, columns=None) -> str:
    """Render a list of TranspileMetrics (or dicts) as a text table."""
    dicts = [row.as_dict() if isinstance(row, TranspileMetrics) else dict(row) for row in rows]
    if not dicts:
        return "(no data)"
    if columns is None:
        columns = [
            "circuit_name",
            "circuit_qubits",
            "topology",
            "basis",
            "total_swaps",
            "critical_swaps",
            "total_2q",
            "critical_2q",
            "weighted_duration",
        ]
    widths = {
        column: max(len(str(column)), max(len(str(d.get(column, ""))) for d in dicts))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for entry in dicts:
        lines.append(
            "  ".join(str(entry.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
