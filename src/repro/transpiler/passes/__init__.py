"""Individual transpiler passes."""

from repro.transpiler.passes.basis_translation import BasisTranslation
from repro.transpiler.passes.cancellation import CancelAdjacentInverses
from repro.transpiler.passes.commutation import (
    CommutativeCancellation,
    instructions_commute,
)
from repro.transpiler.passes.decompose_multi import DecomposeMultiQubit
from repro.transpiler.passes.layout_passes import (
    DenseLayout,
    InteractionGraphLayout,
    TrivialLayout,
)
from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout, NoiseAwareRouting
from repro.transpiler.passes.optimize import Optimize1qGates, RemoveBarriers
from repro.transpiler.passes.routing import SabreRouting, StochasticRouting
from repro.transpiler.passes.routing_extra import BasicRouting
from repro.transpiler.passes.schedule_analysis import ScheduleAnalysis
from repro.transpiler.passes.vf2_layout import VF2Layout, interaction_graph

__all__ = [
    "BasisTranslation",
    "BasicRouting",
    "CancelAdjacentInverses",
    "CommutativeCancellation",
    "instructions_commute",
    "DecomposeMultiQubit",
    "DenseLayout",
    "InteractionGraphLayout",
    "TrivialLayout",
    "NoiseAwareLayout",
    "NoiseAwareRouting",
    "Optimize1qGates",
    "RemoveBarriers",
    "SabreRouting",
    "StochasticRouting",
    "ScheduleAnalysis",
    "VF2Layout",
    "interaction_graph",
]
