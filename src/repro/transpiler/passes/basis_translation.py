"""Basis-translation pass: express every 2Q gate in the machine's native basis.

Two modes are provided, mirroring how the paper uses decomposition:

* ``mode="count"`` (default, used by all large sweeps): each two-qubit
  instruction is replaced by ``k`` back-to-back applications of the basis
  gate on the same physical pair, where ``k`` is the analytic coverage
  count for the instruction's canonical (Weyl) class — see
  :mod:`repro.decomposition.coverage`.  Interleaved single-qubit gates are
  not materialised because the paper treats them as free; every counting
  metric (total 2Q gates, critical-path 2Q gates, weighted pulse duration)
  is exact under this substitution.
* ``mode="synthesis"``: each two-qubit instruction is replaced by an
  explicit, verifiable circuit — the exact closed-form rule when one is
  registered, otherwise a numerically optimised template
  (:class:`~repro.decomposition.approximate.TemplateDecomposer`) whose
  fidelity is checked against ``synthesis_fidelity``.  Intended for small
  circuits, validation and the examples.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.decomposition.approximate import TemplateDecomposer
from repro.decomposition.basis import BasisGateSpec
from repro.decomposition.cache import GLOBAL_DECOMPOSITION_CACHE, DecompositionCache
from repro.linalg.cache import matrix_fingerprint
from repro.linalg.weyl import WeylCoordinates
from repro.transpiler.passmanager import PropertySet, TranspilerPass


class BasisTranslationError(RuntimeError):
    """Raised when a gate cannot be translated into the target basis."""


class BasisTranslation(TranspilerPass):
    """Translate all two-qubit gates into a native basis gate."""

    name = "basis_translation"

    def __init__(
        self,
        basis: BasisGateSpec,
        mode: str = "count",
        synthesis_fidelity: float = 1.0 - 1e-6,
        max_applications: int = 6,
        cache: Optional[DecompositionCache] = None,
    ):
        if mode not in ("count", "synthesis"):
            raise ValueError(f"unknown translation mode {mode!r}")
        self._basis = basis
        self._mode = mode
        self._synthesis_fidelity = float(synthesis_fidelity)
        self._max_applications = int(max_applications)
        # Memos are shared process-wide (every transpile call rebuilds its
        # passes, so per-instance caches would be cold on every sweep point).
        self._cache = cache if cache is not None else GLOBAL_DECOMPOSITION_CACHE
        self._decomposer: Optional[TemplateDecomposer] = None

    # -- pass entry point --------------------------------------------------------

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        translated = QuantumCircuit(
            circuit.num_qubits, name=f"{circuit.name}[{self._basis.name}]"
        )
        basis_gate_count = 0
        for instruction in circuit:
            if not instruction.is_two_qubit:
                translated.append(
                    instruction.gate, instruction.qubits, induced=instruction.induced
                )
                continue
            if self._is_basis_gate(instruction):
                translated.append(
                    instruction.gate, instruction.qubits, induced=instruction.induced
                )
                basis_gate_count += 1
                continue
            if self._mode == "count":
                applications = self._count(instruction)
                for _ in range(applications):
                    translated.append(
                        self._basis.gate(),
                        instruction.qubits,
                        induced=instruction.induced,
                    )
                basis_gate_count += applications
            else:
                block = self._synthesize(instruction)
                for sub in block:
                    mapped = tuple(instruction.qubits[q] for q in sub.qubits)
                    translated.append(sub.gate, mapped, induced=instruction.induced)
                    if sub.is_two_qubit:
                        basis_gate_count += 1
        properties["basis"] = self._basis
        properties["translated_circuit"] = translated
        properties["basis_gate_count"] = basis_gate_count
        return translated

    # -- helpers --------------------------------------------------------------------

    def _is_basis_gate(self, instruction: Instruction) -> bool:
        gate = instruction.gate
        basis_gate = self._basis.gate()
        return gate.name == basis_gate.name and gate == basis_gate

    @staticmethod
    def _fingerprint(instruction: Instruction) -> object:
        gate = instruction.gate
        if gate.name == "unitary":
            return ("unitary", matrix_fingerprint(gate.cached_matrix()))
        return (gate.name, tuple(round(p, 10) for p in gate.params))

    def _coordinates(self, instruction: Instruction) -> WeylCoordinates:
        return self._cache.coordinates(
            instruction.gate.cached_matrix(), fingerprint=self._fingerprint(instruction)
        )

    def _count(self, instruction: Instruction) -> int:
        return self._cache.count(
            self._basis.name, self._coordinates(instruction), self._basis.count
        )

    def _synthesize(self, instruction: Instruction) -> QuantumCircuit:
        coordinates = self._coordinates(instruction)
        # The synthesis configuration participates in the key so instances
        # with a stricter fidelity target never reuse a looser template.
        key = (
            self._fingerprint(instruction),
            round(self._synthesis_fidelity, 12),
            self._max_applications,
        )
        cached = self._cache.synthesis(self._basis.name, coordinates, key)
        if cached is not None:
            return cached
        if self._decomposer is None:
            self._decomposer = TemplateDecomposer(
                self._basis.gate(),
                convergence_threshold=self._synthesis_fidelity,
                restarts=4,
            )
        target = instruction.gate.matrix()
        start = max(1, self._count(instruction))
        result = self._decomposer.decompose_adaptive(
            target, max_applications=self._max_applications, start_applications=start
        )
        if result.fidelity < self._synthesis_fidelity:
            raise BasisTranslationError(
                f"could not synthesise {instruction.name!r} in basis "
                f"{self._basis.name!r}: best fidelity {result.fidelity:.6f}"
            )
        self._cache.store_synthesis(self._basis.name, coordinates, key, result.circuit)
        return result.circuit
