"""Gate-cancellation pass.

Routing occasionally produces adjacent pairs of identical self-inverse
two-qubit gates on the same qubit pair (e.g. back-to-back SWAPs or CNOTs
with nothing in between), which inflate every counting metric without
changing the computation.  This pass removes such pairs.  It is not part
of the default paper pipeline (Qiskit 0.20's flow did not run 2Q
cancellation either) but is provided for the ablation benchmarks and for
users who want tighter circuits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.transpiler.passmanager import PropertySet, TranspilerPass

#: Gates that are their own inverse (by name) and safe to cancel pairwise.
_SELF_INVERSE = {"cx", "cz", "swap", "x", "y", "z", "h", "ccx"}


class CancelAdjacentInverses(TranspilerPass):
    """Remove adjacent gate pairs that multiply to the identity."""

    name = "cancel_adjacent_inverses"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        kept: List[Optional[Instruction]] = []
        # For every qubit, the index (into ``kept``) of the last instruction
        # touching it; a pair can only cancel when the earlier instruction is
        # still the most recent one on *all* of its qubits.
        last_on_qubit: Dict[int, int] = {}
        cancelled = 0
        for instruction in circuit:
            if instruction.name == "barrier":
                kept.append(instruction)
                continue
            candidate_index = self._cancellable_predecessor(
                instruction, kept, last_on_qubit
            )
            if candidate_index is not None:
                kept[candidate_index] = None
                cancelled += 2
                for qubit in instruction.qubits:
                    last_on_qubit.pop(qubit, None)
                continue
            kept.append(instruction)
            index = len(kept) - 1
            for qubit in instruction.qubits:
                last_on_qubit[qubit] = index
        result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
        for instruction in kept:
            if instruction is not None:
                result.append(instruction.gate, instruction.qubits, induced=instruction.induced)
        properties["cancelled_gates"] = properties.get("cancelled_gates", 0) + cancelled
        return result

    @staticmethod
    def _cancellable_predecessor(
        instruction: Instruction,
        kept: List[Optional[Instruction]],
        last_on_qubit: Dict[int, int],
    ) -> Optional[int]:
        """Index of a directly preceding instruction that cancels this one."""
        indices = {last_on_qubit.get(qubit) for qubit in instruction.qubits}
        if len(indices) != 1:
            return None
        (index,) = indices
        if index is None:
            return None
        previous = kept[index]
        if previous is None or previous.qubits != instruction.qubits:
            return None
        if previous.name != instruction.name:
            return None
        if instruction.name in _SELF_INVERSE:
            return index
        # Parameterised same-name gates cancel when their matrices are inverse.
        try:
            product = previous.gate.matrix() @ instruction.gate.matrix()
        except NotImplementedError:  # pragma: no cover - all gates define matrices
            return None
        dim = product.shape[0]
        phase = product[0, 0]
        if abs(abs(phase) - 1.0) > 1e-9:
            return None
        if np.allclose(product, phase * np.eye(dim), atol=1e-9):
            return index
        return None
