"""Commutation-aware gate cancellation.

:class:`CancelAdjacentInverses` only removes inverse pairs that are
literally adjacent on all of their qubits.  Routing and basis translation
frequently leave inverse pairs separated by gates that *commute* with them
(e.g. two CX gates on the same pair separated by an RZ on the control, or
back-to-back routing SWAPs separated by a gate on an unrelated qubit pair
that happens to share one endpoint).  :class:`CommutativeCancellation`
handles that case: it walks backwards from every instruction over gates
that commute with it on the shared qubits and cancels the pair when it
finds an inverse.

Commutation is decided numerically on the joint unitary of the two
instructions (at most four qubits), so the pass is conservative but exact:
it never changes the circuit unitary, which the tests verify directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.transpiler.passmanager import PropertySet, TranspilerPass

_ATOL = 1e-9


def _joint_unitary(first: Instruction, second: Instruction) -> Tuple[np.ndarray, np.ndarray]:
    """Matrices of two instructions expanded onto their joint qubit set."""
    qubits = sorted(set(first.qubits) | set(second.qubits))
    index = {qubit: position for position, qubit in enumerate(qubits)}
    dim = 2 ** len(qubits)

    def expand(instruction: Instruction) -> np.ndarray:
        matrix = np.eye(dim, dtype=complex).reshape([2] * (2 * len(qubits)))
        gate = instruction.gate.matrix().reshape([2] * (2 * instruction.num_qubits))
        # Row axis for joint qubit position p is p (most-significant first).
        axes = [index[q] for q in instruction.qubits]
        contracted = np.tensordot(
            gate,
            matrix,
            axes=(list(range(instruction.num_qubits, 2 * instruction.num_qubits)), axes),
        )
        moved = np.moveaxis(contracted, range(instruction.num_qubits), axes)
        return moved.reshape(dim, dim)

    return expand(first), expand(second)


def instructions_commute(first: Instruction, second: Instruction) -> bool:
    """True when the two instructions commute (exactly, up to numerical tolerance)."""
    if not set(first.qubits) & set(second.qubits):
        return True
    if first.name == "barrier" or second.name == "barrier":
        return False
    matrix_a, matrix_b = _joint_unitary(first, second)
    return bool(np.allclose(matrix_a @ matrix_b, matrix_b @ matrix_a, atol=_ATOL))


def _is_inverse_pair(first: Instruction, second: Instruction) -> bool:
    """True when applying ``first`` then ``second`` is the identity (up to phase)."""
    if first.qubits != second.qubits:
        return False
    if first.name == "barrier" or second.name == "barrier":
        return False
    product = second.gate.matrix() @ first.gate.matrix()
    phase = product[0, 0]
    if abs(abs(phase) - 1.0) > _ATOL:
        return False
    return bool(np.allclose(product, phase * np.eye(product.shape[0]), atol=_ATOL))


class CommutativeCancellation(TranspilerPass):
    """Cancel inverse pairs separated only by commuting gates.

    The search window per instruction is bounded (``max_lookback``) to keep
    the pass linear in practice; a window of a few tens of gates captures
    essentially all cancellations produced by routing.
    """

    name = "commutative_cancellation"

    def __init__(self, max_lookback: int = 20):
        self._max_lookback = max(1, int(max_lookback))

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        kept: List[Optional[Instruction]] = []
        cancelled = 0
        for instruction in circuit:
            if instruction.name == "barrier":
                kept.append(instruction)
                continue
            partner = self._find_cancellable_partner(instruction, kept)
            if partner is not None:
                kept[partner] = None
                cancelled += 2
                continue
            kept.append(instruction)
        result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
        for instruction in kept:
            if instruction is not None:
                result.append(instruction.gate, instruction.qubits, induced=instruction.induced)
        properties["commutative_cancelled"] = (
            properties.get("commutative_cancelled", 0) + cancelled
        )
        return result

    def _find_cancellable_partner(
        self, instruction: Instruction, kept: List[Optional[Instruction]]
    ) -> Optional[int]:
        """Index into ``kept`` of an earlier instruction that cancels this one."""
        seen = 0
        for index in range(len(kept) - 1, -1, -1):
            earlier = kept[index]
            if earlier is None:
                continue
            seen += 1
            if seen > self._max_lookback:
                return None
            if _is_inverse_pair(earlier, instruction):
                return index
            if not instructions_commute(earlier, instruction):
                return None
        return None
