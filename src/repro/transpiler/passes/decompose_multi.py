"""Pre-routing pass: expand gates on three or more qubits into 1Q + 2Q gates.

Routing and basis translation operate on one- and two-qubit gates only
(the paper's machines expose two-qubit native gates).  Workloads such as
the CDKM ripple-carry adder contain Toffoli gates, which this pass expands
using the exact rules in :mod:`repro.decomposition.exact`.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.decomposition.exact import expand_named_gate
from repro.transpiler.passmanager import PropertySet, TranspilerPass


class DecomposeMultiQubit(TranspilerPass):
    """Expand >=3-qubit gates into single- and two-qubit gates."""

    name = "decompose_multi_qubit"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        if all(inst.num_qubits <= 2 or inst.name == "barrier" for inst in circuit):
            return circuit
        expanded = QuantumCircuit(circuit.num_qubits, name=circuit.name)
        for instruction in circuit:
            if instruction.num_qubits <= 2 or instruction.name == "barrier":
                expanded.append(instruction.gate, instruction.qubits, induced=instruction.induced)
                continue
            rule = expand_named_gate(instruction.gate)
            for sub in rule:
                mapped = tuple(instruction.qubits[q] for q in sub.qubits)
                expanded.append(sub.gate, mapped, induced=instruction.induced)
        return expanded
