"""Initial-layout selection passes.

The paper uses Qiskit's ``DenseLayout`` for initial qubit mapping
(Section 5); :class:`DenseLayout` reproduces its strategy (place the
algorithm on the densest connected patch of the device).  A trivial layout
and an interaction-aware greedy layout are also provided for ablation.

Layout passes are *analysis* passes: they do not change the circuit, they
only record ``properties["layout"]``.

Hot path: like the routers, the layout scorers run on NumPy arrays — the
cached :meth:`~repro.topology.coupling.CouplingMap.adjacency_matrix` /
:meth:`~repro.topology.coupling.CouplingMap.distance_matrix` and the
shared DAG's interaction counts (:meth:`~repro.circuits.dag.DAGCircuit.
qubit_activity` / :meth:`~repro.circuits.dag.DAGCircuit.
interaction_matrix`) — instead of per-candidate Python loops.  The
original scorers survive as ``engine="reference"`` and select
bit-identical layouts (pinned by
``tests/transpiler/test_layout_vectorized.py``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PropertySet, TranspilerPass

_ENGINES = ("vector", "reference")


def _check_engine(engine: str) -> str:
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; engines are {_ENGINES}")
    return engine


class TrivialLayout(TranspilerPass):
    """Map virtual qubit ``i`` to physical qubit ``i``."""

    name = "trivial_layout"

    def __init__(self, coupling_map: CouplingMap):
        self._coupling_map = coupling_map

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        if circuit.num_qubits > self._coupling_map.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but the device has "
                f"{self._coupling_map.num_qubits}"
            )
        properties["layout"] = Layout.trivial(circuit.num_qubits)
        properties["coupling_map"] = self._coupling_map
        return circuit


class DenseLayout(TranspilerPass):
    """Place the circuit on the densest connected subset of the device.

    Within the chosen subset, the most-active virtual qubits (by two-qubit
    interaction count) are assigned to the best-connected physical qubits,
    mirroring Qiskit's DenseLayout behaviour closely enough for the
    purposes of the paper's evaluation.
    """

    name = "dense_layout"

    def __init__(self, coupling_map: CouplingMap, engine: str = "vector"):
        self._coupling_map = coupling_map
        self._engine = _check_engine(engine)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        device = self._coupling_map
        if circuit.num_qubits > device.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but the device has "
                f"{device.num_qubits}"
            )
        if self._engine == "vector":
            layout = self._select_vector(circuit, properties)
        else:
            layout = self._select_reference(circuit, properties)
        properties["layout"] = layout
        properties["coupling_map"] = device
        return circuit

    def _select_vector(self, circuit: QuantumCircuit, properties: PropertySet) -> Layout:
        """Subset growth, connectivity ranking and activity ranking on arrays."""
        device = self._coupling_map
        subset = np.asarray(device.densest_subset(circuit.num_qubits), dtype=np.int64)
        # Rank physical qubits by connectivity *within* the chosen subset:
        # row sums of the induced adjacency submatrix, sorted by
        # (-degree, qubit) — `subset` is ascending, so a stable lexsort on
        # the negated degrees reproduces the reference tuple sort exactly.
        adjacency = device.adjacency_matrix()
        internal_degree = adjacency[np.ix_(subset, subset)].sum(axis=1)
        physical_ranked = subset[np.lexsort((subset, -internal_degree))]
        # Rank virtual qubits by 2Q activity from the shared DAG (reused by
        # the routing stage instead of being rebuilt).
        activity = DAGCircuit.shared(circuit, properties).qubit_activity()
        activity = activity[: circuit.num_qubits]
        virtual_indices = np.arange(circuit.num_qubits, dtype=np.int64)
        virtual_ranked = virtual_indices[np.lexsort((virtual_indices, -activity))]
        return Layout(
            {int(virtual): int(physical) for virtual, physical in zip(virtual_ranked, physical_ranked)}
        )

    def _select_reference(self, circuit: QuantumCircuit, properties: PropertySet) -> Layout:
        """The pre-vectorization scorer (Python loops), kept as parity oracle."""
        device = self._coupling_map
        subset = device.densest_subset(circuit.num_qubits, engine="reference")
        subset_set = set(subset)
        internal_degree = {
            qubit: sum(1 for nb in device.neighbors(qubit) if nb in subset_set)
            for qubit in subset
        }
        physical_ranked = sorted(subset, key=lambda q: (-internal_degree[q], q))
        activity: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
        interactions = DAGCircuit.shared(circuit, properties).two_qubit_interactions()
        for pair, count in interactions.items():
            activity[pair[0]] += count
            activity[pair[1]] += count
        virtual_ranked = sorted(
            range(circuit.num_qubits), key=lambda q: (-activity[q], q)
        )
        return Layout(
            {virtual: physical for virtual, physical in zip(virtual_ranked, physical_ranked)}
        )


class InteractionGraphLayout(TranspilerPass):
    """Greedy interaction-graph embedding (an alternative to DenseLayout).

    Virtual qubits are placed one at a time in decreasing order of
    interaction weight; each is assigned to the free physical qubit that
    minimises the distance-weighted cost to its already-placed partners.
    """

    name = "interaction_layout"

    def __init__(self, coupling_map: CouplingMap, seed: int = 0, engine: str = "vector"):
        self._coupling_map = coupling_map
        self._seed = seed
        self._engine = _check_engine(engine)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        device = self._coupling_map
        if circuit.num_qubits > device.num_qubits:
            raise ValueError("circuit does not fit on the device")
        if self._engine == "vector":
            placement = self._place_vector(circuit, properties)
        else:
            placement = self._place_reference(circuit, properties)
        properties["layout"] = Layout(placement)
        properties["coupling_map"] = device
        return circuit

    def _place_vector(
        self, circuit: QuantumCircuit, properties: PropertySet
    ) -> Dict[int, int]:
        """Score all free seats for each placement in one gather/matmul.

        Cost sums are exact integer arithmetic (identical to the reference
        regardless of summation order) and the per-seat jitter draws the
        same RNG stream the reference consumes inside ``min`` — iteration
        over the reference's ``free`` set of qubit indices is ascending,
        matching ``np.flatnonzero`` — so placements are bit-identical.
        """
        device = self._coupling_map
        n_virtual = circuit.num_qubits
        rng = np.random.default_rng(self._seed)
        distance = device.distance_matrix().astype(np.int64)
        weights = DAGCircuit.shared(circuit, properties).interaction_matrix()
        weights = weights[:n_virtual, :n_virtual]
        totals = weights.sum(axis=1)
        order = np.argsort(-totals, kind="stable")
        free_mask = np.ones(device.num_qubits, dtype=bool)
        seat_of_virtual = np.full(n_virtual, -1, dtype=np.int64)
        placed: list = []
        placement: Dict[int, int] = {}
        for virtual in order:
            free = np.flatnonzero(free_mask)
            jitter = rng.uniform(0, 1e-6, size=len(free))
            partner_counts = weights[virtual, placed] if placed else np.empty(0, np.int64)
            if not partner_counts.any():
                # Seed unconnected (or first) qubits near the device centre.
                cost = distance[np.ix_(free, free)].sum(axis=1)
            else:
                seats = seat_of_virtual[placed]
                cost = distance[np.ix_(free, seats)] @ partner_counts
            choice = int(free[np.argmin(cost.astype(np.float64) + jitter)])
            placement[int(virtual)] = choice
            seat_of_virtual[virtual] = choice
            placed.append(int(virtual))
            free_mask[choice] = False
        return placement

    def _place_reference(
        self, circuit: QuantumCircuit, properties: PropertySet
    ) -> Dict[int, int]:
        """The pre-vectorization placer (Python loops), kept as parity oracle."""
        device = self._coupling_map
        rng = np.random.default_rng(self._seed)
        distance = device.distance_matrix()
        interactions = DAGCircuit.shared(circuit, properties).two_qubit_interactions()
        weight: Dict[int, Dict[int, int]] = {}
        for (a, b), count in interactions.items():
            weight.setdefault(a, {})[b] = count
            weight.setdefault(b, {})[a] = count
        order = sorted(
            range(circuit.num_qubits),
            key=lambda q: -sum(weight.get(q, {}).values()),
        )
        free = set(range(device.num_qubits))
        placement: Dict[int, int] = {}
        for virtual in order:
            partners = [
                (placement[other], count)
                for other, count in weight.get(virtual, {}).items()
                if other in placement
            ]
            if not partners:
                # Seed unconnected (or first) qubits near the device centre.
                centre = min(
                    free,
                    key=lambda q: float(np.sum(distance[q, list(free)]))
                    + rng.uniform(0, 1e-6),
                )
                placement[virtual] = centre
            else:
                best = min(
                    free,
                    key=lambda q: sum(
                        distance[q, physical] * count for physical, count in partners
                    )
                    + rng.uniform(0, 1e-6),
                )
                placement[virtual] = best
            free.remove(placement[virtual])
        return placement
