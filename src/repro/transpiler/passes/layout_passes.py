"""Initial-layout selection passes.

The paper uses Qiskit's ``DenseLayout`` for initial qubit mapping
(Section 5); :class:`DenseLayout` reproduces its strategy (place the
algorithm on the densest connected patch of the device).  A trivial layout
and an interaction-aware greedy layout are also provided for ablation.

Layout passes are *analysis* passes: they do not change the circuit, they
only record ``properties["layout"]``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PropertySet, TranspilerPass


class TrivialLayout(TranspilerPass):
    """Map virtual qubit ``i`` to physical qubit ``i``."""

    name = "trivial_layout"

    def __init__(self, coupling_map: CouplingMap):
        self._coupling_map = coupling_map

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        if circuit.num_qubits > self._coupling_map.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but the device has "
                f"{self._coupling_map.num_qubits}"
            )
        properties["layout"] = Layout.trivial(circuit.num_qubits)
        properties["coupling_map"] = self._coupling_map
        return circuit


class DenseLayout(TranspilerPass):
    """Place the circuit on the densest connected subset of the device.

    Within the chosen subset, the most-active virtual qubits (by two-qubit
    interaction count) are assigned to the best-connected physical qubits,
    mirroring Qiskit's DenseLayout behaviour closely enough for the
    purposes of the paper's evaluation.
    """

    name = "dense_layout"

    def __init__(self, coupling_map: CouplingMap):
        self._coupling_map = coupling_map

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        device = self._coupling_map
        if circuit.num_qubits > device.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but the device has "
                f"{device.num_qubits}"
            )
        subset = device.densest_subset(circuit.num_qubits)
        # Rank physical qubits by connectivity *within* the chosen subset.
        subset_set = set(subset)
        internal_degree = {
            qubit: sum(1 for nb in device.neighbors(qubit) if nb in subset_set)
            for qubit in subset
        }
        physical_ranked = sorted(subset, key=lambda q: (-internal_degree[q], q))
        # Rank virtual qubits by how often they participate in 2Q gates.
        # The interaction counts come from the shared DAG, so the DAG built
        # here is reused by the routing stage instead of being rebuilt.
        activity: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
        interactions = DAGCircuit.shared(circuit, properties).two_qubit_interactions()
        for pair, count in interactions.items():
            activity[pair[0]] += count
            activity[pair[1]] += count
        virtual_ranked = sorted(
            range(circuit.num_qubits), key=lambda q: (-activity[q], q)
        )
        layout = Layout(
            {virtual: physical for virtual, physical in zip(virtual_ranked, physical_ranked)}
        )
        properties["layout"] = layout
        properties["coupling_map"] = device
        return circuit


class InteractionGraphLayout(TranspilerPass):
    """Greedy interaction-graph embedding (an alternative to DenseLayout).

    Virtual qubits are placed one at a time in decreasing order of
    interaction weight; each is assigned to the free physical qubit that
    minimises the distance-weighted cost to its already-placed partners.
    """

    name = "interaction_layout"

    def __init__(self, coupling_map: CouplingMap, seed: int = 0):
        self._coupling_map = coupling_map
        self._seed = seed

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        device = self._coupling_map
        if circuit.num_qubits > device.num_qubits:
            raise ValueError("circuit does not fit on the device")
        rng = np.random.default_rng(self._seed)
        distance = device.distance_matrix()
        interactions = DAGCircuit.shared(circuit, properties).two_qubit_interactions()
        weight: Dict[int, Dict[int, int]] = {}
        for (a, b), count in interactions.items():
            weight.setdefault(a, {})[b] = count
            weight.setdefault(b, {})[a] = count
        order = sorted(
            range(circuit.num_qubits),
            key=lambda q: -sum(weight.get(q, {}).values()),
        )
        free = set(range(device.num_qubits))
        placement: Dict[int, int] = {}
        for virtual in order:
            partners = [
                (placement[other], count)
                for other, count in weight.get(virtual, {}).items()
                if other in placement
            ]
            if not partners:
                # Seed unconnected (or first) qubits near the device centre.
                centre = min(
                    free,
                    key=lambda q: float(np.sum(distance[q, list(free)]))
                    + rng.uniform(0, 1e-6),
                )
                placement[virtual] = centre
            else:
                best = min(
                    free,
                    key=lambda q: sum(
                        distance[q, physical] * count for physical, count in partners
                    )
                    + rng.uniform(0, 1e-6),
                )
                placement[virtual] = best
            free.remove(placement[virtual])
        properties["layout"] = Layout(placement)
        properties["coupling_map"] = device
        return circuit
