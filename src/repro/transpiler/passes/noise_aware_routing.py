"""Noise-aware routing: prefer high-fidelity edges when inserting SWAPs.

The paper's related work (its reference [34], Murali et al.) maps circuits
with awareness of per-edge error rates; the paper itself sidesteps the
issue by assuming uniform fidelity.  This pass closes that gap for the
heterogeneous-noise extension studies: it is the SABRE-style distance
heuristic of :class:`~repro.transpiler.passes.routing.SabreRouting`
augmented with an edge-cost term derived from a
:class:`~repro.core.noise.NoiseModel`, so that routing avoids SWAPs on
low-fidelity couplings when an almost-as-short alternative exists.

The cost of using an edge is ``1 - log(fidelity) / log(fidelity_floor)``
scaled into a SWAP-count-comparable unit, i.e. a perfect edge costs 1 hop
and an edge at the floor fidelity costs ``1 + noise_weight`` hops.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit
from repro.core.noise import NoiseModel
from repro.gates import SwapGate
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passes.layout_passes import _check_engine
from repro.transpiler.passes.routing import (
    _candidate_swap_array,
    _layout_arrays,
    _layout_from_array,
    _remapped_pair_costs,
    _sequential_tie_break,
    _swap_in_arrays,
    _TIE_EPS,
)
from repro.transpiler.passmanager import PropertySet, TranspilerPass


class NoiseAwareLayout(TranspilerPass):
    """Initial layout on the highest-fidelity connected patch of the device.

    The greedy densest-subset search of
    :class:`~repro.transpiler.passes.layout_passes.DenseLayout` is repeated
    with edge weights equal to each coupling's fidelity, so the circuit is
    placed where gates are *good*, not merely where they are plentiful.
    Falls back to plain DenseLayout behaviour under a uniform noise model.

    Hot path: ``engine="vector"`` scores subset growth and qubit quality
    on the :meth:`~repro.core.noise.NoiseModel.fidelity_matrix` array —
    sequential-order sums via ``cumsum``, so the float scores (and hence
    every tie-break) are bit-identical to the ``engine="reference"``
    Python-loop scorer it replaced.
    """

    name = "noise_aware_layout"

    def __init__(
        self,
        coupling_map: CouplingMap,
        noise_model: Optional[NoiseModel] = None,
        engine: str = "vector",
    ):
        self._coupling_map = coupling_map
        self._noise_model = noise_model
        self._engine = _check_engine(engine)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        device = self._coupling_map
        if circuit.num_qubits > device.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but the device has "
                f"{device.num_qubits}"
            )
        noise_model: NoiseModel = (
            self._noise_model
            or properties.get("noise_model")
            or NoiseModel.uniform()
        )
        if self._engine == "vector":
            physical_ranked = self._rank_physical_vector(
                circuit.num_qubits, device, noise_model
            )
        else:
            physical_ranked = self._rank_physical_reference(
                circuit.num_qubits, device, noise_model
            )
        # Activity ranking from the shared DAG's precomputed count array
        # (same integers the dense/interaction layouts consume, same
        # (-activity, q) order as the old Counter walk).
        activity = DAGCircuit.shared(circuit, properties).qubit_activity()
        virtual_indices = np.arange(circuit.num_qubits, dtype=np.int64)
        virtual_ranked = virtual_indices[np.lexsort((virtual_indices, -activity))]
        properties["layout"] = Layout(
            {int(virtual): int(physical) for virtual, physical in zip(virtual_ranked, physical_ranked)}
        )
        properties["coupling_map"] = device
        properties["noise_model"] = noise_model
        return circuit

    # -- vectorized scorer ---------------------------------------------------

    @staticmethod
    def _rank_physical_vector(
        size: int, device: CouplingMap, noise_model: NoiseModel
    ) -> List[int]:
        """Subset search and quality ranking on the fidelity matrix.

        Every float sum the reference takes over ascending neighbour /
        edge order is reproduced as a ``cumsum`` over ascending indices
        (adding the zeros of non-edges is exact), so scores round
        identically and the greedy choices match bit for bit.
        """
        weights = noise_model.fidelity_matrix(device)
        subset = np.asarray(
            NoiseAwareLayout._best_subset_vector(size, device, weights),
            dtype=np.int64,
        )
        # Quality = total fidelity of a qubit's couplings inside the
        # subset: sequential row sums of the induced submatrix.
        quality = np.cumsum(weights[np.ix_(subset, subset)], axis=1)[:, -1]
        return [int(q) for q in subset[np.lexsort((subset, -quality))]]

    @staticmethod
    def _best_subset_vector(
        size: int, device: CouplingMap, weights: np.ndarray
    ) -> List[int]:
        """Greedy connected subset maximising total internal edge fidelity."""
        n = device.num_qubits
        if size >= n:
            return list(range(n))
        adjacency = device.adjacency_matrix()
        degrees = adjacency.sum(axis=1).astype(np.int64)
        qubits = np.arange(n, dtype=np.int64)
        seed_count = max(4, n // 8)
        seeds = qubits[np.lexsort((qubits, -degrees))][:seed_count]
        edges = np.asarray(device.edges(), dtype=np.int64).reshape(-1, 2)
        best_subset: List[int] = []
        best_score = -np.inf
        for seed in seeds:
            in_subset = np.zeros(n, dtype=bool)
            in_subset[seed] = True
            for _ in range(size - 1):
                frontier = np.flatnonzero(
                    adjacency[:, in_subset].any(axis=1) & ~in_subset
                )
                if frontier.size == 0:
                    remaining = np.flatnonzero(~in_subset)
                    if remaining.size == 0:
                        break
                    frontier = remaining[:1]
                # Gain of each candidate = sequential sum of its edge
                # fidelities into the subset (ascending column order).
                members = np.flatnonzero(in_subset)
                gains = np.cumsum(weights[np.ix_(frontier, members)], axis=1)[:, -1]
                order = np.lexsort((frontier, -degrees[frontier], -gains))
                in_subset[frontier[order[0]]] = True
            internal = in_subset[edges[:, 0]] & in_subset[edges[:, 1]]
            values = weights[edges[internal, 0], edges[internal, 1]]
            score = float(np.cumsum(values)[-1]) if values.size else 0.0
            if score > best_score:
                best_score = score
                best_subset = [int(q) for q in np.flatnonzero(in_subset)]
        return best_subset

    # -- reference scorer ----------------------------------------------------

    @staticmethod
    def _rank_physical_reference(
        size: int, device: CouplingMap, noise_model: NoiseModel
    ) -> List[int]:
        """The pre-vectorization scorer (Python loops), kept as parity oracle."""
        subset = NoiseAwareLayout._best_subset(size, device, noise_model)
        subset_set = set(subset)
        # Rank physical qubits by the total fidelity of their couplings
        # inside the chosen subset.
        quality = {
            qubit: sum(
                noise_model.fidelity(qubit, neighbor)
                for neighbor in device.neighbors(qubit)
                if neighbor in subset_set
            )
            for qubit in subset
        }
        return sorted(subset, key=lambda q: (-quality[q], q))

    @staticmethod
    def _best_subset(size: int, device: CouplingMap, noise_model: NoiseModel) -> List[int]:
        """Greedy connected subset maximising total internal edge fidelity."""
        if size >= device.num_qubits:
            return list(range(device.num_qubits))
        best_subset: List[int] = []
        best_score = -np.inf
        degrees = {q: device.degree(q) for q in range(device.num_qubits)}
        seeds = sorted(degrees, key=lambda q: -degrees[q])[: max(4, device.num_qubits // 8)]
        for seed in seeds:
            subset = {seed}
            while len(subset) < size:
                frontier = {
                    neighbor
                    for node in subset
                    for neighbor in device.neighbors(node)
                } - subset
                if not frontier:
                    remaining = [q for q in range(device.num_qubits) if q not in subset]
                    if not remaining:
                        break
                    frontier = {remaining[0]}
                choice = max(
                    frontier,
                    key=lambda q: (
                        sum(
                            noise_model.fidelity(q, neighbor)
                            for neighbor in device.neighbors(q)
                            if neighbor in subset
                        ),
                        degrees[q],
                        -q,
                    ),
                )
                subset.add(choice)
            score = sum(
                noise_model.fidelity(a, b)
                for a, b in device.edges()
                if a in subset and b in subset
            )
            if score > best_score:
                best_score = score
                best_subset = sorted(subset)
        return best_subset


class NoiseAwareRouting(TranspilerPass):
    """Greedy router whose distance metric penalises low-fidelity edges."""

    name = "noise_aware_routing"

    def __init__(
        self,
        coupling_map: Optional[CouplingMap] = None,
        noise_model: Optional[NoiseModel] = None,
        noise_weight: float = 2.0,
        fidelity_floor: float = 0.9,
        seed: int = 0,
        engine: str = "vector",
    ):
        if noise_weight < 0.0:
            raise ValueError("noise_weight must be non-negative")
        if not 0.0 < fidelity_floor < 1.0:
            raise ValueError("fidelity_floor must lie strictly between 0 and 1")
        if engine not in ("vector", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self._coupling_map = coupling_map
        self._noise_model = noise_model
        self._noise_weight = float(noise_weight)
        self._fidelity_floor = float(fidelity_floor)
        self._seed = int(seed)
        self._engine = engine

    # -- cost model -----------------------------------------------------------

    def edge_cost(self, noise_model: NoiseModel, qubit_a: int, qubit_b: int) -> float:
        """Cost of one two-qubit gate on an edge (1.0 for a perfect edge)."""
        fidelity = max(noise_model.fidelity(qubit_a, qubit_b), self._fidelity_floor)
        penalty = np.log(fidelity) / np.log(self._fidelity_floor)
        return float(1.0 + self._noise_weight * penalty)

    def _weighted_distance(
        self, coupling_map: CouplingMap, noise_model: NoiseModel
    ) -> np.ndarray:
        """All-pairs shortest-path distances under the edge-cost metric."""
        graph = nx.Graph()
        graph.add_nodes_from(range(coupling_map.num_qubits))
        for a, b in coupling_map.edges():
            graph.add_edge(a, b, weight=self.edge_cost(noise_model, a, b))
        distance = np.full((coupling_map.num_qubits, coupling_map.num_qubits), np.inf)
        for source, lengths in nx.all_pairs_dijkstra_path_length(graph, weight="weight"):
            for target, value in lengths.items():
                distance[source, target] = value
        return distance

    def _edge_cost_matrix(
        self, coupling_map: CouplingMap, noise_model: NoiseModel
    ) -> np.ndarray:
        """Per-edge cost as a dense symmetric matrix (non-edges stay 0)."""
        cost = np.zeros((coupling_map.num_qubits, coupling_map.num_qubits))
        for a, b in coupling_map.edges():
            cost[a, b] = cost[b, a] = self.edge_cost(noise_model, a, b)
        return cost

    # -- pass entry point ---------------------------------------------------------

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = self._coupling_map or properties.require("coupling_map")
        noise_model: NoiseModel = (
            self._noise_model
            or properties.get("noise_model")
            or NoiseModel.uniform()
        )
        layout: Layout = properties.require("layout")
        rng = np.random.default_rng(self._seed)
        distance = self._weighted_distance(coupling_map, noise_model)
        swap_costs = 3.0 * self._edge_cost_matrix(coupling_map, noise_model)

        dag = DAGCircuit.shared(circuit, properties)
        instructions = dag.instructions
        remaining = dag.predecessor_counts()
        succ_indptr = dag.successor_indptr
        succ_indices = dag.successor_indices
        needs_coupling = dag.coupling_mask
        pairs = dag.qubit_pairs
        adjacency = coupling_map.adjacency_matrix()
        v2p, p2v = _layout_arrays(layout, coupling_map.num_qubits)
        front: List[int] = dag.front_layer()
        output = QuantumCircuit(
            coupling_map.num_qubits, name=f"{circuit.name}@{coupling_map.name}"
        )
        swaps_inserted = 0
        stall_counter = 0
        stall_limit = 10 * max(4, coupling_map.num_qubits)

        def emit(node_index: int) -> None:
            instruction = instructions[node_index]
            physical = tuple(int(v2p[q]) for q in instruction.qubits)
            output.append(instruction.gate, physical, induced=instruction.induced)

        def advance(executed: Sequence[int]) -> None:
            for node_index in executed:
                front.remove(node_index)
                start, stop = succ_indptr[node_index], succ_indptr[node_index + 1]
                for successor in succ_indices[start:stop]:
                    remaining[successor] -= 1
                    if remaining[successor] == 0:
                        front.append(int(successor))

        while front:
            ready = [
                index
                for index in front
                if not needs_coupling[index]
                or adjacency[v2p[pairs[index, 0]], v2p[pairs[index, 1]]]
            ]
            if ready:
                for node_index in ready:
                    emit(node_index)
                advance(ready)
                stall_counter = 0
                continue
            if stall_counter > stall_limit:
                # Escape rare greedy oscillations by routing the first
                # blocked gate directly along a shortest (hop-count) path.
                instruction = instructions[front[0]]
                path = coupling_map.shortest_path(
                    int(v2p[instruction.qubits[0]]), int(v2p[instruction.qubits[1]])
                )
                for hop in range(len(path) - 2):
                    output.append(SwapGate(), (path[hop], path[hop + 1]), induced=True)
                    _swap_in_arrays(v2p, p2v, path[hop], path[hop + 1])
                    swaps_inserted += 1
                stall_counter = 0
                continue
            front_pairs = v2p[pairs[front]]
            candidates = _candidate_swap_array(front_pairs, coupling_map)
            if self._engine == "vector":
                scores = (
                    _remapped_pair_costs(candidates, front_pairs, distance)
                    + swap_costs[candidates[:, 0], candidates[:, 1]]
                )
                choice = _sequential_tie_break(scores, rng)
            else:
                choice = self._select_swap_reference(
                    candidates, front_pairs, noise_model, distance, rng
                )
            best_swap = (int(candidates[choice, 0]), int(candidates[choice, 1]))
            output.append(SwapGate(), best_swap, induced=True)
            _swap_in_arrays(v2p, p2v, *best_swap)
            swaps_inserted += 1
            stall_counter += 1

        properties["final_layout"] = _layout_from_array(v2p)
        properties["routing_swaps"] = swaps_inserted
        properties["routed_circuit"] = output
        return output

    # -- SWAP selection ----------------------------------------------------------------

    def _select_swap_reference(
        self,
        candidates: np.ndarray,
        front_pairs: np.ndarray,
        noise_model: NoiseModel,
        distance: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """The pre-vectorization scorer (Python loop), kept as parity oracle."""
        best_score = np.inf
        best_choices: List[int] = []
        for index in range(len(candidates)):
            physical_a = int(candidates[index, 0])
            physical_b = int(candidates[index, 1])
            remapped = front_pairs.copy()
            remapped[front_pairs == physical_a] = -1
            remapped[front_pairs == physical_b] = physical_a
            remapped[remapped == -1] = physical_b
            front_cost = float(distance[remapped[:, 0], remapped[:, 1]].sum())
            swap_cost = 3.0 * self.edge_cost(noise_model, physical_a, physical_b)
            score = front_cost + swap_cost
            if score < best_score - _TIE_EPS:
                best_score = score
                best_choices = [index]
            elif abs(score - best_score) <= _TIE_EPS:
                best_choices.append(index)
        return best_choices[int(rng.integers(len(best_choices)))]
