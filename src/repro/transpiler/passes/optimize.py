"""Post-translation clean-up passes.

The paper treats single-qubit gates as free, so these passes do not change
any reported metric; they exist to keep synthesised circuits tidy (merging
runs of adjacent single-qubit gates into one ``U3``) and to drop gates that
are numerically the identity.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.gates import U3Gate
from repro.linalg.su2 import zyz_decomposition
from repro.transpiler.passmanager import PropertySet, TranspilerPass


class Optimize1qGates(TranspilerPass):
    """Merge adjacent single-qubit gates on each wire into a single U3."""

    name = "optimize_1q"

    def __init__(self, drop_identity_atol: float = 1e-9):
        self._atol = float(drop_identity_atol)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        optimized = QuantumCircuit(circuit.num_qubits, name=circuit.name)
        pending: Dict[int, np.ndarray] = {}

        def flush(qubit: int) -> None:
            matrix = pending.pop(qubit, None)
            if matrix is None:
                return
            if np.allclose(matrix, np.eye(2) * matrix[0, 0], atol=self._atol) and abs(
                abs(matrix[0, 0]) - 1.0
            ) < self._atol:
                return  # global-phase-only: drop it
            euler = zyz_decomposition(matrix)
            optimized.append(
                U3Gate(euler.gamma, euler.beta, euler.delta), (qubit,)
            )

        for instruction in circuit:
            if instruction.num_qubits == 1 and instruction.name != "barrier":
                qubit = instruction.qubits[0]
                current = pending.get(qubit, np.eye(2, dtype=complex))
                pending[qubit] = instruction.gate.matrix() @ current
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            optimized.append(instruction.gate, instruction.qubits, induced=instruction.induced)
        for qubit in list(pending):
            flush(qubit)
        return optimized


class RemoveBarriers(TranspilerPass):
    """Drop all barrier instructions."""

    name = "remove_barriers"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        stripped = QuantumCircuit(circuit.num_qubits, name=circuit.name)
        for instruction in circuit:
            if instruction.name == "barrier":
                continue
            stripped.append(instruction.gate, instruction.qubits, induced=instruction.induced)
        return stripped
