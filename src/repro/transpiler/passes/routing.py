"""Routing passes: insert SWAPs so every 2Q gate acts on coupled qubits.

Two routers are provided:

* :class:`SabreRouting` — a SABRE-style lookahead router (Li, Ding, Xie,
  ASPLOS 2019): greedily executes every front-layer gate whose mapped
  qubits are adjacent, otherwise inserts the candidate SWAP minimising a
  distance heuristic over the front layer plus a discounted extended set,
  with a decay term that spreads SWAPs across qubits.  This is the default
  router for all paper experiments.
* :class:`StochasticRouting` — a randomised router in the spirit of
  Qiskit's ``StochasticSwap`` (the pass the paper used): for each blocked
  gate it repeatedly applies a randomly chosen distance-reducing SWAP.
  Used for the router ablation benchmark.

Both consume a *virtual* circuit plus the initial ``layout`` recorded by a
layout pass, and produce a *physical* circuit (qubit indices refer to
device qubits) with routing SWAPs marked ``induced=True`` so that the
metric collection can separate them from algorithmic SWAPs — the
quantity reported in paper Figs. 4, 11 and 12.

Hot path: SWAP selection scores every candidate at once with a single
NumPy broadcast — all front/extended pairs are remapped for all candidate
swaps simultaneously and costs gathered from the topology's distance
matrix — instead of a Python loop per candidate.  The dependency
structure comes from the CSR arrays of
:class:`~repro.circuits.dag.DAGCircuit` (shared through the PropertySet,
so stochastic trials never rebuild it) and the virtual-to-physical map is
a flat integer array, rebuilt into a :class:`Layout` only at the end.
The original per-candidate scorer survives as ``engine="reference"``; the
two engines draw identical RNG streams and produce bit-identical SWAP
sequences (pinned by ``tests/transpiler/test_routing_vectorized.py``).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit
from repro.circuits.instruction import Instruction
from repro.gates import SwapGate
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PropertySet, TranspilerPass

_EXTENDED_SET_SIZE = 20
_EXTENDED_SET_WEIGHT = 0.5
_DECAY_INCREMENT = 0.001
_DECAY_RESET_INTERVAL = 5

#: Score-comparison tolerance shared by both scorer engines.
_TIE_EPS = 1e-12

_ENGINES = ("vector", "reference")


class RoutingError(RuntimeError):
    """Raised when a router cannot make progress."""


def _physical_circuit(num_physical: int, name: str) -> QuantumCircuit:
    return QuantumCircuit(num_physical, name=name)


def _layout_arrays(layout: Layout, num_physical: int) -> Tuple[np.ndarray, np.ndarray]:
    """Flat ``virtual -> physical`` / ``physical -> virtual`` maps (-1 empty)."""
    v2p = np.full(num_physical, -1, dtype=np.int64)
    p2v = np.full(num_physical, -1, dtype=np.int64)
    for virtual, physical in layout.to_dict().items():
        v2p[virtual] = physical
        p2v[physical] = virtual
    return v2p, p2v


def _layout_from_array(v2p: np.ndarray) -> Layout:
    """Rebuild a :class:`Layout` from the flat virtual -> physical array."""
    return Layout(
        {int(v): int(p) for v, p in enumerate(v2p) if p >= 0}
    )


def _swap_in_arrays(v2p: np.ndarray, p2v: np.ndarray, a: int, b: int) -> None:
    """Exchange whatever virtual qubits live on physical ``a`` and ``b``."""
    va, vb = p2v[a], p2v[b]
    p2v[a], p2v[b] = vb, va
    if va >= 0:
        v2p[va] = b
    if vb >= 0:
        v2p[vb] = a


def _candidate_swap_array(
    front_phys: np.ndarray, coupling_map: CouplingMap
) -> np.ndarray:
    """All SWAPs on edges incident to a blocked qubit, as a sorted (C, 2) array.

    Incident edges are marked in an edge-id mask (no tuple set, no sort):
    ascending edge ids are exactly the legacy ``sorted(set(...))``
    lexicographic ``(min, max)`` order.
    """
    edge_pairs, indptr, edge_ids = coupling_map.edge_index_arrays()
    mask = np.zeros(len(edge_pairs), dtype=bool)
    for qubit in front_phys.ravel():
        mask[edge_ids[indptr[qubit] : indptr[qubit + 1]]] = True
    return edge_pairs[mask]


def _remapped_pair_costs(
    candidates: np.ndarray, pairs_phys: np.ndarray, distance: np.ndarray
) -> np.ndarray:
    """Total pair distance after each candidate SWAP, for all candidates at once.

    ``candidates`` is (C, 2), ``pairs_phys`` is (P, 2); the result is the
    length-C vector of post-SWAP distance sums — the broadcast equivalent
    of the legacy per-candidate ``_pair_cost`` loop.
    """
    a = candidates[:, 0][:, None]
    b = candidates[:, 1][:, None]
    left = pairs_phys[:, 0][None, :]
    right = pairs_phys[:, 1][None, :]
    remapped_left = np.where(left == a, b, np.where(left == b, a, left))
    remapped_right = np.where(right == a, b, np.where(right == b, a, right))
    return distance[remapped_left, remapped_right].sum(axis=1)


def _sequential_tie_break(scores: np.ndarray, rng: np.random.Generator) -> int:
    """Index of the best score under the legacy sequential tie semantics.

    The legacy scorer updated a running best while iterating candidates in
    sorted order, collecting near-ties within ``_TIE_EPS`` of the *current*
    best; a plain global argmin-with-tolerance can select a different tie
    set.  The walk's final best score always lies within ``_TIE_EPS`` of
    the global minimum and its tie set within ``2 * _TIE_EPS``, so when
    that window holds a single candidate (the common case) the answer is
    just the argmin — one RNG draw over one element, exactly as the walk
    would make.  Only genuine near-ties replay the sequential walk.
    """
    minimum = scores.min()
    if np.count_nonzero(scores <= minimum + 2 * _TIE_EPS) == 1:
        rng.integers(1)  # keep the RNG stream aligned with the walk's draw
        return int(np.argmin(scores))
    best_score = np.inf
    best: List[int] = []
    for index, score in enumerate(scores):
        if score < best_score - _TIE_EPS:
            best_score = score
            best = [index]
        elif abs(score - best_score) <= _TIE_EPS:
            best.append(index)
    return best[int(rng.integers(len(best)))]


class SabreRouting(TranspilerPass):
    """SABRE-style lookahead router."""

    name = "sabre_routing"

    def __init__(
        self,
        coupling_map: Optional[CouplingMap] = None,
        seed: int = 0,
        extended_set_size: int = _EXTENDED_SET_SIZE,
        extended_set_weight: float = _EXTENDED_SET_WEIGHT,
        decay_increment: float = _DECAY_INCREMENT,
        engine: str = "vector",
    ):
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}; engines are {_ENGINES}")
        self._coupling_map = coupling_map
        self._seed = int(seed)
        self._extended_set_size = int(extended_set_size)
        self._extended_set_weight = float(extended_set_weight)
        self._decay_increment = float(decay_increment)
        self._engine = engine

    # -- pass entry point -----------------------------------------------------

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = self._coupling_map or properties.require("coupling_map")
        layout: Layout = properties.require("layout")
        rng = np.random.default_rng(self._seed)
        distance = coupling_map.distance_matrix()

        dag = DAGCircuit.shared(circuit, properties)
        instructions = dag.instructions
        remaining = dag.predecessor_counts()
        succ_indptr = dag.successor_indptr
        succ_indices = dag.successor_indices
        needs_coupling = dag.coupling_mask
        pairs = dag.qubit_pairs
        adjacency = coupling_map.adjacency_matrix()
        v2p, p2v = _layout_arrays(layout, coupling_map.num_qubits)

        front: List[int] = dag.front_layer()
        output = _physical_circuit(coupling_map.num_qubits, f"{circuit.name}@{coupling_map.name}")
        decay = np.ones(coupling_map.num_qubits)
        swaps_inserted = 0
        rounds_since_reset = 0
        stall_counter = 0
        stall_limit = 10 * max(4, coupling_map.num_qubits)

        def emit(node_index: int) -> None:
            instruction = instructions[node_index]
            physical = tuple(int(v2p[q]) for q in instruction.qubits)
            output.append(instruction.gate, physical, induced=instruction.induced)

        def advance(executed: Sequence[int]) -> None:
            for node_index in executed:
                front.remove(node_index)
                start, stop = succ_indptr[node_index], succ_indptr[node_index + 1]
                for successor in succ_indices[start:stop]:
                    remaining[successor] -= 1
                    if remaining[successor] == 0:
                        front.append(int(successor))

        while front:
            ready = [
                index
                for index in front
                if not needs_coupling[index]
                or adjacency[v2p[pairs[index, 0]], v2p[pairs[index, 1]]]
            ]
            if ready:
                for node_index in ready:
                    emit(node_index)
                advance(ready)
                stall_counter = 0
                continue

            # Every front gate is a blocked two-qubit gate: pick a SWAP.
            front_pairs = v2p[pairs[front]]
            extended_pairs = self._extended_set(dag, front, v2p)
            candidates = _candidate_swap_array(front_pairs, coupling_map)
            if not len(candidates):  # pragma: no cover - connected devices always have candidates
                raise RoutingError("no candidate SWAPs available; is the device connected?")
            if self._engine == "vector":
                scores = self._score_candidates(
                    candidates, front_pairs, extended_pairs, distance, decay
                )
                choice = _sequential_tie_break(scores, rng)
            else:
                choice = self._select_swap_reference(
                    candidates, front_pairs, extended_pairs, distance, decay, rng
                )
            physical_a = int(candidates[choice, 0])
            physical_b = int(candidates[choice, 1])
            output.append(SwapGate(), (physical_a, physical_b), induced=True)
            _swap_in_arrays(v2p, p2v, physical_a, physical_b)
            swaps_inserted += 1
            stall_counter += 1
            decay[physical_a] += self._decay_increment
            decay[physical_b] += self._decay_increment
            rounds_since_reset += 1
            if rounds_since_reset >= _DECAY_RESET_INTERVAL:
                decay[:] = 1.0
                rounds_since_reset = 0
            if stall_counter > stall_limit:
                # Escape pathological stalls by routing the first blocked gate
                # directly along a shortest path.
                swaps_inserted += self._force_route(
                    instructions[front[0]], v2p, p2v, coupling_map, output
                )
                decay[:] = 1.0
                stall_counter = 0

        final_layout = _layout_from_array(v2p)
        properties["final_layout"] = final_layout
        properties["routing_swaps"] = swaps_inserted
        properties["routed_circuit"] = output
        return output

    # -- helpers -----------------------------------------------------------------

    def _extended_set(
        self, dag: DAGCircuit, front: Sequence[int], v2p: np.ndarray
    ) -> np.ndarray:
        """Two-qubit gates just behind the front layer (lookahead window)."""
        indptr = dag.successor_indptr
        indices = dag.successor_indices
        is_two_qubit = dag.two_qubit_mask
        qubit_pairs = dag.qubit_pairs
        pairs: List[Tuple[int, int]] = []
        visited: Set[int] = set()
        queue = deque(front)
        while queue and len(pairs) < self._extended_set_size:
            node_index = queue.popleft()
            for successor in indices[indptr[node_index] : indptr[node_index + 1]].tolist():
                if successor in visited:
                    continue
                visited.add(successor)
                if is_two_qubit[successor]:
                    pairs.append(
                        (v2p[qubit_pairs[successor, 0]], v2p[qubit_pairs[successor, 1]])
                    )
                queue.append(successor)
                if len(pairs) >= self._extended_set_size:
                    break
        return np.array(pairs) if pairs else np.empty((0, 2), dtype=int)

    def _score_candidates(
        self,
        candidates: np.ndarray,
        front_pairs: np.ndarray,
        extended_pairs: np.ndarray,
        distance: np.ndarray,
        decay: np.ndarray,
    ) -> np.ndarray:
        """Heuristic scores of all candidate SWAPs in one broadcast."""
        front_costs = _remapped_pair_costs(candidates, front_pairs, distance)
        scores = front_costs.astype(np.float64) / max(len(front_pairs), 1)
        if len(extended_pairs):
            extended_costs = _remapped_pair_costs(candidates, extended_pairs, distance)
            scores = scores + (
                self._extended_set_weight * extended_costs.astype(np.float64)
            ) / len(extended_pairs)
        scores *= np.maximum(decay[candidates[:, 0]], decay[candidates[:, 1]])
        return scores

    def _select_swap_reference(
        self,
        candidates: np.ndarray,
        front_pairs: np.ndarray,
        extended_pairs: np.ndarray,
        distance: np.ndarray,
        decay: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """The pre-vectorization scorer: a Python loop over candidates.

        Kept as the equivalence oracle for the parity tests and the
        routing-hot-path benchmark; scores each candidate with the exact
        float operations of :meth:`_score_candidates`.
        """
        best_score = np.inf
        best_choices: List[int] = []
        for index in range(len(candidates)):
            physical_a = int(candidates[index, 0])
            physical_b = int(candidates[index, 1])
            front_cost = self._pair_cost(front_pairs, physical_a, physical_b, distance)
            score = front_cost / max(len(front_pairs), 1)
            if len(extended_pairs):
                extended_cost = self._pair_cost(
                    extended_pairs, physical_a, physical_b, distance
                )
                score += self._extended_set_weight * extended_cost / len(extended_pairs)
            score *= max(decay[physical_a], decay[physical_b])
            if score < best_score - _TIE_EPS:
                best_score = score
                best_choices = [index]
            elif abs(score - best_score) <= _TIE_EPS:
                best_choices.append(index)
        return best_choices[int(rng.integers(len(best_choices)))]

    @staticmethod
    def _pair_cost(
        pairs: np.ndarray, physical_a: int, physical_b: int, distance: np.ndarray
    ) -> float:
        """Total distance of ``pairs`` after exchanging two physical qubits."""
        remapped = pairs.copy()
        mask_a = remapped == physical_a
        mask_b = remapped == physical_b
        remapped[mask_a] = physical_b
        remapped[mask_b] = physical_a
        return float(distance[remapped[:, 0], remapped[:, 1]].sum())

    @staticmethod
    def _force_route(
        instruction: Instruction,
        v2p: np.ndarray,
        p2v: np.ndarray,
        coupling_map: CouplingMap,
        output: QuantumCircuit,
    ) -> int:
        """Bring the two qubits of ``instruction`` adjacent along a shortest path."""
        physical_a = int(v2p[instruction.qubits[0]])
        physical_b = int(v2p[instruction.qubits[1]])
        path = coupling_map.shortest_path(physical_a, physical_b)
        inserted = 0
        for hop in range(len(path) - 2):
            output.append(SwapGate(), (path[hop], path[hop + 1]), induced=True)
            _swap_in_arrays(v2p, p2v, path[hop], path[hop + 1])
            inserted += 1
        return inserted


class StochasticRouting(TranspilerPass):
    """Randomised distance-reducing router (StochasticSwap-like)."""

    name = "stochastic_routing"

    def __init__(
        self,
        coupling_map: Optional[CouplingMap] = None,
        seed: int = 0,
        trials: int = 4,
    ):
        self._coupling_map = coupling_map
        self._seed = int(seed)
        self._trials = max(1, int(trials))

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = self._coupling_map or properties.require("coupling_map")
        layout: Layout = properties.require("layout")
        # One DAG serves every trial (and any later pass on this circuit):
        # each trial only needs the instruction sequence and operand arrays,
        # which are immutable, so nothing is rebuilt per trial.
        dag = DAGCircuit.shared(circuit, properties)
        best_output: Optional[QuantumCircuit] = None
        best_layout: Optional[Layout] = None
        best_swaps = np.inf
        for trial in range(self._trials):
            output, final_layout, swaps = self._route_once(
                circuit, dag, coupling_map, layout, self._seed + 7919 * trial
            )
            if swaps < best_swaps:
                best_swaps = swaps
                best_output = output
                best_layout = final_layout
        assert best_output is not None and best_layout is not None
        properties["final_layout"] = best_layout
        properties["routing_swaps"] = int(best_swaps)
        properties["routed_circuit"] = best_output
        return best_output

    def _route_once(
        self,
        circuit: QuantumCircuit,
        dag: DAGCircuit,
        coupling_map: CouplingMap,
        layout: Layout,
        seed: int,
    ) -> Tuple[QuantumCircuit, Layout, int]:
        rng = np.random.default_rng(seed)
        distance = coupling_map.distance_matrix()
        adjacency = coupling_map.adjacency_matrix()
        nbr_indptr, nbr_indices = coupling_map.neighbor_arrays()
        v2p, p2v = _layout_arrays(layout, coupling_map.num_qubits)
        output = _physical_circuit(
            coupling_map.num_qubits, f"{circuit.name}@{coupling_map.name}"
        )
        swaps = 0
        for instruction in dag.instructions:
            if instruction.num_qubits == 1 or instruction.name == "barrier":
                output.append(
                    instruction.gate,
                    tuple(int(v2p[q]) for q in instruction.qubits),
                    induced=instruction.induced,
                )
                continue
            virtual_a, virtual_b = instruction.qubits
            while True:
                physical_a = int(v2p[virtual_a])
                physical_b = int(v2p[virtual_b])
                if adjacency[physical_a, physical_b]:
                    break
                current = distance[physical_a, physical_b]
                improving: List[Tuple[int, int]] = []
                for endpoint, other in ((physical_a, physical_b), (physical_b, physical_a)):
                    for neighbor in nbr_indices[
                        nbr_indptr[endpoint] : nbr_indptr[endpoint + 1]
                    ]:
                        if distance[neighbor, other] < current:
                            neighbor = int(neighbor)
                            improving.append(
                                (endpoint, neighbor)
                                if endpoint < neighbor
                                else (neighbor, endpoint)
                            )
                if not improving:  # pragma: no cover - connected devices always improve
                    raise RoutingError("stochastic router cannot reduce distance")
                choice = improving[int(rng.integers(len(improving)))]
                output.append(SwapGate(), choice, induced=True)
                _swap_in_arrays(v2p, p2v, *choice)
                swaps += 1
            output.append(
                instruction.gate,
                (int(v2p[virtual_a]), int(v2p[virtual_b])),
                induced=instruction.induced,
            )
        return output, _layout_from_array(v2p), swaps
