"""Routing passes: insert SWAPs so every 2Q gate acts on coupled qubits.

Two routers are provided:

* :class:`SabreRouting` — a SABRE-style lookahead router (Li, Ding, Xie,
  ASPLOS 2019): greedily executes every front-layer gate whose mapped
  qubits are adjacent, otherwise inserts the candidate SWAP minimising a
  distance heuristic over the front layer plus a discounted extended set,
  with a decay term that spreads SWAPs across qubits.  This is the default
  router for all paper experiments.
* :class:`StochasticRouting` — a randomised router in the spirit of
  Qiskit's ``StochasticSwap`` (the pass the paper used): for each blocked
  gate it repeatedly applies a randomly chosen distance-reducing SWAP.
  Used for the router ablation benchmark.

Both consume a *virtual* circuit plus the initial ``layout`` recorded by a
layout pass, and produce a *physical* circuit (qubit indices refer to
device qubits) with routing SWAPs marked ``induced=True`` so that the
metric collection can separate them from algorithmic SWAPs — the
quantity reported in paper Figs. 4, 11 and 12.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit
from repro.circuits.instruction import Instruction
from repro.gates import SwapGate
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PropertySet, TranspilerPass

_EXTENDED_SET_SIZE = 20
_EXTENDED_SET_WEIGHT = 0.5
_DECAY_INCREMENT = 0.001
_DECAY_RESET_INTERVAL = 5


class RoutingError(RuntimeError):
    """Raised when a router cannot make progress."""


def _physical_circuit(num_physical: int, name: str) -> QuantumCircuit:
    return QuantumCircuit(num_physical, name=name)


class SabreRouting(TranspilerPass):
    """SABRE-style lookahead router."""

    name = "sabre_routing"

    def __init__(
        self,
        coupling_map: Optional[CouplingMap] = None,
        seed: int = 0,
        extended_set_size: int = _EXTENDED_SET_SIZE,
        extended_set_weight: float = _EXTENDED_SET_WEIGHT,
        decay_increment: float = _DECAY_INCREMENT,
    ):
        self._coupling_map = coupling_map
        self._seed = int(seed)
        self._extended_set_size = int(extended_set_size)
        self._extended_set_weight = float(extended_set_weight)
        self._decay_increment = float(decay_increment)

    # -- pass entry point -----------------------------------------------------

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = self._coupling_map or properties.require("coupling_map")
        layout: Layout = properties.require("layout").copy()
        rng = np.random.default_rng(self._seed)
        distance = coupling_map.distance_matrix()

        dag = DAGCircuit(circuit)
        remaining_predecessors = {
            node.index: len(node.predecessors) for node in dag.nodes
        }
        front: List[int] = dag.front_layer()
        output = _physical_circuit(coupling_map.num_qubits, f"{circuit.name}@{coupling_map.name}")
        decay = np.ones(coupling_map.num_qubits)
        swaps_inserted = 0
        rounds_since_reset = 0
        stall_counter = 0
        stall_limit = 10 * max(4, coupling_map.num_qubits)

        def executable(node_index: int) -> bool:
            instruction = dag.node(node_index).instruction
            if instruction.num_qubits == 1 or instruction.name == "barrier":
                return True
            physical = [layout[q] for q in instruction.qubits]
            return coupling_map.has_edge(physical[0], physical[1])

        def emit(node_index: int) -> None:
            instruction = dag.node(node_index).instruction
            physical = tuple(layout[q] for q in instruction.qubits)
            output.append(instruction.gate, physical, induced=instruction.induced)

        def advance(executed: Sequence[int]) -> None:
            for node_index in executed:
                front.remove(node_index)
                for successor in dag.successors(node_index):
                    remaining_predecessors[successor] -= 1
                    if remaining_predecessors[successor] == 0:
                        front.append(successor)

        while front:
            ready = [index for index in front if executable(index)]
            if ready:
                for node_index in ready:
                    emit(node_index)
                advance(ready)
                stall_counter = 0
                continue

            # Every front gate is a blocked two-qubit gate: pick a SWAP.
            front_pairs = np.array(
                [
                    [layout[q] for q in dag.node(index).instruction.qubits]
                    for index in front
                ]
            )
            extended_pairs = self._extended_set(dag, remaining_predecessors, front, layout)
            candidates = self._candidate_swaps(front_pairs, coupling_map)
            if not candidates:  # pragma: no cover - connected devices always have candidates
                raise RoutingError("no candidate SWAPs available; is the device connected?")
            best_swap = self._select_swap(
                candidates, front_pairs, extended_pairs, distance, decay, rng
            )
            physical_a, physical_b = best_swap
            output.append(SwapGate(), (physical_a, physical_b), induced=True)
            layout.swap_physical(physical_a, physical_b)
            swaps_inserted += 1
            stall_counter += 1
            decay[physical_a] += self._decay_increment
            decay[physical_b] += self._decay_increment
            rounds_since_reset += 1
            if rounds_since_reset >= _DECAY_RESET_INTERVAL:
                decay[:] = 1.0
                rounds_since_reset = 0
            if stall_counter > stall_limit:
                # Escape pathological stalls by routing the first blocked gate
                # directly along a shortest path.
                swaps_inserted += self._force_route(
                    dag.node(front[0]).instruction, layout, coupling_map, output
                )
                decay[:] = 1.0
                stall_counter = 0

        properties["final_layout"] = layout
        properties["routing_swaps"] = swaps_inserted
        properties["routed_circuit"] = output
        return output

    # -- helpers -----------------------------------------------------------------

    def _extended_set(
        self,
        dag: DAGCircuit,
        remaining_predecessors: Dict[int, int],
        front: Sequence[int],
        layout: Layout,
    ) -> np.ndarray:
        """Two-qubit gates just behind the front layer (lookahead window)."""
        pairs: List[List[int]] = []
        visited: Set[int] = set()
        queue = list(front)
        while queue and len(pairs) < self._extended_set_size:
            node_index = queue.pop(0)
            for successor in dag.successors(node_index):
                if successor in visited:
                    continue
                visited.add(successor)
                instruction = dag.node(successor).instruction
                if instruction.is_two_qubit:
                    pairs.append([layout[q] for q in instruction.qubits])
                queue.append(successor)
                if len(pairs) >= self._extended_set_size:
                    break
        return np.array(pairs) if pairs else np.empty((0, 2), dtype=int)

    @staticmethod
    def _candidate_swaps(
        front_pairs: np.ndarray, coupling_map: CouplingMap
    ) -> List[Tuple[int, int]]:
        """SWAPs on edges incident to any qubit involved in a blocked gate."""
        involved = set(int(q) for q in front_pairs.ravel())
        candidates: Set[Tuple[int, int]] = set()
        for qubit in involved:
            for neighbor in coupling_map.neighbors(qubit):
                candidates.add(tuple(sorted((qubit, neighbor))))
        return sorted(candidates)

    def _select_swap(
        self,
        candidates: Sequence[Tuple[int, int]],
        front_pairs: np.ndarray,
        extended_pairs: np.ndarray,
        distance: np.ndarray,
        decay: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        """Score every candidate SWAP and return the best one."""
        best_score = np.inf
        best_choices: List[Tuple[int, int]] = []
        for physical_a, physical_b in candidates:
            front_cost = self._pair_cost(front_pairs, physical_a, physical_b, distance)
            score = front_cost / max(len(front_pairs), 1)
            if len(extended_pairs):
                extended_cost = self._pair_cost(
                    extended_pairs, physical_a, physical_b, distance
                )
                score += self._extended_set_weight * extended_cost / len(extended_pairs)
            score *= max(decay[physical_a], decay[physical_b])
            if score < best_score - 1e-12:
                best_score = score
                best_choices = [(physical_a, physical_b)]
            elif abs(score - best_score) <= 1e-12:
                best_choices.append((physical_a, physical_b))
        index = int(rng.integers(len(best_choices)))
        return best_choices[index]

    @staticmethod
    def _pair_cost(
        pairs: np.ndarray, physical_a: int, physical_b: int, distance: np.ndarray
    ) -> float:
        """Total distance of ``pairs`` after exchanging two physical qubits."""
        remapped = pairs.copy()
        mask_a = remapped == physical_a
        mask_b = remapped == physical_b
        remapped[mask_a] = physical_b
        remapped[mask_b] = physical_a
        return float(distance[remapped[:, 0], remapped[:, 1]].sum())

    @staticmethod
    def _force_route(
        instruction: Instruction,
        layout: Layout,
        coupling_map: CouplingMap,
        output: QuantumCircuit,
    ) -> int:
        """Bring the two qubits of ``instruction`` adjacent along a shortest path."""
        physical_a = layout[instruction.qubits[0]]
        physical_b = layout[instruction.qubits[1]]
        path = coupling_map.shortest_path(physical_a, physical_b)
        inserted = 0
        for hop in range(len(path) - 2):
            output.append(SwapGate(), (path[hop], path[hop + 1]), induced=True)
            layout.swap_physical(path[hop], path[hop + 1])
            inserted += 1
        return inserted


class StochasticRouting(TranspilerPass):
    """Randomised distance-reducing router (StochasticSwap-like)."""

    name = "stochastic_routing"

    def __init__(
        self,
        coupling_map: Optional[CouplingMap] = None,
        seed: int = 0,
        trials: int = 4,
    ):
        self._coupling_map = coupling_map
        self._seed = int(seed)
        self._trials = max(1, int(trials))

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = self._coupling_map or properties.require("coupling_map")
        layout: Layout = properties.require("layout")
        best_output: Optional[QuantumCircuit] = None
        best_layout: Optional[Layout] = None
        best_swaps = np.inf
        for trial in range(self._trials):
            output, final_layout, swaps = self._route_once(
                circuit, coupling_map, layout.copy(), self._seed + 7919 * trial
            )
            if swaps < best_swaps:
                best_swaps = swaps
                best_output = output
                best_layout = final_layout
        assert best_output is not None and best_layout is not None
        properties["final_layout"] = best_layout
        properties["routing_swaps"] = int(best_swaps)
        properties["routed_circuit"] = best_output
        return best_output

    def _route_once(
        self,
        circuit: QuantumCircuit,
        coupling_map: CouplingMap,
        layout: Layout,
        seed: int,
    ) -> Tuple[QuantumCircuit, Layout, int]:
        rng = np.random.default_rng(seed)
        distance = coupling_map.distance_matrix()
        output = _physical_circuit(
            coupling_map.num_qubits, f"{circuit.name}@{coupling_map.name}"
        )
        swaps = 0
        for instruction in circuit:
            if instruction.num_qubits == 1 or instruction.name == "barrier":
                output.append(
                    instruction.gate,
                    tuple(layout[q] for q in instruction.qubits),
                    induced=instruction.induced,
                )
                continue
            virtual_a, virtual_b = instruction.qubits
            while True:
                physical_a = layout[virtual_a]
                physical_b = layout[virtual_b]
                if coupling_map.has_edge(physical_a, physical_b):
                    break
                current = distance[physical_a, physical_b]
                improving: List[Tuple[int, int]] = []
                for endpoint, other in ((physical_a, physical_b), (physical_b, physical_a)):
                    for neighbor in coupling_map.neighbors(endpoint):
                        if distance[neighbor, other] < current:
                            improving.append(tuple(sorted((endpoint, neighbor))))
                if not improving:  # pragma: no cover - connected devices always improve
                    raise RoutingError("stochastic router cannot reduce distance")
                choice = improving[int(rng.integers(len(improving)))]
                output.append(SwapGate(), choice, induced=True)
                layout.swap_physical(*choice)
                swaps += 1
            output.append(
                instruction.gate,
                (layout[virtual_a], layout[virtual_b]),
                induced=instruction.induced,
            )
        return output, layout, swaps
