"""Additional routers beyond the SABRE-style and stochastic defaults.

:class:`BasicRouting` is the textbook shortest-path router: whenever a
two-qubit gate is blocked it walks the first operand along a shortest path
until the pair is adjacent.  It makes no lookahead decisions at all, which
makes it a useful lower bound on router quality for the ablation
benchmarks — the gap between BasicRouting and SabreRouting measures how
much of a topology's advantage is realised only with a good router.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.gates import SwapGate
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PropertySet, TranspilerPass


class BasicRouting(TranspilerPass):
    """Shortest-path SWAP insertion with no lookahead."""

    name = "basic_routing"

    def __init__(self, coupling_map: Optional[CouplingMap] = None):
        self._coupling_map = coupling_map

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        coupling_map: CouplingMap = self._coupling_map or properties.require("coupling_map")
        layout: Layout = properties.require("layout").copy()
        output = QuantumCircuit(
            coupling_map.num_qubits, name=f"{circuit.name}@{coupling_map.name}"
        )
        swaps = 0
        for instruction in circuit:
            if instruction.num_qubits == 1 or instruction.name == "barrier":
                output.append(
                    instruction.gate,
                    tuple(layout[q] for q in instruction.qubits),
                    induced=instruction.induced,
                )
                continue
            virtual_a, virtual_b = instruction.qubits
            physical_a, physical_b = layout[virtual_a], layout[virtual_b]
            if not coupling_map.has_edge(physical_a, physical_b):
                swaps += self._bring_adjacent(physical_a, physical_b, layout, coupling_map, output)
            output.append(
                instruction.gate,
                (layout[virtual_a], layout[virtual_b]),
                induced=instruction.induced,
            )
        properties["final_layout"] = layout
        properties["routing_swaps"] = swaps
        properties["routed_circuit"] = output
        return output

    @staticmethod
    def _bring_adjacent(
        physical_a: int,
        physical_b: int,
        layout: Layout,
        coupling_map: CouplingMap,
        output: QuantumCircuit,
    ) -> int:
        """Swap ``physical_a``'s payload along a shortest path toward ``physical_b``."""
        path = coupling_map.shortest_path(physical_a, physical_b)
        inserted = 0
        for hop in range(len(path) - 2):
            edge: Tuple[int, int] = (path[hop], path[hop + 1])
            output.append(SwapGate(), edge, induced=True)
            layout.swap_physical(*edge)
            inserted += 1
        return inserted
