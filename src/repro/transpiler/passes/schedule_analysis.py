"""Duration-aware scheduling as a pipeline stage.

The duration model of :mod:`repro.transpiler.scheduling` was previously
only reachable by calling :func:`schedule_asap` by hand on a transpile
result.  :class:`ScheduleAnalysis` wires it into the staged pipeline: run
as the ``scheduling`` stage it times the (translated, optimized) circuit
under the target's :class:`~repro.transpiler.scheduling.GateDurations`
and records the schedule and its aggregates into the property set, from
where :func:`repro.transpiler.compile.transpile` copies them into
``TranspileMetrics.extra``.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.transpiler.passmanager import PropertySet, TranspilerPass
from repro.transpiler.scheduling import GateDurations, schedule_alap, schedule_asap


class ScheduleAnalysis(TranspilerPass):
    """Analysis pass: schedule the circuit and record duration metrics.

    The circuit is returned unchanged; the pass records

    * ``properties["schedule"]`` — the full :class:`Schedule`,
    * ``properties["scheduled_duration_ns"]`` — the makespan,
    * ``properties["scheduled_idle_ns"]`` — summed per-qubit idle time,
    * ``properties["scheduled_parallelism"]`` — mean concurrent gates.
    """

    name = "schedule_analysis"

    def __init__(self, durations: GateDurations, discipline: str = "asap"):
        if discipline not in ("asap", "alap"):
            raise ValueError(f"unknown discipline {discipline!r}; use 'asap' or 'alap'")
        self._durations = durations
        self._discipline = discipline

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        scheduler = schedule_asap if self._discipline == "asap" else schedule_alap
        schedule = scheduler(circuit, self._durations)
        properties["schedule"] = schedule
        properties["scheduled_duration_ns"] = schedule.total_duration()
        properties["scheduled_idle_ns"] = schedule.total_idle_time()
        properties["scheduled_parallelism"] = schedule.average_parallelism()
        return circuit
