"""Perfect-layout search via subgraph monomorphism (VF2).

The paper notes (Section 6.1) that on the Corral(1,1) topology the
transpiler often finds an initial mapping that requires *zero* SWAP gates —
a direct consequence of its rich connectivity.  This pass makes that search
explicit: it builds the circuit's two-qubit interaction graph and asks the
VF2 algorithm for an embedding of that graph into the coupling graph.  When
an embedding exists, routing needs no SWAPs at all.

When no embedding exists (the common case on sparse lattices), the pass
falls back to a caller-supplied layout pass (``DenseLayout`` by default) so
that it can be used as a drop-in ``layout_method`` in
:func:`repro.transpiler.compile.transpile`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import networkx as nx
from networkx.algorithms import isomorphism

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import DAGCircuit
from repro.topology.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PropertySet, TranspilerPass
from repro.transpiler.passes.layout_passes import DenseLayout


def interaction_graph(
    circuit: QuantumCircuit,
    interactions: Optional[Mapping[Tuple[int, int], int]] = None,
) -> nx.Graph:
    """The circuit's two-qubit interaction graph (edge weight = gate count).

    ``interactions`` lets callers that already hold the counts (e.g. from a
    shared :class:`~repro.circuits.dag.DAGCircuit`) skip the circuit walk.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    if interactions is None:
        interactions = circuit.two_qubit_interactions()
    for (a, b), count in interactions.items():
        graph.add_edge(a, b, weight=count)
    return graph


class VF2Layout(TranspilerPass):
    """Find a SWAP-free initial layout when one exists.

    Records ``properties["layout"]`` like any layout pass, plus
    ``properties["perfect_layout"]`` (True when the VF2 search succeeded)
    so experiments can report how often each topology admits a perfect
    embedding.
    """

    name = "vf2_layout"

    def __init__(
        self,
        coupling_map: CouplingMap,
        fallback: Optional[TranspilerPass] = None,
        strict: bool = False,
        max_mappings: int = 1,
    ):
        self._coupling_map = coupling_map
        self._fallback = fallback if fallback is not None else DenseLayout(coupling_map)
        self._strict = bool(strict)
        self._max_mappings = max(1, int(max_mappings))

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        device = self._coupling_map
        if circuit.num_qubits > device.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but the device has "
                f"{device.num_qubits}"
            )
        mapping = self._find_embedding(circuit, properties)
        if mapping is not None:
            properties["layout"] = Layout(mapping)
            properties["coupling_map"] = device
            properties["perfect_layout"] = True
            return circuit
        if self._strict:
            raise RuntimeError(
                f"no SWAP-free embedding of {circuit.name!r} into {device.name!r} exists"
            )
        properties["perfect_layout"] = False
        result = self._fallback.run(circuit, properties)
        properties["coupling_map"] = device
        return result

    # -- embedding search ----------------------------------------------------

    def _find_embedding(
        self, circuit: QuantumCircuit, properties: Optional[PropertySet] = None
    ) -> Optional[Dict[int, int]]:
        """Virtual -> physical mapping realising every interaction edge, or None."""
        if properties is not None:
            # The interaction counts come off the shared DAG, so the DAG
            # built here is reused by the fallback layout and the routing
            # stage instead of walking the circuit again.
            interactions = DAGCircuit.shared(circuit, properties).two_qubit_interactions()
        else:
            interactions = None
        pattern = interaction_graph(circuit, interactions)
        if pattern.number_of_edges() == 0:
            # Any assignment works; keep it trivial.
            return {v: v for v in range(circuit.num_qubits)}
        matcher = isomorphism.GraphMatcher(self._coupling_map.graph, pattern)
        best: Optional[Dict[int, int]] = None
        for count, mapping in enumerate(matcher.subgraph_monomorphisms_iter()):
            # networkx returns device-node -> pattern-node; invert it.
            candidate = {virtual: physical for physical, virtual in mapping.items()}
            best = candidate
            if count + 1 >= self._max_mappings:
                break
        if best is None:
            return None
        # Unused virtual qubits (no 2Q interactions) still need seats.
        free_physical = [
            q for q in range(self._coupling_map.num_qubits) if q not in set(best.values())
        ]
        for virtual in range(circuit.num_qubits):
            if virtual not in best:
                best[virtual] = free_physical.pop(0)
        return best
