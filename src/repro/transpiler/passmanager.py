"""Pass infrastructure: property set, base pass, pass manager.

The transpilation flow mirrors paper Fig. 10: a sequence of passes, each
transforming the circuit and/or recording analysis results (layout, SWAP
counts, 2Q counts) into a shared :class:`PropertySet`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit

#: The canonical compilation stages, in execution order.  Every preset
#: schedule and every registered pass belongs to exactly one of these.
STAGES: Tuple[str, ...] = (
    "init",
    "layout",
    "routing",
    "translation",
    "optimization",
    "scheduling",
)


class PropertySet(dict):
    """A dictionary shared by all passes of one compilation."""

    def require(self, key: str):
        """Fetch a property, raising a clear error when missing."""
        if key not in self:
            raise KeyError(
                f"transpiler property {key!r} is required but has not been set; "
                "check the pass ordering"
            )
        return self[key]


class TranspilerPass:
    """Base class for circuit transformation / analysis passes."""

    #: Subclasses may override for nicer reporting.
    name: str = "pass"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        """Transform ``circuit`` (or return it unchanged for analysis passes)."""
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes, recording per-pass wall-clock times."""

    def __init__(self, passes: Optional[Iterable[TranspilerPass]] = None):
        self._passes: List[TranspilerPass] = list(passes or [])

    def append(self, transpiler_pass: TranspilerPass) -> "PassManager":
        """Add a pass at the end of the schedule."""
        self._passes.append(transpiler_pass)
        return self

    @property
    def passes(self) -> List[TranspilerPass]:
        """The scheduled passes."""
        return list(self._passes)

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Optional[PropertySet] = None,
    ) -> QuantumCircuit:
        """Run every pass in order and return the final circuit."""
        properties = properties if properties is not None else PropertySet()
        timings: Dict[str, float] = properties.setdefault("pass_timings", {})
        current = circuit
        for transpiler_pass in self._passes:
            start = time.perf_counter()
            current = transpiler_pass.run(current, properties)
            elapsed = time.perf_counter() - start
            timings[transpiler_pass.name] = timings.get(transpiler_pass.name, 0.0) + elapsed
        properties["final_circuit"] = current
        return current


class StagedPassManager(PassManager):
    """A pass manager whose schedule is organised into named stages.

    Stages run in :data:`STAGES` order (``init -> layout -> routing ->
    translation -> optimization -> scheduling``); a stage may hold any
    number of passes, including zero.  After each non-empty stage the
    intermediate circuit is recorded in
    ``properties["stage_circuits"][stage]`` so that metric collection can
    inspect, e.g., the routed circuit *after* routing-level cleanup but
    before basis translation.
    """

    def __init__(self, stages: Optional[Mapping[str, Sequence[TranspilerPass]]] = None):
        stages = dict(stages or {})
        unknown = set(stages) - set(STAGES)
        if unknown:
            raise ValueError(
                f"unknown stage(s) {sorted(unknown)}; stages are {list(STAGES)}"
            )
        self._stage_passes: Dict[str, List[TranspilerPass]] = {
            stage: list(stages.get(stage, ())) for stage in STAGES
        }
        super().__init__(
            [p for stage in STAGES for p in self._stage_passes[stage]]
        )

    # -- schedule editing ----------------------------------------------------

    def append_to_stage(self, stage: str, transpiler_pass: TranspilerPass) -> "StagedPassManager":
        """Add a pass at the end of one stage."""
        if stage not in self._stage_passes:
            raise ValueError(f"unknown stage {stage!r}; stages are {list(STAGES)}")
        self._stage_passes[stage].append(transpiler_pass)
        self._passes = [p for s in STAGES for p in self._stage_passes[s]]
        return self

    def append(self, transpiler_pass: TranspilerPass) -> "PassManager":
        """Add a pass at the end of the whole schedule (the final stage).

        Overridden so the inherited API stays live: execution iterates the
        per-stage schedule, so appending to the flat list alone would list
        the pass in :attr:`passes` without ever running it.
        """
        return self.append_to_stage(STAGES[-1], transpiler_pass)

    @property
    def stages(self) -> Dict[str, List[TranspilerPass]]:
        """The per-stage schedule (stage name -> passes, in run order)."""
        return {stage: list(passes) for stage, passes in self._stage_passes.items()}

    # -- execution -----------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Optional[PropertySet] = None,
    ) -> QuantumCircuit:
        """Run every stage in order, recording per-stage circuits and times."""
        properties = properties if properties is not None else PropertySet()
        timings: Dict[str, float] = properties.setdefault("pass_timings", {})
        stage_times: Dict[str, float] = properties.setdefault("stage_times", {})
        stage_circuits: Dict[str, QuantumCircuit] = properties.setdefault(
            "stage_circuits", {}
        )
        current = circuit
        for stage in STAGES:
            passes = self._stage_passes[stage]
            if not passes:
                continue
            stage_start = time.perf_counter()
            for transpiler_pass in passes:
                start = time.perf_counter()
                current = transpiler_pass.run(current, properties)
                elapsed = time.perf_counter() - start
                timings[transpiler_pass.name] = (
                    timings.get(transpiler_pass.name, 0.0) + elapsed
                )
            stage_circuits[stage] = current
            stage_times[stage] = (
                stage_times.get(stage, 0.0) + time.perf_counter() - stage_start
            )
        properties["final_circuit"] = current
        return current
