"""Pass infrastructure: property set, base pass, pass manager.

The transpilation flow mirrors paper Fig. 10: a sequence of passes, each
transforming the circuit and/or recording analysis results (layout, SWAP
counts, 2Q counts) into a shared :class:`PropertySet`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.circuits.circuit import QuantumCircuit


class PropertySet(dict):
    """A dictionary shared by all passes of one compilation."""

    def require(self, key: str):
        """Fetch a property, raising a clear error when missing."""
        if key not in self:
            raise KeyError(
                f"transpiler property {key!r} is required but has not been set; "
                "check the pass ordering"
            )
        return self[key]


class TranspilerPass:
    """Base class for circuit transformation / analysis passes."""

    #: Subclasses may override for nicer reporting.
    name: str = "pass"

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        """Transform ``circuit`` (or return it unchanged for analysis passes)."""
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes, recording per-pass wall-clock times."""

    def __init__(self, passes: Optional[Iterable[TranspilerPass]] = None):
        self._passes: List[TranspilerPass] = list(passes or [])

    def append(self, transpiler_pass: TranspilerPass) -> "PassManager":
        """Add a pass at the end of the schedule."""
        self._passes.append(transpiler_pass)
        return self

    @property
    def passes(self) -> List[TranspilerPass]:
        """The scheduled passes."""
        return list(self._passes)

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Optional[PropertySet] = None,
    ) -> QuantumCircuit:
        """Run every pass in order and return the final circuit."""
        properties = properties if properties is not None else PropertySet()
        timings: Dict[str, float] = properties.setdefault("pass_timings", {})
        current = circuit
        for transpiler_pass in self._passes:
            start = time.perf_counter()
            current = transpiler_pass.run(current, properties)
            elapsed = time.perf_counter() - start
            timings[transpiler_pass.name] = timings.get(transpiler_pass.name, 0.0) + elapsed
        properties["final_circuit"] = current
        return current
