"""Name-based pass registry feeding the staged pipeline.

Every pass that can appear in a compilation schedule is registered under a
``(stage, name)`` pair with a factory that builds it for a concrete
:class:`~repro.transpiler.target.Target`::

    @register_pass("routing", "sabre")
    def _sabre(target, seed=0):
        return SabreRouting(target.coupling_map, seed=seed)

Preset schedules (``optimization_level`` 0..3), the CLI's ``--layout`` /
``--routing`` options and user-assembled pipelines all resolve passes
through this registry, replacing the hard-coded string-dispatch dicts the
old ``build_pass_manager`` carried.  Registering a new pass makes it
addressable everywhere at once; unknown names fail with the list of
registered options.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.transpiler.passmanager import STAGES, TranspilerPass
from repro.transpiler.passes.basis_translation import BasisTranslation
from repro.transpiler.passes.cancellation import CancelAdjacentInverses
from repro.transpiler.passes.commutation import CommutativeCancellation
from repro.transpiler.passes.decompose_multi import DecomposeMultiQubit
from repro.transpiler.passes.layout_passes import (
    DenseLayout,
    InteractionGraphLayout,
    TrivialLayout,
)
from repro.transpiler.passes.noise_aware_routing import NoiseAwareLayout, NoiseAwareRouting
from repro.transpiler.passes.optimize import Optimize1qGates, RemoveBarriers
from repro.transpiler.passes.routing import SabreRouting, StochasticRouting
from repro.transpiler.passes.routing_extra import BasicRouting
from repro.transpiler.passes.schedule_analysis import ScheduleAnalysis
from repro.transpiler.passes.vf2_layout import VF2Layout
from repro.transpiler.target import Target

#: A factory builds a pass for one target; ``seed`` is the only threaded
#: option so that every registered pass stays constructible uniformly.
PassFactory = Callable[..., TranspilerPass]

_REGISTRY: Dict[str, Dict[str, PassFactory]] = {stage: {} for stage in STAGES}


def register_pass(stage: str, name: str) -> Callable[[PassFactory], PassFactory]:
    """Decorator: register ``factory(target, seed=0)`` under (stage, name).

    Re-registering a name overwrites the previous factory, so downstream
    projects can swap a built-in implementation for their own.
    """
    if stage not in _REGISTRY:
        raise ValueError(f"unknown stage {stage!r}; stages are {list(STAGES)}")

    def decorator(factory: PassFactory) -> PassFactory:
        _REGISTRY[stage][name] = factory
        return factory

    return decorator


def available_passes(stage: Optional[str] = None):
    """Registered pass names: a sorted list for one stage, else a dict."""
    if stage is None:
        return {s: sorted(names) for s, names in _REGISTRY.items()}
    if stage not in _REGISTRY:
        raise ValueError(f"unknown stage {stage!r}; stages are {list(STAGES)}")
    return sorted(_REGISTRY[stage])


def make_pass(stage: str, name: str, target: Target, seed: int = 0) -> TranspilerPass:
    """Build the registered pass ``name`` of ``stage`` for ``target``.

    Raises ``ValueError`` naming the registered options when ``name`` is
    unknown — the error surfaced by the CLI on a bad ``--layout`` /
    ``--routing`` value.
    """
    if stage not in _REGISTRY:
        raise ValueError(f"unknown stage {stage!r}; stages are {list(STAGES)}")
    factory = _REGISTRY[stage].get(name)
    if factory is None:
        raise ValueError(
            f"unknown {stage} pass {name!r}; registered options: "
            f"{available_passes(stage)}"
        )
    return factory(target, seed=seed)


# -- built-in registrations ---------------------------------------------------
# init


@register_pass("init", "decompose_multi")
def _decompose_multi(target: Target, seed: int = 0) -> TranspilerPass:
    return DecomposeMultiQubit()


@register_pass("init", "remove_barriers")
def _remove_barriers_init(target: Target, seed: int = 0) -> TranspilerPass:
    return RemoveBarriers()


# layout


@register_pass("layout", "trivial")
def _trivial_layout(target: Target, seed: int = 0) -> TranspilerPass:
    return TrivialLayout(target.coupling_map)


@register_pass("layout", "dense")
def _dense_layout(target: Target, seed: int = 0) -> TranspilerPass:
    return DenseLayout(target.coupling_map)


@register_pass("layout", "interaction")
def _interaction_layout(target: Target, seed: int = 0) -> TranspilerPass:
    return InteractionGraphLayout(target.coupling_map, seed=seed)


@register_pass("layout", "vf2")
def _vf2_layout(target: Target, seed: int = 0) -> TranspilerPass:
    return VF2Layout(target.coupling_map, fallback=DenseLayout(target.coupling_map))


@register_pass("layout", "noise_aware")
def _noise_aware_layout(target: Target, seed: int = 0) -> TranspilerPass:
    return NoiseAwareLayout(target.coupling_map, noise_model=target.noise_model)


# routing


@register_pass("routing", "sabre")
def _sabre_routing(target: Target, seed: int = 0) -> TranspilerPass:
    return SabreRouting(target.coupling_map, seed=seed)


@register_pass("routing", "stochastic")
def _stochastic_routing(target: Target, seed: int = 0) -> TranspilerPass:
    return StochasticRouting(target.coupling_map, seed=seed)


@register_pass("routing", "basic")
def _basic_routing(target: Target, seed: int = 0) -> TranspilerPass:
    return BasicRouting(target.coupling_map)


@register_pass("routing", "noise_aware")
def _noise_aware_routing(target: Target, seed: int = 0) -> TranspilerPass:
    return NoiseAwareRouting(
        target.coupling_map, noise_model=target.noise_model, seed=seed
    )


# translation


@register_pass("translation", "count")
def _count_translation(target: Target, seed: int = 0) -> TranspilerPass:
    return BasisTranslation(target.basis, mode="count")


@register_pass("translation", "synthesis")
def _synthesis_translation(target: Target, seed: int = 0) -> TranspilerPass:
    return BasisTranslation(target.basis, mode="synthesis")


# optimization


@register_pass("optimization", "cancel_inverses")
def _cancel_inverses(target: Target, seed: int = 0) -> TranspilerPass:
    return CancelAdjacentInverses()


@register_pass("optimization", "commutative_cancellation")
def _commutative_cancellation(target: Target, seed: int = 0) -> TranspilerPass:
    return CommutativeCancellation()


@register_pass("optimization", "merge_1q")
def _merge_1q(target: Target, seed: int = 0) -> TranspilerPass:
    return Optimize1qGates()


@register_pass("optimization", "remove_barriers")
def _remove_barriers_opt(target: Target, seed: int = 0) -> TranspilerPass:
    return RemoveBarriers()


# scheduling


@register_pass("scheduling", "asap")
def _asap_schedule(target: Target, seed: int = 0) -> TranspilerPass:
    return ScheduleAnalysis(target.gate_durations(), discipline="asap")


@register_pass("scheduling", "alap")
def _alap_schedule(target: Target, seed: int = 0) -> TranspilerPass:
    return ScheduleAnalysis(target.gate_durations(), discipline="alap")


def _registered_stage_names() -> List[str]:
    """All (stage, name) pairs, for reporting and tests."""
    return [f"{stage}:{name}" for stage in STAGES for name in sorted(_REGISTRY[stage])]
